//! End-to-end observability: building a corpus and serving queries must
//! leave a meaningful trail in the metrics registry — pipeline spans,
//! postings-traversal counters, attribution-cache hits.
//!
//! Compiled out under `--features obs-off`, where every probe is a no-op
//! and the registry stays empty (the parity suite covers that build).

#![cfg(not(feature = "obs-off"))]

use rightcrowd::core::{AnalysisPipeline, AnalyzedCorpus, EvalContext, FinderConfig};
use rightcrowd::obs;
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};

/// One test drives the whole flow so the registry assertions see a known
/// sequence (the registry is process-global; parallel tests would race).
#[test]
fn pipeline_and_query_path_populate_the_registry() {
    let before = obs::snapshot();

    // Corpus analysis: spans from the Fig. 4 stages, pipeline counters.
    let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
    let corpus = AnalyzedCorpus::build(&ds);
    assert!(corpus.retained() > 0);

    let after_build = obs::snapshot();
    let delta = |id| after_build.counter(id) - before.counter(id);
    assert!(delta(obs::CounterId::DocsAnalyzed) > 0, "analyze.doc probes missing");
    assert!(
        delta(obs::CounterId::DocsDroppedNonEnglish) > 0,
        "the language gate drops documents on tiny"
    );
    assert!(delta(obs::CounterId::TermsProcessed) > 0);
    assert!(delta(obs::CounterId::EntitiesAnnotated) > 0);
    // Worker spans are roots of their own threads on multi-core machines
    // but nest under the caller when `par_map` degrades to an inline map,
    // so stages are matched by leaf name, not full path.
    let leaf_calls = |snap: &obs::MetricsSnapshot, name: &str| -> u64 {
        snap.spans
            .iter()
            .filter(|(p, _)| p.rsplit('/').next() == Some(name))
            .map(|(_, s)| s.calls)
            .sum()
    };
    for name in ["corpus.build", "analyze.doc", "analyze.enrich", "index.build"] {
        assert!(
            leaf_calls(&after_build, name) > 0,
            "span {name:?} not recorded; have {:?}",
            after_build.spans.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
    }
    // Worker-thread spans are flushed when the scoped threads exit, so the
    // per-document stages must be visible already.
    assert!(leaf_calls(&after_build, "analyze.doc") >= delta(obs::CounterId::DocsAnalyzed));
    // The per-doc latency histogram fills during the corpus build.
    let analyze_hist = after_build
        .histograms
        .iter()
        .find(|(name, _)| *name == "analyze_doc_latency")
        .map(|(_, s)| s.count)
        .unwrap_or(0);
    assert!(analyze_hist > 0, "analyze_doc_latency histogram is empty");

    // Query path: postings traversal + evaluation spans.
    let ctx = EvalContext::new(&ds, &corpus);
    let base = FinderConfig::default();
    ctx.run(&base);
    let after_run = obs::snapshot();
    assert!(
        after_run.counter(obs::CounterId::PostingsTraversed)
            > after_build.counter(obs::CounterId::PostingsTraversed),
        "running the workload must traverse postings"
    );
    assert!(
        after_run.counter(obs::CounterId::QueriesAnalyzed)
            >= after_build.counter(obs::CounterId::QueriesAnalyzed) + 30,
        "30 workload queries analysed"
    );
    assert!(leaf_calls(&after_run, "eval.run_workload") > 0);
    assert!(
        leaf_calls(&after_run, "index.score_top_k") > 0,
        "ranking goes through the pruned top-k scorer"
    );

    // A second run with a different α shares the attribution (cache hit).
    ctx.run(&base.clone().with_alpha(0.3));
    let final_snap = obs::snapshot();
    assert!(
        final_snap.counter(obs::CounterId::AttributionCacheHits)
            > after_build.counter(obs::CounterId::AttributionCacheHits),
        "same traversal shape must hit the attribution cache"
    );
    assert!(final_snap.counter(obs::CounterId::AttributionCacheMisses) >= 1);
    assert!(final_snap.counter(obs::CounterId::EvidenceDocsD2) > 0);

    // The snapshot serialises and renders without panicking and carries
    // the counters it reports.
    let json = final_snap.to_json(0);
    assert!(json.contains("\"postings_traversed\""));
    assert!(final_snap.render().contains("== counters =="));

    // AnalysisPipeline used directly (not via a corpus) also counts.
    let pipeline = AnalysisPipeline::new(ds.kb());
    let before_q = obs::snapshot().counter(obs::CounterId::QueriesAnalyzed);
    let _ = pipeline.analyze_query("famous freestyle swimmers");
    assert_eq!(obs::snapshot().counter(obs::CounterId::QueriesAnalyzed), before_q + 1);

    // Flight recorder: enabling it around a workload run leaves one
    // structured record per query, carrying the ranking configuration,
    // the latency, and the per-query traversal-counter deltas.
    obs::flight::reset_flight();
    obs::flight::set_flight_enabled(true);
    ctx.run(&base);
    obs::flight::set_flight_enabled(false);
    let summary = obs::flight::flight_summary();
    assert_eq!(
        summary.recorded as usize,
        ds.queries().len(),
        "one flight record per workload query"
    );
    let recent = obs::flight::recent();
    assert_eq!(recent.len(), ds.queries().len());
    assert!(recent.iter().all(|r| r.latency_ns > 0));
    assert!(
        recent.iter().any(|r| r.postings_traversed > 0),
        "counter deltas must bracket the queries"
    );
    for r in &recent {
        assert!((r.alpha - base.alpha).abs() < 1e-12);
        assert_eq!(r.max_distance, 2);
        assert_eq!(r.window, "top-100");
        assert!(!r.domain.is_empty());
    }
    assert!(recent.iter().any(|r| !r.top_candidates.is_empty()));
    let slowest = obs::flight::slowest(3);
    assert_eq!(slowest.len(), 3);
    assert!(slowest.windows(2).all(|w| w[0].latency_ns >= w[1].latency_ns));
    assert!(summary.slowest_ms >= summary.mean_ms);

    // …and recording stays off once disabled.
    ctx.run(&base);
    assert_eq!(obs::flight::flight_summary().recorded as usize, ds.queries().len());

    // The Chrome trace export renders spans + flights as one well-formed
    // trace-event document (the bench crate validates it structurally).
    let trace = obs::chrome_trace_json(&obs::snapshot(), &recent);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"cat\": \"flight\""));
    assert!(trace.contains("\"path\": \"eval.run_workload\""));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
}
