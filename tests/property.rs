//! Property-based tests over the core data structures and invariants,
//! spanning crates through the facade.

use proptest::prelude::*;
use rightcrowd::metrics::{
    average_precision, dcg, interpolated_precision_11pt, ndcg, precision_at, recall_at,
    reciprocal_rank, Confusion,
};
use rightcrowd::text::{porter_stem, sanitize, tokenize, TextProcessor};
use rightcrowd::types::{Distance, Domain, Likert, Platform, PlatformMask};

proptest! {
    // ---------- text ----------------------------------------------------

    #[test]
    fn stemmer_never_panics_and_never_grows(word in "[a-z]{1,24}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len(), "{word} -> {stem}");
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemmer_total_on_arbitrary_unicode(word in "\\PC{0,24}") {
        // Non-ASCII input must pass through unchanged, never panic.
        let stem = porter_stem(&word);
        if !word.bytes().all(|b| b.is_ascii_lowercase()) || word.len() <= 2 {
            prop_assert_eq!(stem, word);
        }
    }

    #[test]
    fn tokenizer_output_is_normalized(text in "\\PC{0,200}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(
                token.chars().all(|c| c.is_alphanumeric()),
                "token {token:?} has non-alphanumeric characters"
            );
            prop_assert_eq!(token.clone(), token.to_lowercase());
        }
    }

    #[test]
    fn sanitizer_is_total_and_extracts_urls(text in "\\PC{0,200}") {
        let out = sanitize(&text);
        // No URL scheme survives in the cleaned text.
        prop_assert!(!out.text.contains("http://"));
        prop_assert!(!out.text.contains("https://"));
        for url in &out.urls {
            prop_assert!(!url.is_empty());
        }
    }

    #[test]
    fn reprocessing_never_grows_terms(text in "[a-zA-Z ]{0,120}") {
        // Porter stemming is not idempotent ("oase" → "oas" → "oa"), so
        // exact stability cannot hold; what must hold is that reprocessing
        // keeps the term count and never lengthens a term.
        // A stem may even fall into the stop list ("ued" → "u"), so the
        // count can shrink too — it just can never grow.
        let p = TextProcessor::default();
        let once = p.process(&text).terms;
        let again = p.process_clean(&once.join(" "));
        prop_assert!(again.len() <= once.len());
        let total_before: usize = once.iter().map(String::len).sum();
        let total_after: usize = again.iter().map(String::len).sum();
        prop_assert!(total_after <= total_before);
    }

    // ---------- metrics --------------------------------------------------

    #[test]
    fn ranked_metrics_stay_in_unit_interval(
        rels in prop::collection::vec(any::<bool>(), 0..60),
        extra_relevant in 0usize..20,
    ) {
        let total = rels.iter().filter(|&&r| r).count() + extra_relevant;
        let ap = average_precision(&rels, total);
        prop_assert!((0.0..=1.0).contains(&ap), "AP {ap}");
        let rr = reciprocal_rank(&rels);
        prop_assert!((0.0..=1.0).contains(&rr), "RR {rr}");
        let n = ndcg(&rels, total, None);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n), "NDCG {n}");
        let n10 = ndcg(&rels, total, Some(10));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n10), "NDCG@10 {n10}");
        for k in 1..=rels.len().max(1) {
            prop_assert!((0.0..=1.0).contains(&precision_at(&rels, k)));
            prop_assert!((0.0..=1.0).contains(&recall_at(&rels, k, total)));
        }
    }

    #[test]
    fn interpolated_curve_is_monotone(
        rels in prop::collection::vec(any::<bool>(), 0..60),
        extra_relevant in 0usize..10,
    ) {
        let total = rels.iter().filter(|&&r| r).count() + extra_relevant;
        let curve = interpolated_precision_11pt(&rels, total);
        for w in curve.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "{curve:?}");
        }
    }

    #[test]
    fn dcg_is_monotone_in_cutoff(gains in prop::collection::vec(0.0f64..5.0, 0..40)) {
        let mut previous = 0.0;
        for k in 0..=gains.len() {
            let d = dcg(&gains, Some(k));
            prop_assert!(d + 1e-12 >= previous, "DCG must not shrink with k");
            previous = d;
        }
    }

    #[test]
    fn promoting_any_relevant_item_never_hurts_ap(
        rels in prop::collection::vec(any::<bool>(), 2..40),
    ) {
        // For every adjacent (non-relevant, relevant) pair, swapping the
        // relevant item earlier must not decrease average precision.
        let total = rels.iter().filter(|&&r| r).count().max(1);
        let before = average_precision(&rels, total);
        for pos in 1..rels.len() {
            if rels[pos] && !rels[pos - 1] {
                let mut improved = rels.clone();
                improved.swap(pos - 1, pos);
                let after = average_precision(&improved, total);
                prop_assert!(after >= before - 1e-12, "{before} -> {after} at {pos}");
            }
        }
    }

    #[test]
    fn confusion_counts_are_conserved(pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        let mut c = Confusion::default();
        for (pred, act) in &pairs {
            c.record(*pred, *act);
        }
        prop_assert_eq!(c.total(), pairs.len());
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
        prop_assert!((0.0..=1.0).contains(&c.f1()));
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        // F1 is bounded by twice the smaller of P and R.
        let bound = 2.0 * c.precision().min(c.recall());
        prop_assert!(c.f1() <= bound + 1e-12);
    }

    // ---------- types ----------------------------------------------------

    #[test]
    fn platform_mask_algebra(bits in prop::collection::vec(any::<bool>(), 3)) {
        let mask: PlatformMask = Platform::ALL
            .into_iter()
            .zip(&bits)
            .filter(|(_, &b)| b)
            .map(|(p, _)| p)
            .collect();
        prop_assert_eq!(mask.len(), bits.iter().filter(|&&b| b).count());
        for (p, &b) in Platform::ALL.into_iter().zip(&bits) {
            prop_assert_eq!(mask.contains(p), b);
            prop_assert!(!mask.without(p).contains(p));
            prop_assert!(mask.with(p).contains(p));
        }
        prop_assert_eq!(mask.iter().count(), mask.len());
    }

    #[test]
    fn likert_clamp_is_idempotent(v in -100i32..100) {
        let l = Likert::clamped(v);
        prop_assert!((1..=7).contains(&l.value()));
        prop_assert_eq!(Likert::clamped(l.value() as i32), l);
        prop_assert!((0.0..=1.0).contains(&l.unit()));
    }

    #[test]
    fn distance_weights_fit_paper_interval(level in 0usize..3) {
        let d = Distance::from_level(level).unwrap();
        let w = d.paper_weight();
        prop_assert!((0.5..=1.0).contains(&w));
    }

    #[test]
    fn domain_parse_roundtrip(idx in 0usize..7) {
        let d = Domain::from_index(idx);
        prop_assert_eq!(d.slug().parse::<Domain>().unwrap(), d);
        prop_assert_eq!(d.label().parse::<Domain>().unwrap(), d);
    }
}
