//! Programmatic checks of the paper's qualitative findings ("shapes").
//!
//! EXPERIMENTS.md records the quantitative side; these tests pin the
//! *orderings* the paper reports so that a regression in the generator,
//! the pipeline or the ranker that silently flips a conclusion fails CI.
//! They run on the tiny preset (shared, built once per test binary).

use rightcrowd::core::baseline::random_baseline;
use rightcrowd::core::{testkit, EvalContext, FinderConfig, WindowSize};
use rightcrowd::types::{Distance, Platform, PlatformMask};

fn ctx() -> EvalContext<'static> {
    let (ds, corpus) = testkit::tiny();
    EvalContext::new(ds, corpus)
}

#[test]
fn finding1_profiles_alone_are_worse_than_random() {
    let (ds, _) = testkit::tiny();
    let d0 = ctx().run(&FinderConfig::default().with_distance(Distance::D0));
    let random = random_baseline(ds, 0x5EED);
    assert!(
        d0.mean.map < random.map,
        "distance-0 MAP {} must undercut random {}",
        d0.mean.map,
        random.map
    );
    assert!(d0.mean.ndcg < random.ndcg);
}

#[test]
fn finding1_metrics_grow_with_distance() {
    let c = ctx();
    let maps: Vec<f64> = Distance::ALL
        .iter()
        .map(|&d| c.run(&FinderConfig::default().with_distance(d)).mean.map)
        .collect();
    assert!(maps[0] < maps[1], "d0 {} < d1 {}", maps[0], maps[1]);
    assert!(maps[1] < maps[2], "d1 {} < d2 {}", maps[1], maps[2]);
}

#[test]
fn finding2_distance2_beats_random_on_every_metric() {
    let (ds, _) = testkit::tiny();
    let d2 = ctx().run(&FinderConfig::default());
    let random = random_baseline(ds, 0xABCD);
    assert!(d2.mean.map > random.map);
    assert!(d2.mean.mrr > random.mrr);
    assert!(d2.mean.ndcg > random.ndcg);
    assert!(d2.mean.ndcg10 > random.ndcg10);
}

#[test]
fn finding3_twitter_is_the_strongest_single_network() {
    let c = ctx();
    let map_at = |p: Platform| {
        c.run(
            &FinderConfig::default().with_platforms(PlatformMask::only(p)),
        )
        .mean
        .map
    };
    let tw = map_at(Platform::Twitter);
    let fb = map_at(Platform::Facebook);
    let li = map_at(Platform::LinkedIn);
    assert!(tw > fb, "TW {tw} must beat FB {fb}");
    assert!(tw > li, "TW {tw} must beat LI {li}");
}

#[test]
fn finding3_linkedin_is_the_weakest_network() {
    let c = ctx();
    let map_at = |p: Platform| {
        c.run(&FinderConfig::default().with_platforms(PlatformMask::only(p)))
            .mean
            .map
    };
    let li = map_at(Platform::LinkedIn);
    assert!(li < map_at(Platform::Twitter));
    assert!(li < map_at(Platform::Facebook));
}

#[test]
fn finding4_friends_do_not_lift_map_at_distance_2() {
    let c = ctx();
    let base = FinderConfig::default().with_platforms(PlatformMask::only(Platform::Twitter));
    let without = c.run(&base.clone().with_friends(false));
    let with = c.run(&base.with_friends(true));
    // The paper reports a slight degradation; we allow a small tolerance
    // band but reject any solid improvement.
    assert!(
        with.mean.map <= without.mean.map * 1.05,
        "friends lifted MAP {} → {}",
        without.mean.map,
        with.mean.map
    );
}

#[test]
fn finding5_window_grows_map_but_not_mrr() {
    let c = ctx();
    let small = c.run(
        &FinderConfig::default().with_window(WindowSize::Fraction(0.01)),
    );
    let large = c.run(
        &FinderConfig::default().with_window(WindowSize::Fraction(0.10)),
    );
    assert!(
        large.mean.map >= small.mean.map,
        "MAP must not shrink with the window: {} → {}",
        small.mean.map,
        large.mean.map
    );
    // MRR is about the first hit; the window barely moves it.
    assert!(
        (large.mean.mrr - small.mean.mrr).abs() <= 0.30,
        "MRR should stay roughly flat: {} → {}",
        small.mean.mrr,
        large.mean.mrr
    );
}

#[test]
fn finding6_pure_entity_matching_collapses_on_profiles() {
    let c = ctx();
    let base = FinderConfig::default().with_distance(Distance::D0);
    let entity_only = c.run(&base.clone().with_alpha(0.0));
    let mixed = c.run(&base.with_alpha(0.6));
    assert!(
        entity_only.mean.map <= mixed.mean.map,
        "α=0 {} must not beat α=0.6 {} at distance 0",
        entity_only.mean.map,
        mixed.mean.map
    );
}

#[test]
fn finding7_silent_users_are_harder_to_assess() {
    let (ds, _) = testkit::tiny();
    let reliability = ctx().user_reliability(&FinderConfig::default());
    let mut silent = Vec::new();
    let mut active = Vec::new();
    for r in &reliability {
        if ds.personas()[r.person.index()].silent {
            silent.push(r.f1);
        } else {
            active.push(r.f1);
        }
    }
    if silent.is_empty() {
        return; // Tiny preset may sample zero silent users; nothing to check.
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&silent) < mean(&active),
        "silent {} vs active {}",
        mean(&silent),
        mean(&active)
    );
}

#[test]
fn finding8_thin_footprints_are_harder_to_assess() {
    // The paper's Fig. 10 reads as a noisy positive relationship between a
    // user's available social information and the system's ability to
    // assess them; the robust core of that claim is that the users with
    // the *least* information (the silent ones) are the hardest to judge.
    // Pearson correlation on a 12-person tiny preset is too unstable to
    // pin; exp_users reports the regression at full scale.
    let mut reliability = ctx().user_reliability(&FinderConfig::default());
    reliability.sort_by_key(|r| r.resources);
    let quartile = (reliability.len() / 4).max(1);
    let mean = |rs: &[rightcrowd::core::UserReliability]| {
        rs.iter().map(|r| r.f1).sum::<f64>() / rs.len() as f64
    };
    let thin = mean(&reliability[..quartile]);
    let rest = mean(&reliability[quartile..]);
    assert!(
        thin < rest,
        "bottom-quartile-by-resources F1 {thin} must undercut the rest {rest}"
    );
}
