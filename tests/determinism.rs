//! Reproducibility: the whole stack — generation, analysis, matching,
//! ranking, baselines — must be bit-identical under a fixed seed, and must
//! actually change under a different seed.

use rightcrowd::core::{AnalyzedCorpus, CorpusOptions, EvalContext, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};

fn outcome_fingerprint(ds: &SyntheticDataset) -> Vec<(u32, u64)> {
    let corpus = AnalyzedCorpus::build(ds);
    let ctx = EvalContext::new(ds, &corpus);
    let outcome = ctx.run(&FinderConfig::default());
    outcome
        .rankings
        .iter()
        .flat_map(|ranking| {
            ranking
                .iter()
                .map(|r| (r.person.0, r.score.to_bits()))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn same_seed_same_everything() {
    let cfg = DatasetConfig::tiny();
    let a = SyntheticDataset::generate(&cfg);
    let b = SyntheticDataset::generate(&cfg);
    assert_eq!(a.graph().counts(), b.graph().counts());
    assert_eq!(outcome_fingerprint(&a), outcome_fingerprint(&b));
}

#[test]
fn different_seed_different_world() {
    let mut cfg = DatasetConfig::tiny();
    let a = SyntheticDataset::generate(&cfg);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = SyntheticDataset::generate(&cfg);
    // Counts may coincide (volumes are config-driven) but the rankings of
    // a different world cannot be bit-identical.
    assert_ne!(outcome_fingerprint(&a), outcome_fingerprint(&b));
}

#[test]
fn corpus_build_is_thread_count_invariant() {
    // The documented guarantee of `AnalyzedCorpus::build_with`: analysis is
    // parallelised per document and merged in document order, so the index
    // is byte-identical whatever the worker count.
    let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
    let sequential = AnalyzedCorpus::build_with(&ds, &CorpusOptions::default().with_worker_threads(1));
    for threads in [2, 3, 8] {
        let parallel =
            AnalyzedCorpus::build_with(&ds, &CorpusOptions::default().with_worker_threads(threads));
        assert_eq!(sequential.retained(), parallel.retained(), "{threads} threads");
        assert_eq!(
            sequential.dropped_non_english(),
            parallel.dropped_non_english(),
            "{threads} threads"
        );
        assert_eq!(sequential.index(), parallel.index(), "{threads} threads");
    }
}

#[test]
fn scale_changes_volume_not_structure() {
    let tiny = SyntheticDataset::generate(&DatasetConfig::tiny());
    let tinier = SyntheticDataset::generate(&DatasetConfig::tiny().scaled(0.5));
    assert_eq!(tiny.candidates().len(), tinier.candidates().len());
    assert!(tinier.graph().resources().len() < tiny.graph().resources().len());
    assert_eq!(tiny.queries().len(), tinier.queries().len());
}
