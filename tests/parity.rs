//! Parity: every optimised scoring path must reproduce the retained Eq. 1
//! reference scorer (`rightcrowd::index::reference`) over a full synthetic
//! corpus — same documents, same tie-break order, scores within 1e-12.
//!
//! This is the guard rail for the query-path overhaul: the CSR fast path,
//! the MaxScore-style pruned top-k path and the factored
//! `score_components` → `recombine` path are pure performance changes and
//! must never move a ranking.

use rightcrowd::core::{AnalysisPipeline, AnalyzedCorpus, Attribution, FinderConfig};
use rightcrowd::index::{recombine, recombine_top_k, reference, Query, ScoredDoc};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use rightcrowd::types::Distance;
use std::sync::OnceLock;

const ALPHAS: [f64; 3] = [0.0, 0.5, 1.0];
const K: usize = 50;

fn world() -> &'static (SyntheticDataset, AnalyzedCorpus, Vec<Query>) {
    static CELL: OnceLock<(SyntheticDataset, AnalyzedCorpus, Vec<Query>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let corpus = AnalyzedCorpus::build(&ds);
        let pipeline = AnalysisPipeline::new(ds.kb());
        let queries =
            ds.queries().iter().map(|need| pipeline.analyze_query(&need.text)).collect();
        (ds, corpus, queries)
    })
}

/// Same documents in the same order; scores within 1e-12 relative.
fn assert_parity(fast: &[ScoredDoc], slow: &[ScoredDoc], what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: result count");
    for (f, s) in fast.iter().zip(slow) {
        assert_eq!(f.doc, s.doc, "{what}: document / tie-break order");
        let tol = 1e-12 * s.score.abs().max(1.0);
        assert!(
            (f.score - s.score).abs() <= tol,
            "{what}: doc {:?} score {} vs reference {}",
            f.doc,
            f.score,
            s.score
        );
    }
}

#[test]
fn score_all_is_bit_identical_to_reference() {
    let (_, corpus, queries) = world();
    let index = corpus.index();
    for (qi, query) in queries.iter().enumerate() {
        for alpha in ALPHAS {
            let fast = index.score_all(query, alpha);
            let slow = reference::score_all(index, query, alpha);
            // The fast path shares the reference's accumulation order, so
            // this parity is exact, not merely within tolerance.
            assert_eq!(fast.len(), slow.len(), "query {qi} alpha {alpha}");
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.doc, s.doc, "query {qi} alpha {alpha}");
                assert_eq!(
                    f.score.to_bits(),
                    s.score.to_bits(),
                    "query {qi} alpha {alpha} doc {:?}",
                    f.doc
                );
            }
        }
    }
}

#[test]
fn pruned_top_k_matches_reference_under_every_distance() {
    let (ds, corpus, queries) = world();
    let index = corpus.index();
    for distance in Distance::ALL {
        let config = FinderConfig::default().with_distance(distance);
        let attribution = Attribution::compute(ds, corpus, &config);
        for (qi, query) in queries.iter().enumerate() {
            for alpha in ALPHAS {
                let fast =
                    index.score_top_k(query, alpha, K, |d| attribution.is_attributed(d));
                let slow = reference::score_top_k(index, query, alpha, K, |d| {
                    attribution.is_attributed(d)
                });
                assert_parity(&fast, &slow, &format!("query {qi} alpha {alpha} {distance:?}"));
            }
        }
    }
}

#[test]
fn factored_recombination_matches_reference_on_both_window_paths() {
    let (ds, corpus, queries) = world();
    let index = corpus.index();
    let config = FinderConfig::default();
    let attribution = Attribution::compute(ds, corpus, &config);
    for (qi, query) in queries.iter().enumerate() {
        // One traversal per query; every α point recombines from it.
        let components = index.score_components(query);
        for alpha in ALPHAS {
            let all = recombine(&components, alpha);
            let slow_all = reference::score_all(index, query, alpha);
            assert_parity(&all, &slow_all, &format!("recombine query {qi} alpha {alpha}"));

            let top =
                recombine_top_k(&components, alpha, K, |d| attribution.is_attributed(d));
            let slow_top =
                reference::score_top_k(index, query, alpha, K, |d| attribution.is_attributed(d));
            assert_parity(&top, &slow_top, &format!("recombine_top_k query {qi} alpha {alpha}"));
        }
    }
}
