//! Cross-crate integration: the full Fig. 1 flow from raw social text to a
//! ranked crowd of experts, exercised through the public facade.

use rightcrowd::core::{testkit, ExpertFinder, FinderConfig, WindowSize};
use rightcrowd::synth::DatasetStats;
use rightcrowd::types::{Distance, Domain, Platform, PlatformMask};

#[test]
fn facade_reexports_compose() {
    let (ds, corpus) = testkit::tiny();
    // Pipeline types from different crates meet in one flow.
    let pipeline = rightcrowd::core::AnalysisPipeline::new(ds.kb());
    let query = pipeline.analyze_query(&ds.queries()[0].text);
    let hits = corpus.index().score_all(&query, 0.6);
    assert!(!hits.is_empty());
    let doc = corpus.doc_id(hits[0].doc);
    // Every scored doc maps back to a graph object.
    match doc {
        rightcrowd::graph::DocId::Profile(u) => {
            let _ = ds.graph().profile(u);
        }
        rightcrowd::graph::DocId::Res(r) => {
            let _ = ds.graph().resource(r);
        }
        rightcrowd::graph::DocId::Cont(c) => {
            let _ = ds.graph().container(c);
        }
    }
}

#[test]
fn finder_answers_every_paper_example_query() {
    let (ds, corpus) = testkit::tiny();
    let ctx = rightcrowd::core::EvalContext::new(ds, corpus);
    let outcome = ctx.run(&FinderConfig::default());
    // The first seven workload queries are the paper's own examples.
    for (need, ranking) in ds.queries()[..7].iter().zip(&outcome.rankings) {
        assert!(
            !ranking.is_empty(),
            "paper example query must retrieve someone: {}",
            need.text
        );
    }
}

#[test]
fn rankings_respect_platform_isolation() {
    let (ds, corpus) = testkit::tiny();
    let ctx = rightcrowd::core::EvalContext::new(ds, corpus);
    // A LinkedIn-only run must not attribute Twitter evidence: check that
    // the attributed doc set under LI is disjoint from the TW one.
    let li = rightcrowd::core::Attribution::compute(
        ds,
        corpus,
        &FinderConfig::default().with_platforms(PlatformMask::only(Platform::LinkedIn)),
    );
    let tw = rightcrowd::core::Attribution::compute(
        ds,
        corpus,
        &FinderConfig::default().with_platforms(PlatformMask::only(Platform::Twitter)),
    );
    let all = rightcrowd::core::Attribution::compute(ds, corpus, &FinderConfig::default());
    assert_eq!(
        li.attributed_docs() + tw.attributed_docs()
            + rightcrowd::core::Attribution::compute(
                ds,
                corpus,
                &FinderConfig::default().with_platforms(PlatformMask::only(Platform::Facebook)),
            )
            .attributed_docs(),
        all.attributed_docs(),
        "platform attributions must partition the All attribution"
    );
    let _ = ctx;
}

#[test]
fn window_and_alpha_do_not_crash_at_extremes() {
    let (ds, corpus) = testkit::tiny();
    let ctx = rightcrowd::core::EvalContext::new(ds, corpus);
    for (alpha, window) in [
        (0.0, WindowSize::Count(1)),
        (1.0, WindowSize::All),
        (0.5, WindowSize::Fraction(1.0)),
        (0.6, WindowSize::Count(usize::MAX)),
    ] {
        let outcome = ctx.run(
            &FinderConfig::default()
                .with_alpha(alpha)
                .with_window(window),
        );
        assert_eq!(outcome.per_query.len(), 30);
        assert!(outcome.mean.map.is_finite());
    }
}

#[test]
fn stats_and_finder_agree_on_population() {
    let (ds, _) = testkit::tiny();
    let stats = DatasetStats::compute(ds);
    assert_eq!(stats.candidates, ds.candidates().len());
    for domain in Domain::ALL {
        assert_eq!(
            stats.domains[domain.index()].experts,
            ds.ground_truth().experts(domain).len()
        );
    }
}

#[test]
fn distance_caps_nest() {
    let (ds, corpus) = testkit::tiny();
    // Evidence sets must nest: docs(d0) ⊆ docs(d1) ⊆ docs(d2).
    let mut previous = 0usize;
    for d in Distance::ALL {
        let attr = rightcrowd::core::Attribution::compute(
            ds,
            corpus,
            &FinderConfig::default().with_distance(d),
        );
        assert!(
            attr.attributed_docs() >= previous,
            "attribution must grow with distance"
        );
        previous = attr.attributed_docs();
    }
}

#[test]
fn free_text_and_workload_queries_agree() {
    let (ds, _) = testkit::tiny();
    let finder = ExpertFinder::build(ds, &FinderConfig::default());
    let need = &ds.queries()[4];
    let via_need = finder.rank(need);
    let via_text = finder.rank_text(&need.text);
    assert_eq!(via_need, via_text);
}
