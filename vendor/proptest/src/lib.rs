//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! numeric-range and regex-pattern strategies, `prop::collection::vec`,
//! `prop::sample::select`, tuple strategies, [`prop_oneof!`], `any::<T>()`
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, by design:
//!
//! - **no shrinking** — a failing case reports its seed and case number
//!   instead of a minimised input;
//! - **fixed case count** — 64 per property (override with the
//!   `PROPTEST_CASES` environment variable), deterministically seeded from
//!   the property name, so failures reproduce exactly;
//! - **regex strategies** cover the pattern subset the tests use: literal
//!   runs, character classes, groups with alternation, `{m,n}`-style
//!   quantifiers and the `\PC` (any printable char) escape.

/// The deterministic generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds via SplitMix64 expansion of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, width)`, unbiased by rejection.
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        let zone = u64::MAX - (u64::MAX - width + 1) % width;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % width;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from an inclusive `[lo, hi]` length range.
    pub fn len_between(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of test-case inputs.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Equal-weight choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.0.len() as u64) as usize;
            self.0[pick].generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = hi.wrapping_sub(lo) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(width + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

/// Full-range strategies behind [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, spanning several orders of magnitude.
        let magnitude = (rng.unit_f64() * 2.0 - 1.0) * 1e6;
        magnitude * rng.unit_f64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy of `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.len_between(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }
}

pub mod pattern {
    //! A generator for the regex subset the workspace's patterns use.

    use super::TestRng;

    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        AnyPrintable,
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, usize, usize),
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alternatives = parse_alternatives(&chars, &mut pos, false);
        assert_eq!(pos, chars.len(), "trailing junk in pattern {pattern:?}");
        let mut out = String::new();
        emit_alt(&alternatives, rng, &mut out);
        out
    }

    fn parse_alternatives(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Vec<Node>> {
        let mut alternatives = vec![Vec::new()];
        while *pos < chars.len() {
            match chars[*pos] {
                ')' if in_group => break,
                '|' => {
                    *pos += 1;
                    alternatives.push(Vec::new());
                }
                _ => {
                    let node = parse_atom(chars, pos);
                    let node = parse_quantifier(chars, pos, node);
                    alternatives.last_mut().expect("non-empty").push(node);
                }
            }
        }
        alternatives
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let alternatives = parse_alternatives(chars, pos, true);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in pattern"
                );
                *pos += 1;
                Node::Group(alternatives)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let start = chars[*pos];
                    *pos += 1;
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        let end = chars[*pos + 1];
                        *pos += 2;
                        ranges.push((start, end));
                    } else {
                        ranges.push((start, start));
                    }
                }
                assert!(*pos < chars.len(), "unclosed class in pattern");
                *pos += 1; // consume ']'
                Node::Class(ranges)
            }
            '\\' => {
                // Only the escapes the workspace actually writes: `\PC`
                // (any non-control char) and single-char escapes.
                if *pos + 2 < chars.len() + 1 && chars.get(*pos + 1) == Some(&'P') {
                    let category = chars.get(*pos + 2).copied().unwrap_or('C');
                    assert_eq!(category, 'C', "only \\PC is supported");
                    *pos += 3;
                    Node::AnyPrintable
                } else {
                    let literal = chars[*pos + 1];
                    *pos += 2;
                    Node::Lit(literal)
                }
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, node: Node) -> Node {
        if *pos >= chars.len() {
            return node;
        }
        match chars[*pos] {
            '{' => {
                *pos += 1;
                let mut lo = String::new();
                while chars[*pos].is_ascii_digit() {
                    lo.push(chars[*pos]);
                    *pos += 1;
                }
                let lo: usize = lo.parse().expect("quantifier lower bound");
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = String::new();
                    while chars[*pos].is_ascii_digit() {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    if hi.is_empty() { lo + 8 } else { hi.parse().expect("upper bound") }
                } else {
                    lo
                };
                assert_eq!(chars[*pos], '}', "unclosed quantifier");
                *pos += 1;
                Node::Repeat(Box::new(node), lo, hi)
            }
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(node), 0, 8)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(node), 1, 8)
            }
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(node), 0, 1)
            }
            _ => node,
        }
    }

    fn emit_alt(alternatives: &[Vec<Node>], rng: &mut TestRng, out: &mut String) {
        let pick = rng.below(alternatives.len() as u64) as usize;
        for node in &alternatives[pick] {
            emit(node, rng, out);
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                    .sum();
                let mut index = rng.below(total);
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if index < span {
                        out.push(char::from_u32(a as u32 + index as u32).unwrap_or(a));
                        return;
                    }
                    index -= span;
                }
            }
            Node::AnyPrintable => out.push(printable(rng)),
            Node::Group(alternatives) => emit_alt(alternatives, rng, out),
            Node::Repeat(inner, lo, hi) => {
                let count = rng.len_between(*lo, *hi);
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }

    /// A random non-control character, biased toward ASCII with a tail of
    /// Latin-1, Greek, Cyrillic, CJK and emoji to exercise Unicode paths.
    fn printable(rng: &mut TestRng) -> char {
        let roll = rng.below(100);
        let candidate = if roll < 70 {
            0x20 + rng.below(0x5F) as u32 // ASCII printable
        } else if roll < 80 {
            0xA1 + rng.below(0xFF - 0xA1) as u32 // Latin-1 supplement
        } else if roll < 88 {
            0x391 + rng.below(0x3C9 - 0x391) as u32 // Greek
        } else if roll < 94 {
            0x410 + rng.below(0x44F - 0x410) as u32 // Cyrillic
        } else if roll < 98 {
            0x4E00 + rng.below(0x9FFF - 0x4E00) as u32 // CJK
        } else {
            0x1F300 + rng.below(0x1F5FF - 0x1F300) as u32 // emoji
        };
        char::from_u32(candidate).unwrap_or('□')
    }
}

/// Aliased module tree matching `proptest::prelude::prop::*` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Runs `property` for the configured number of cases, deterministically
/// seeded from `name`; panics with seed and case number on failure.
pub fn run_cases<F>(name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // FNV-1a over the property name anchors the sequence per property.
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let mut rng = TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(message) = property(&mut rng) {
            panic!("property {name} failed at case {case}/{cases}: {message}");
        }
    }
}

/// Declares deterministic property tests over strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), left, right,
            ));
        }
    }};
}

/// Fails the current case when both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  both: {:?}", ::std::format!($($fmt)+), left,
            ));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Equal-weight choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop, Arbitrary, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generator_matches_shape() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let word = crate::pattern::generate("[a-z]{3,30}", &mut rng);
            assert!((3..=30).contains(&word.len()), "{word:?}");
            assert!(word.bytes().all(|b| b.is_ascii_lowercase()));

            let mixed = crate::pattern::generate("([A-Z][a-z]{0,5}|[a-z]{1,2})", &mut rng);
            assert!(!mixed.is_empty());

            let printable = crate::pattern::generate("\\PC{0,24}", &mut rng);
            assert!(printable.chars().count() <= 24);
            assert!(printable.chars().all(|c| !c.is_control()));

            let punct = crate::pattern::generate("[a-zA-Z ,.!?]{0,10}", &mut rng);
            assert!(punct
                .chars()
                .all(|c| c.is_ascii_alphabetic() || " ,.!?".contains(c)));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            (10u32..15).prop_map(|x| x),
        ]) {
            prop_assert!(v < 15);
            prop_assert_ne!(v, 9);
        }
    }
}
