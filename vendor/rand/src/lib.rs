//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API subset it consumes: `StdRng` (here a
//! xoshiro256++ generator seeded through SplitMix64), the `Rng` extension
//! trait (`gen`, `gen_bool`, `gen_range`), `SeedableRng::seed_from_u64`,
//! and `seq::SliceRandom` (`choose`, `shuffle`).
//!
//! The value stream differs from upstream `rand`'s ChaCha12-based `StdRng`
//! — seeds therefore produce different (but equally deterministic and
//! well-distributed) synthetic worlds. Everything downstream treats the
//! generator as an opaque deterministic source, so only statistical shape
//! matters, and xoshiro256++ passes the same batteries upstream cites.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention upstream `rand` documents for this method.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into a full-entropy state sequence.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and statistically solid; the period is 2^256 − 1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one forbidden fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`high` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]` (`high` inclusive).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer draw from `[0, width)` by rejection against the last
/// incomplete multiple of `width` in the 64-bit space.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = high.wrapping_sub(low) as u64;
                low.wrapping_add(uniform_u64(rng, width) as $t)
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let width = high.wrapping_sub(low) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, width + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                low + (high - low) * unit
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_range(rng, low, high.max(low + <$t>::EPSILON))
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing extension trait, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A value of the standard distribution of `T` (`f64` → uniform
    /// `[0, 1)`, integers → full range, `bool` → fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare in the integer domain to honour p = 1.0 exactly.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// A value uniformly distributed over `range`.
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(0.25f64..1.5);
            assert!((0.25..1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
