//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! as a plain wall-clock harness: a short warmup calibrates
//! iterations-per-sample, then each benchmark takes `sample_size` samples
//! and reports the median, minimum and maximum time per iteration.
//!
//! No statistical analysis, no saved baselines, no HTML reports. Output is
//! one line per benchmark on stdout, so `cargo bench` remains useful for
//! eyeballing relative cost and catching order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls (accepted for API
/// compatibility; this harness always sets up one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, routine);
        self
    }

    /// Opens a named group whose benchmarks can share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `routine` under `<group>/<name>`.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_benchmark(&full, self.sample_size, routine);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time its routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Samples>,
}

struct Samples {
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, which is called many times per sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        self.result = Some(Samples { per_iter });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One input per timed call keeps setup cost out of the clock
        // without needing batch memory management.
        let mut per_iter = Vec::with_capacity(self.sample_size);
        // Warmup: one untimed pass.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            per_iter.push(start.elapsed());
        }
        self.result = Some(Samples { per_iter });
    }
}

/// Picks an iteration count so each sample runs ≥ ~2 ms (capped for slow
/// routines), after a ~30 ms warmup.
fn calibrate<F: FnMut()>(mut routine: F) -> u64 {
    let warmup_budget = Duration::from_millis(30);
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < warmup_budget {
        routine();
        iters += 1;
        if iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = start.elapsed().as_nanos().max(1) / iters.max(1) as u128;
    let target = Duration::from_millis(2).as_nanos();
    ((target / per_iter.max(1)) as u64).clamp(1, 1_000_000)
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { sample_size: sample_size.max(2), result: None };
    routine(&mut bencher);
    match bencher.result {
        Some(samples) => report(name, samples),
        None => println!("{name:<40} (no measurement taken)"),
    }
}

fn report(name: &str, mut samples: Samples) {
    samples.per_iter.sort();
    let n = samples.per_iter.len();
    let median = samples.per_iter[n / 2];
    let min = samples.per_iter[0];
    let max = samples.per_iter[n - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group; ignores harness CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness has
            // no options, so arguments are ignored.
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` imports.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
