//! Routing strategies: once the crowd is ranked, how should the question
//! actually be asked? Social contacts answer voluntarily and sporadically
//! (the paper's motivation for careful top-k selection), so asking
//! everyone is wasteful and asking one person is fragile.
//!
//! This example ranks a question, then simulates the three strategies of
//! `rightcrowd::core::routing` under different response rates.
//!
//! ```sh
//! cargo run --release --example routing_strategies
//! ```

use rightcrowd::core::routing::{simulate, RoutingStrategy};
use rightcrowd::core::{ExpertFinder, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use std::collections::HashSet;

fn main() {
    let dataset = SyntheticDataset::generate(&DatasetConfig::small());
    let finder = ExpertFinder::build(&dataset, &FinderConfig::default());

    let need = &dataset.queries()[3]; // "famous songs of Michael Jackson"
    println!("question: {:?} [{}]\n", need.text, need.domain);
    let ranking = finder.rank(need);
    let experts: HashSet<_> = dataset
        .ground_truth()
        .experts(need.domain)
        .iter()
        .copied()
        .collect();

    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "resp.rate", "answered", "good answer", "contacted", "rounds"
    );
    for response_rate in [0.2, 0.5, 0.8] {
        for (label, strategy) in [
            ("top-1", RoutingStrategy::Top1),
            ("parallel-3", RoutingStrategy::Parallel(3)),
            ("parallel-5", RoutingStrategy::Parallel(5)),
            ("sequential-5", RoutingStrategy::Sequential(5)),
        ] {
            let outcome = simulate(&ranking, &experts, strategy, response_rate, 5000, 42);
            println!(
                "{:<18} {:>9.0}% {:>9.0}% {:>11.0}% {:>12.2} {:>10.2}",
                label,
                response_rate * 100.0,
                outcome.answer_rate * 100.0,
                outcome.good_answer_rate * 100.0,
                outcome.mean_contacted,
                outcome.mean_rounds_to_answer
            );
        }
        println!();
    }
    println!(
        "reading: parallel-k maximises the chance of a (good) answer at the cost\n\
         of contacting more people; sequential matches its answer rate while\n\
         contacting fewer, paying in rounds — the trade-off behind the paper's\n\
         'choose the right small crowd' framing."
    );
}
