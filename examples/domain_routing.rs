//! Domain-aware question routing: for each expertise domain, find the
//! small crowd of top experts, and check them against the questionnaire
//! ground truth — the application the paper's introduction motivates
//! (recommendations, crowd-searching, task assignment).
//!
//! ```sh
//! cargo run --release --example domain_routing
//! ```

use rightcrowd::core::{ExpertFinder, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use rightcrowd::types::Domain;

fn main() {
    let dataset = SyntheticDataset::generate(&DatasetConfig::small());
    let finder = ExpertFinder::build(&dataset, &FinderConfig::default());
    let gt = dataset.ground_truth();

    for domain in Domain::ALL {
        println!("\n== {domain} ==  ({} true experts)", gt.experts(domain).len());
        // Route every workload query of this domain; experts that surface
        // in the top-5 of any query form the domain's crowd.
        let mut crowd: Vec<(String, f64, bool)> = Vec::new();
        for need in dataset.queries().iter().filter(|q| q.domain == domain) {
            for expert in finder.top_k(need, 5) {
                let name = dataset.candidates()[expert.person.index()].name.clone();
                if !crowd.iter().any(|(n, _, _)| *n == name) {
                    crowd.push((name, expert.score, gt.is_expert(expert.person, domain)));
                }
            }
        }
        crowd.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let hits = crowd.iter().filter(|(_, _, ok)| *ok).count();
        println!("   routed crowd of {} ({} verified experts):", crowd.len(), hits);
        for (name, score, ok) in crowd.iter().take(6) {
            println!(
                "   {:<22} {:>9.2} {}",
                name,
                score,
                if *ok { "✓" } else { "✗" }
            );
        }
    }
}
