//! Which social network finds experts best? A miniature of the paper's
//! Table 3: run the whole workload per platform mask and per distance cap,
//! and print the four headline metrics next to the random baseline.
//!
//! ```sh
//! cargo run --release --example platform_comparison
//! ```

use rightcrowd::core::baseline::random_baseline;
use rightcrowd::core::{AnalyzedCorpus, EvalContext, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use rightcrowd::types::{Distance, Platform, PlatformMask};

fn main() {
    let dataset = SyntheticDataset::generate(&DatasetConfig::small());
    println!("analysing corpus...");
    let corpus = AnalyzedCorpus::build(&dataset);
    let ctx = EvalContext::new(&dataset, &corpus);

    println!(
        "\n{:<6} {:>5}  {:>7} {:>7} {:>7} {:>8}",
        "SN", "dist", "MAP", "MRR", "NDCG", "NDCG@10"
    );

    let random = random_baseline(&dataset, 0xC0FFEE);
    println!(
        "{:<6} {:>5}  {:>7.4} {:>7.4} {:>7.4} {:>8.4}",
        "Random", "-", random.map, random.mrr, random.ndcg, random.ndcg10
    );

    let masks = [
        ("All", PlatformMask::ALL),
        ("FB", PlatformMask::only(Platform::Facebook)),
        ("TW", PlatformMask::only(Platform::Twitter)),
        ("LI", PlatformMask::only(Platform::LinkedIn)),
    ];
    for (label, mask) in masks {
        for distance in Distance::ALL {
            let config = FinderConfig::default()
                .with_platforms(mask)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            println!(
                "{:<6} {:>5}  {:>7.4} {:>7.4} {:>7.4} {:>8.4}",
                label,
                distance.level(),
                outcome.mean.map,
                outcome.mean.mrr,
                outcome.mean.ndcg,
                outcome.mean.ndcg10
            );
        }
    }
}
