//! Snapshot round trip: build once, save a store container, load it back
//! and serve queries without re-running the pipeline.
//!
//! ```sh
//! cargo run --release --example snapshot
//! ```

use rightcrowd::core::{AnalyzedCorpus, ExpertFinder, FinderConfig};
use rightcrowd::store;
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use std::time::Instant;

fn main() {
    // Build once: the expensive half (synthesis + analysis + indexing).
    println!("building (tiny preset)...");
    let started = Instant::now();
    let dataset = SyntheticDataset::generate(&DatasetConfig::tiny());
    let corpus = AnalyzedCorpus::build(&dataset);
    let build_ms = started.elapsed().as_secs_f64() * 1e3;
    println!("  {} documents indexed in {build_ms:.0} ms", corpus.retained());

    // Save: one versioned, checksummed container holds everything the
    // query path needs.
    let path = std::env::temp_dir().join("rightcrowd-example.rcs");
    let saved = store::save(&path, &dataset, &corpus).expect("save snapshot");
    println!("saved {} ({} bytes in {:.0} ms)", path.display(), saved.bytes, saved.elapsed_ms);

    // Inspect the container layout (what `rc load` verifies).
    let bytes = std::fs::read(&path).expect("read container back");
    println!("sections:");
    for info in store::layout(&bytes).expect("layout") {
        println!("  {:<13} {:>8} bytes at {:>8}", info.name, info.len, info.offset);
    }

    // Load: verify checksums + version, reconstruct — no pipeline run.
    let (loaded_ds, loaded_corpus, stats) = store::load(&path).expect("load snapshot");
    println!(
        "loaded in {:.0} ms ({:.1}x faster than the {build_ms:.0} ms build)",
        stats.elapsed_ms,
        build_ms / stats.elapsed_ms.max(0.001),
    );

    // Query many: the loaded state ranks identically to the fresh build.
    let config = FinderConfig::default();
    let finder = ExpertFinder::with_corpus(&loaded_ds, loaded_corpus, &config);
    let need = &loaded_ds.queries()[5]; // "famous European football teams"
    println!("\nexpertise need: {:?} [{}]", need.text, need.domain);
    println!("top-3 ranked experts (served from the snapshot):");
    for (rank, expert) in finder.top_k(need, 3).iter().enumerate() {
        let person = &loaded_ds.candidates()[expert.person.index()];
        println!("  {}. {:<22} score {:>9.2}", rank + 1, person.name, expert.score);
    }

    // Damage demo: flip one payload bit and the load refuses with a typed
    // error naming the section — never a panic, never silent garbage.
    let mut damaged = bytes.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x01;
    match store::from_bytes(&damaged) {
        Err(e) => println!("\nflipped one bit at byte {mid}: {e}"),
        Ok(_) => unreachable!("a damaged container must not load"),
    }

    std::fs::remove_file(&path).ok();
}
