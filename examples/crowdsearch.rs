//! The paper's Fig. 1 scenario: Anna needs opinions on freestyle swimmers
//! and wants to route her question to the right small crowd of friends —
//! choosing both *whom* to ask and *which platform* to reach them on.
//!
//! ```sh
//! cargo run --release --example crowdsearch
//! ```

use rightcrowd::core::{ExpertFinder, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
use rightcrowd::types::{Platform, PlatformMask};

fn main() {
    let dataset = SyntheticDataset::generate(&DatasetConfig::small());
    let question = "Who are the best freestyle swimmers right now?";
    println!("Anna asks: {question:?}\n");

    // Rank over all networks first: that's the crowd to address.
    let finder = ExpertFinder::build(&dataset, &FinderConfig::default());
    let crowd = finder.rank_text(question);
    println!("candidate crowd ({} members ranked):", crowd.len());
    for expert in crowd.iter().take(4) {
        println!(
            "  {:<22} score {:>9.2}",
            dataset.candidates()[expert.person.index()].name,
            expert.score
        );
    }

    // Then ask, per platform, where each top candidate shows the
    // strongest expertise evidence — the best route to contact them.
    println!("\nbest contact platform for the top 3:");
    let mut finder = finder;
    let mut per_platform = Vec::new();
    for platform in Platform::ALL {
        finder = finder.reconfigure(
            &FinderConfig::default().with_platforms(PlatformMask::only(platform)),
        );
        per_platform.push((platform, finder.rank_text(question)));
    }
    for expert in crowd.iter().take(3) {
        let name = &dataset.candidates()[expert.person.index()].name;
        let best = per_platform
            .iter()
            .map(|(platform, ranking)| {
                let score = ranking
                    .iter()
                    .find(|r| r.person == expert.person)
                    .map_or(0.0, |r| r.score);
                (*platform, score)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!("  ask {:<22} via {:<9} (evidence score {:.2})", name, best.0.to_string(), best.1);
    }
}
