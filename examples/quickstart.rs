//! Quickstart: generate a synthetic social world, build the expert finder,
//! and answer one expertise need.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rightcrowd::core::{ExpertFinder, FinderConfig};
use rightcrowd::synth::{DatasetConfig, SyntheticDataset};

fn main() {
    // A small world keeps the example snappy; DatasetConfig::paper() is
    // the full ~330k-resource study.
    println!("generating synthetic dataset (small preset)...");
    let dataset = SyntheticDataset::generate(&DatasetConfig::small());
    let (persons, profiles, resources, containers) = dataset.graph().counts();
    println!(
        "  {persons} candidates, {profiles} profiles, {resources} resources, {containers} containers"
    );

    println!("analysing and indexing the corpus...");
    let finder = ExpertFinder::build(&dataset, &FinderConfig::default());
    println!(
        "  {} documents retained, {} dropped by the language gate",
        finder.corpus().retained(),
        finder.corpus().dropped_non_english()
    );

    let need = &dataset.queries()[5]; // "famous European football teams"
    println!("\nexpertise need: {:?} [{}]", need.text, need.domain);

    let gt = dataset.ground_truth();
    println!("\ntop-5 ranked experts:");
    for (rank, expert) in finder.top_k(need, 5).iter().enumerate() {
        let person = &dataset.candidates()[expert.person.index()];
        let truth = if gt.is_expert(expert.person, need.domain) {
            "expert ✓"
        } else {
            "non-expert ✗"
        };
        println!(
            "  {}. {:<22} score {:>9.2}  ({truth}, self-assessed {:.1}/7)",
            rank + 1,
            person.name,
            expert.score,
            gt.expertise(expert.person, need.domain),
        );
    }
}
