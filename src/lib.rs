//! # rightcrowd
//!
//! A from-scratch Rust reproduction of *"Choosing the Right Crowd: Expert
//! Finding in Social Networks"* (Bozzon, Brambilla, Ceri, Silvestri, Vesci —
//! EDBT 2013).
//!
//! Given an *expertise need* (a natural-language question) and a pool of
//! candidate experts active on simulated Facebook / Twitter / LinkedIn
//! graphs, the library ranks candidates by the expertise evidence found in
//! their social resources — profiles, posts, annotated items, group/page
//! posts — organised by graph distance from the candidate.
//!
//! This facade crate re-exports every member crate of the workspace so that
//! downstream users can depend on a single crate:
//!
//! ```
//! use rightcrowd::synth::{DatasetConfig, SyntheticDataset};
//! use rightcrowd::core::{ExpertFinder, FinderConfig};
//!
//! // A miniature dataset (the default config reproduces the paper's scale).
//! let dataset = SyntheticDataset::generate(&DatasetConfig::tiny());
//! let finder = ExpertFinder::build(&dataset, &FinderConfig::default());
//! let query = &dataset.queries()[0];
//! let ranking = finder.rank(query);
//! assert!(ranking.len() <= dataset.candidates().len());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use rightcrowd_annotate as annotate;
pub use rightcrowd_core as core;
pub use rightcrowd_graph as graph;
pub use rightcrowd_index as index;
pub use rightcrowd_kb as kb;
pub use rightcrowd_langid as langid;
pub use rightcrowd_metrics as metrics;
pub use rightcrowd_obs as obs;
pub use rightcrowd_serve as serve;
pub use rightcrowd_store as store;
pub use rightcrowd_synth as synth;
pub use rightcrowd_text as text;
pub use rightcrowd_types as types;
