//! Tokenisation.
//!
//! Splits sanitised text into lower-cased word tokens. A token is a maximal
//! run of alphanumeric characters, with two social-text refinements:
//! internal apostrophes are treated as joiners with the suffix dropped
//! (`don't` → `don`), and internal hyphens split (`state-of-the-art` → four
//! tokens). Pure-digit tokens are kept — queries like *"Diablo 3"* need
//! them — but overly long digit strings (ids, phone numbers) are dropped.

/// Maximum length of an all-digit token; longer runs are ids/noise.
const MAX_DIGIT_RUN: usize = 4;

/// Tokenises `text` into lower-cased word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if c == '\'' && !current.is_empty() {
            // `don't` → `don`: drop the clitic suffix.
            while let Some(&n) = chars.peek() {
                if n.is_alphanumeric() {
                    chars.next();
                } else {
                    break;
                }
            }
            flush(&mut tokens, &mut current);
        } else {
            flush(&mut tokens, &mut current);
        }
    }
    flush(&mut tokens, &mut current);
    tokens
}

fn flush(tokens: &mut Vec<String>, current: &mut String) {
    if current.is_empty() {
        return;
    }
    let token = std::mem::take(current);
    let all_digits = token.chars().all(|c| c.is_ascii_digit());
    if all_digits && token.len() > MAX_DIGIT_RUN {
        return;
    }
    if token.chars().count() == 1 && all_digits {
        // Single digits survive ("Diablo 3"); single letters are handled by
        // the stop-word stage, not here.
        tokens.push(token);
        return;
    }
    tokens.push(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn basic_split_and_lowercase() {
        assert_eq!(toks("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn hyphens_split() {
        assert_eq!(toks("state-of-the-art"), vec!["state", "of", "the", "art"]);
    }

    #[test]
    fn apostrophe_drops_clitic() {
        assert_eq!(toks("don't can't Bob's"), vec!["don", "can", "bob"]);
    }

    #[test]
    fn digits_kept_when_short() {
        assert_eq!(toks("Diablo 3 and PS4"), vec!["diablo", "3", "and", "ps4"]);
        assert_eq!(toks("year 2012"), vec!["year", "2012"]);
    }

    #[test]
    fn long_digit_runs_dropped() {
        assert_eq!(toks("call 5551234567 now"), vec!["call", "now"]);
    }

    #[test]
    fn unicode_words() {
        assert_eq!(toks("Città di Milano"), vec!["città", "di", "milano"]);
        assert_eq!(toks("ÜBER Straße"), vec!["über", "straße"]);
    }

    #[test]
    fn empty_input() {
        assert!(toks("").is_empty());
        assert!(toks("!!! ... ???").is_empty());
    }

    #[test]
    fn mixed_alphanumeric_kept_whole() {
        assert_eq!(toks("php5 mp3 b2b"), vec!["php5", "mp3", "b2b"]);
    }
}
