//! The end-to-end text-processing pipeline.
//!
//! Composes sanitisation → tokenisation → stop-word removal → stemming into
//! the "Text Processing" box of the paper's Fig. 4. The same processor is
//! applied symmetrically to resources and to expertise needs (§2.3).

use crate::sanitize::sanitize;
use crate::stem::porter_stem;
use crate::stopwords::is_english_stopword;
use crate::token::tokenize;

/// Configuration for [`TextProcessor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextProcessorConfig {
    /// Remove English stop words (on in the paper's pipeline).
    pub remove_stopwords: bool,
    /// Apply Porter stemming (on in the paper's pipeline).
    pub stem: bool,
}

impl Default for TextProcessorConfig {
    fn default() -> Self {
        TextProcessorConfig { remove_stopwords: true, stem: true }
    }
}

/// The output of processing one piece of text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessedText {
    /// Normalised terms, in original order (duplicates preserved — term
    /// frequency is computed downstream by the index).
    pub terms: Vec<String>,
    /// URLs extracted by the sanitiser, for the enrichment stage.
    pub urls: Vec<String>,
}

impl ProcessedText {
    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no term survived processing.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A reusable text processor (sanitise → tokenise → stop → stem).
#[derive(Debug, Clone, Default)]
pub struct TextProcessor {
    config: TextProcessorConfig,
}

impl TextProcessor {
    /// Builds a processor with the given configuration.
    pub fn new(config: TextProcessorConfig) -> Self {
        TextProcessor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TextProcessorConfig {
        &self.config
    }

    /// Runs the full pipeline on `raw`.
    pub fn process(&self, raw: &str) -> ProcessedText {
        let _span = rightcrowd_obs::span!("text.process");
        let sanitized = sanitize(raw);
        let mut terms = Vec::new();
        for token in tokenize(&sanitized.text) {
            if self.config.remove_stopwords && is_english_stopword(&token) {
                continue;
            }
            let term = if self.config.stem { porter_stem(&token) } else { token };
            if !term.is_empty() {
                terms.push(term);
            }
        }
        rightcrowd_obs::add(rightcrowd_obs::CounterId::TermsProcessed, terms.len() as u64);
        ProcessedText { terms, urls: sanitized.urls }
    }

    /// Processes text that is already clean (no URLs/markup expected), e.g.
    /// generator-produced web-page bodies. Skips the sanitiser.
    pub fn process_clean(&self, clean: &str) -> Vec<String> {
        let _span = rightcrowd_obs::span!("text.process");
        let mut terms = Vec::new();
        for token in tokenize(clean) {
            if self.config.remove_stopwords && is_english_stopword(&token) {
                continue;
            }
            let term = if self.config.stem { porter_stem(&token) } else { token };
            if !term.is_empty() {
                terms.push(term);
            }
        }
        rightcrowd_obs::add(rightcrowd_obs::CounterId::TermsProcessed, terms.len() as u64);
        terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_tweet() {
        let p = TextProcessor::default();
        let out = p.process(
            "RT @alice: MichaelPhelps is the best! Great freestyle gold medal http://t.co/xyz #London2012",
        );
        assert_eq!(out.urls, vec!["http://t.co/xyz"]);
        assert_eq!(
            out.terms,
            vec!["michaelphelp", "best", "great", "freestyl", "gold", "medal", "london2012"]
        );
    }

    #[test]
    fn stopwords_removed() {
        let p = TextProcessor::default();
        let out = p.process("Why is copper a good conductor?");
        assert_eq!(out.terms, vec!["copper", "good", "conductor"]);
    }

    #[test]
    fn config_toggles() {
        let raw = "the swimmers are swimming";
        let nostem = TextProcessor::new(TextProcessorConfig { remove_stopwords: true, stem: false });
        assert_eq!(nostem.process(raw).terms, vec!["swimmers", "swimming"]);
        let nostop = TextProcessor::new(TextProcessorConfig { remove_stopwords: false, stem: false });
        assert_eq!(nostop.process(raw).terms, vec!["the", "swimmers", "are", "swimming"]);
    }

    #[test]
    fn process_clean_matches_process_when_no_markup() {
        let p = TextProcessor::default();
        let raw = "famous European football teams";
        assert_eq!(p.process(raw).terms, p.process_clean(raw));
    }

    #[test]
    fn empty_and_noise_inputs() {
        let p = TextProcessor::default();
        assert!(p.process("").is_empty());
        assert!(p.process("!!! the of and a").is_empty());
        assert_eq!(p.process("").len(), 0);
    }
}
