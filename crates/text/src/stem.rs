//! The Porter stemming algorithm.
//!
//! A faithful implementation of M. F. Porter, *"An algorithm for suffix
//! stripping"* (Program, 1980) — the stemmer the paper's "Text Processing"
//! stage relies on. Operates on lower-case ASCII words; words containing
//! non-ASCII characters are returned unchanged (social text may contain
//! accented names that the classic algorithm was never defined for).

/// Stems a single lower-case word with the Porter algorithm.
///
/// ```
/// use rightcrowd_text::porter_stem;
/// assert_eq!(porter_stem("swimming"), "swim");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("conductor"), "conductor");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut w = word.as_bytes().to_vec();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    // SAFETY-free: the buffer only ever shrinks or has ASCII appended.
    String::from_utf8(w).expect("porter stemmer produces ASCII")
}

/// Is `w[i]` a consonant under Porter's definition? (`y` is a consonant at
/// position 0 or after a vowel, a vowel after a consonant.)
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's *measure* m of the stem `w[..len]`: the number of VC sequences
/// in the form `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — one full VC block seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// `*v*` — the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `*d` — the stem ends with a double consonant.
fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// `*o` — the stem ends consonant-vowel-consonant, where the final
/// consonant is not `w`, `x` or `y`.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (a, b, c) = (len - 3, len - 2, len - 1);
    is_consonant(w, a)
        && !is_consonant(w, b)
        && is_consonant(w, c)
        && !matches!(w[c], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.ends_with(suffix.as_bytes())
}

/// If the word ends with `suffix` and the remaining stem has measure > `min_m`,
/// replace the suffix with `to` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, to: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(to.as_bytes());
    }
    true // Suffix matched: the step's rule list stops here either way.
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses → ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies → i
    } else if ends_with(w, "ss") {
        // ss → ss (no change)
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1); // s → ""
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed → ee
        }
        return;
    }
    let trimmed = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if !trimmed {
        return;
    }
    // Post-trim fix-ups.
    if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
        w.push(b'e'); // at → ate, bl → ble, iz → ize
    } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.truncate(w.len() - 1); // hopp → hop
    } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
        w.push(b'e'); // fil → file
    }
}

fn step_1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i'; // happy → happi
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, to) in RULES {
        if replace_if_m(w, suffix, to, 0) {
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, to) in RULES {
        if replace_if_m(w, suffix, to, 0) {
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in SUFFIXES {
        if !ends_with(w, suffix) {
            continue;
        }
        let stem_len = w.len() - suffix.len();
        if *suffix == "ion" {
            // (m>1 and (*S or *T)) ion → "": the stem must end in s or t.
            if stem_len > 0
                && matches!(w[stem_len - 1], b's' | b't')
                && measure(w, stem_len) > 1
            {
                w.truncate(stem_len);
            }
        } else if measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return; // Longest-match semantics: first hit ends the step.
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if !ends_with(w, "e") {
        return;
    }
    let stem_len = w.len() - 1;
    let m = measure(w, stem_len);
    if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
        w.truncate(stem_len);
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(porter_stem("caresses"), "caress");
        assert_eq!(porter_stem("ponies"), "poni");
        assert_eq!(porter_stem("caress"), "caress");
        assert_eq!(porter_stem("cats"), "cat");
    }

    #[test]
    fn past_and_gerund() {
        assert_eq!(porter_stem("feed"), "feed");
        assert_eq!(porter_stem("agreed"), "agre"); // eed→ee in 1b, then 5a drops the e
        assert_eq!(porter_stem("plastered"), "plaster");
        assert_eq!(porter_stem("bled"), "bled");
        assert_eq!(porter_stem("motoring"), "motor");
        assert_eq!(porter_stem("sing"), "sing");
    }

    #[test]
    fn post_trim_fixups() {
        assert_eq!(porter_stem("conflated"), "conflat");
        assert_eq!(porter_stem("troubled"), "troubl");
        assert_eq!(porter_stem("sized"), "size");
        assert_eq!(porter_stem("hopping"), "hop");
        assert_eq!(porter_stem("tanned"), "tan");
        assert_eq!(porter_stem("falling"), "fall");
        assert_eq!(porter_stem("hissing"), "hiss");
        assert_eq!(porter_stem("fizzed"), "fizz");
        assert_eq!(porter_stem("failing"), "fail");
        assert_eq!(porter_stem("filing"), "file");
    }

    #[test]
    fn y_to_i() {
        assert_eq!(porter_stem("happy"), "happi");
        assert_eq!(porter_stem("sky"), "sky");
    }

    #[test]
    fn step2_suffixes() {
        assert_eq!(porter_stem("relational"), "relat");
        assert_eq!(porter_stem("conditional"), "condit");
        assert_eq!(porter_stem("rational"), "ration");
        assert_eq!(porter_stem("valenci"), "valenc");
        assert_eq!(porter_stem("digitizer"), "digit");
        assert_eq!(porter_stem("operator"), "oper");
        assert_eq!(porter_stem("feudalism"), "feudal");
        assert_eq!(porter_stem("decisiveness"), "decis");
        assert_eq!(porter_stem("hopefulness"), "hope");
        assert_eq!(porter_stem("callousness"), "callous");
        assert_eq!(porter_stem("formaliti"), "formal");
        assert_eq!(porter_stem("sensitiviti"), "sensit");
        assert_eq!(porter_stem("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_suffixes() {
        assert_eq!(porter_stem("triplicate"), "triplic");
        assert_eq!(porter_stem("formative"), "form");
        assert_eq!(porter_stem("formalize"), "formal");
        assert_eq!(porter_stem("electriciti"), "electr");
        assert_eq!(porter_stem("electrical"), "electr");
        assert_eq!(porter_stem("hopeful"), "hope");
        assert_eq!(porter_stem("goodness"), "good");
    }

    #[test]
    fn step4_suffixes() {
        assert_eq!(porter_stem("revival"), "reviv");
        assert_eq!(porter_stem("allowance"), "allow");
        assert_eq!(porter_stem("inference"), "infer");
        assert_eq!(porter_stem("airliner"), "airlin");
        assert_eq!(porter_stem("adjustable"), "adjust");
        assert_eq!(porter_stem("defensible"), "defens");
        assert_eq!(porter_stem("irritant"), "irrit");
        assert_eq!(porter_stem("replacement"), "replac");
        assert_eq!(porter_stem("adjustment"), "adjust");
        assert_eq!(porter_stem("dependent"), "depend");
        assert_eq!(porter_stem("adoption"), "adopt");
        assert_eq!(porter_stem("homologou"), "homolog");
        assert_eq!(porter_stem("communism"), "commun");
        assert_eq!(porter_stem("activate"), "activ");
        assert_eq!(porter_stem("angulariti"), "angular");
        assert_eq!(porter_stem("homologous"), "homolog");
        assert_eq!(porter_stem("effective"), "effect");
        assert_eq!(porter_stem("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_suffixes() {
        assert_eq!(porter_stem("probate"), "probat");
        assert_eq!(porter_stem("rate"), "rate");
        assert_eq!(porter_stem("cease"), "ceas");
        assert_eq!(porter_stem("controll"), "control");
        assert_eq!(porter_stem("roll"), "roll");
    }

    #[test]
    fn domain_words_from_paper() {
        assert_eq!(porter_stem("swimming"), "swim");
        assert_eq!(porter_stem("swimmers"), "swimmer");
        assert_eq!(porter_stem("training"), "train");
        assert_eq!(porter_stem("freestyle"), "freestyl");
        assert_eq!(porter_stem("restaurants"), "restaur");
    }

    #[test]
    fn short_and_non_ascii_untouched() {
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("città"), "città");
        assert_eq!(porter_stem("Straße"), "Straße");
    }

    #[test]
    fn idempotent_on_sample() {
        for word in [
            "swimming", "relational", "happiness", "organizations", "engineering",
            "conductor", "technological", "recommendations",
        ] {
            let once = porter_stem(word);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but it is on this sample;
            // the guard mostly documents that re-stemming stays stable here.
            assert_eq!(once, twice, "restem({word})");
        }
    }
}
