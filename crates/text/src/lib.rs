//! # rightcrowd-text
//!
//! Standard information-retrieval text processing, reimplemented from
//! scratch as required by the paper's pipeline (§2.3, Fig. 4): sanitisation,
//! tokenisation, stop-word removal, and stemming — plus the character
//! n-gram utilities used by the language-identification crate.
//!
//! The central entry point is [`TextProcessor`], which turns raw social text
//! ("RT @bob: Phelps takes GOLD!! http://t.co/x #london2012") into the
//! normalised term stream the inverted index consumes.

pub mod ngram;
pub mod pipeline;
pub mod sanitize;
pub mod stem;
pub mod stopwords;
pub mod token;

pub use pipeline::{ProcessedText, TextProcessor, TextProcessorConfig};
pub use sanitize::{sanitize, Sanitized};
pub use stem::porter_stem;
pub use token::tokenize;
