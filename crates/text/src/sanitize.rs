//! Sanitisation of raw social-network text.
//!
//! Social resources are noisy: they embed URLs, @-mentions, #hashtags, HTML
//! tags and entities, and retweet markers. The sanitiser removes markup
//! while *preserving the informative parts*: hashtag words are kept (minus
//! the `#`), and embedded URLs are extracted into a side list so the
//! URL-content-enrichment stage (paper §2.3) can resolve them.

/// The result of sanitising one piece of raw text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sanitized {
    /// The cleaned text, ready for tokenisation.
    pub text: String,
    /// Every URL found in the raw text, in order of appearance.
    pub urls: Vec<String>,
}

/// Returns `true` for characters that terminate a URL token.
fn ends_url(c: char) -> bool {
    c.is_whitespace() || matches!(c, '"' | '\'' | '<' | '>' | ')' | ']' | '}')
}

/// Sanitises raw social text.
///
/// Performed transformations, mirroring the paper's preprocessing:
/// - `http://…` / `https://…` / `www.…` URLs are removed from the text and
///   collected into [`Sanitized::urls`];
/// - `@mention` tokens are dropped entirely (they are routing markup, not
///   content);
/// - `#hashtag` keeps the bare word (`#freestyle` → `freestyle`);
/// - HTML tags are stripped; the common HTML entities are decoded;
/// - the retweet marker `RT` at the start of a message is dropped;
/// - runs of whitespace collapse to single spaces.
pub fn sanitize(raw: &str) -> Sanitized {
    let mut out = String::with_capacity(raw.len());
    let mut urls = Vec::new();
    let decoded = decode_entities(raw);
    let stripped = strip_html_tags(&decoded);

    let mut chars = stripped.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        let rest = &stripped[i..];
        if rest.starts_with("http://") || rest.starts_with("https://") || rest.starts_with("www.")
        {
            let end = rest
                .char_indices()
                .find(|&(_, ch)| ends_url(ch))
                .map(|(j, _)| j)
                .unwrap_or(rest.len());
            let url = rest[..end].trim_end_matches(['.', ',', ';', ':', '!', '?']);
            if !url.is_empty() {
                urls.push(url.to_owned());
            }
            // Skip the characters belonging to the URL.
            while let Some(&(j, _)) = chars.peek() {
                if j < i + end {
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(' ');
            continue;
        }
        match c {
            '@' => {
                // Drop the mention handle that follows.
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(' ');
            }
            '#' => {
                // Keep the tag word itself.
                out.push(' ');
            }
            _ => out.push(c),
        }
    }

    let mut cleaned = String::with_capacity(out.len());
    let mut first_token = true;
    for token in out.split_whitespace() {
        if first_token && (token == "RT" || token == "rt") {
            first_token = false;
            continue;
        }
        first_token = false;
        if !cleaned.is_empty() {
            cleaned.push(' ');
        }
        cleaned.push_str(token);
    }

    Sanitized { text: cleaned, urls }
}

/// Removes `<tag …>` spans. Unclosed `<` is treated as literal text.
fn strip_html_tags(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(open) = rest.find('<') {
        match rest[open..].find('>') {
            Some(close) => {
                out.push_str(&rest[..open]);
                out.push(' ');
                rest = &rest[open + close + 1..];
            }
            None => break,
        }
    }
    out.push_str(rest);
    out
}

/// Decodes the HTML entities that actually occur in social feeds.
fn decode_entities(s: &str) -> String {
    // Fast path: no ampersand, no entities.
    if !s.contains('&') {
        return s.to_owned();
    }
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&apos;", "'")
        .replace("&nbsp;", " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_urls_and_cleans_text() {
        let s = sanitize("check this http://example.com/a?b=1 now");
        assert_eq!(s.text, "check this now");
        assert_eq!(s.urls, vec!["http://example.com/a?b=1"]);
    }

    #[test]
    fn https_and_www_forms() {
        let s = sanitize("see https://ex.org and www.ex.org/page.");
        assert_eq!(s.urls, vec!["https://ex.org", "www.ex.org/page"]);
        assert_eq!(s.text, "see and");
    }

    #[test]
    fn url_trailing_punctuation_is_trimmed() {
        let s = sanitize("go to http://a.b/c!");
        assert_eq!(s.urls, vec!["http://a.b/c"]);
    }

    #[test]
    fn mentions_dropped_hashtags_kept() {
        let s = sanitize("RT @alice: great freestyle session #swimming #London2012");
        assert_eq!(s.text, ": great freestyle session swimming London2012");
        assert!(s.urls.is_empty());
    }

    #[test]
    fn html_is_stripped_and_entities_decoded() {
        let s = sanitize("<p>Tom &amp; Jerry</p> <b>rock&nbsp;on</b>");
        assert_eq!(s.text, "Tom & Jerry rock on");
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert_eq!(sanitize("").text, "");
        assert_eq!(sanitize("   \n\t ").text, "");
    }

    #[test]
    fn rt_only_at_start() {
        let s = sanitize("art RT art");
        assert_eq!(s.text, "art RT art");
        let s2 = sanitize("RT art");
        assert_eq!(s2.text, "art");
    }

    #[test]
    fn multiple_urls_in_order() {
        let s = sanitize("a http://one.com b http://two.com c");
        assert_eq!(s.urls, vec!["http://one.com", "http://two.com"]);
        assert_eq!(s.text, "a b c");
    }

    #[test]
    fn unclosed_tag_is_literal() {
        let s = sanitize("x < y and z");
        assert_eq!(s.text, "x < y and z");
    }

    #[test]
    fn unicode_passthrough() {
        let s = sanitize("caffè città @bob naïve");
        assert_eq!(s.text, "caffè città naïve");
    }
}
