//! Stop-word lists.
//!
//! The English list is the one relevant to retrieval quality (the pipeline
//! retains only English resources); the other languages get compact lists
//! used by tests and by the language-identification seed corpora.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The English stop-word list (SMART-derived, trimmed to the function words
/// that actually occur in social text and in the paper's query set).
pub const ENGLISH: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "also", "am", "an", "and", "any",
    "are", "aren", "as", "at", "be", "because", "been", "before", "being", "below", "between",
    "both", "but", "by", "can", "cannot", "could", "couldn", "did", "didn", "do", "does",
    "doesn", "doing", "don", "down", "during", "each", "few", "for", "from", "further", "had",
    "hadn", "has", "hasn", "have", "haven", "having", "he", "her", "here", "hers", "herself",
    "him", "himself", "his", "how", "i", "if", "in", "into", "is", "isn", "it", "its", "itself",
    "just", "let", "ll", "me", "more", "most", "mustn", "my", "myself", "no", "nor", "not",
    "now", "of", "off", "on", "once", "only", "or", "other", "ought", "our", "ours",
    "ourselves", "out", "over", "own", "re", "s", "same", "shan", "she", "should", "shouldn",
    "so", "some", "such", "t", "than", "that", "the", "their", "theirs", "them", "themselves",
    "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "ve", "very", "was", "wasn", "we", "were", "weren", "what", "when", "where",
    "which", "while", "who", "whom", "why", "will", "with", "won", "would", "wouldn", "you",
    "your", "yours", "yourself", "yourselves",
];

/// A compact Italian stop-word list.
pub const ITALIAN: &[&str] = &[
    "a", "ad", "al", "alla", "alle", "anche", "che", "chi", "ci", "come", "con", "cosa", "da",
    "dai", "dal", "dalla", "degli", "dei", "del", "della", "delle", "di", "dove", "e", "ed",
    "era", "essere", "gli", "ha", "hai", "hanno", "ho", "i", "il", "in", "io", "la", "le",
    "lei", "lo", "loro", "lui", "ma", "mi", "mia", "mio", "ne", "nel", "nella", "noi", "non",
    "nostro", "o", "per", "perché", "più", "quale", "quando", "questa", "questo", "se", "sei",
    "si", "sia", "siamo", "sono", "su", "sua", "sul", "sulla", "suo", "ti", "tra", "tu", "tua",
    "tuo", "un", "una", "uno", "vi", "voi",
];

/// A compact French stop-word list.
pub const FRENCH: &[&str] = &[
    "à", "au", "aux", "avec", "ce", "ces", "cette", "dans", "de", "des", "du", "elle", "en",
    "est", "et", "être", "il", "ils", "je", "la", "le", "les", "leur", "lui", "ma", "mais",
    "me", "même", "mes", "moi", "mon", "ne", "nos", "notre", "nous", "on", "ou", "où", "par",
    "pas", "pour", "qu", "que", "qui", "sa", "se", "ses", "son", "sont", "sur", "ta", "te",
    "tes", "toi", "ton", "tu", "un", "une", "vos", "votre", "vous",
];

/// A compact German stop-word list.
pub const GERMAN: &[&str] = &[
    "aber", "als", "am", "an", "auch", "auf", "aus", "bei", "bin", "bis", "bist", "da", "damit",
    "das", "dem", "den", "der", "des", "die", "doch", "du", "ein", "eine", "einem", "einen",
    "einer", "er", "es", "für", "habe", "haben", "hat", "ich", "ihr", "im", "in", "ist", "ja",
    "kann", "mein", "mich", "mir", "mit", "nach", "nicht", "noch", "nur", "oder", "schon",
    "sein", "sich", "sie", "sind", "so", "um", "und", "uns", "vom", "von", "vor", "war", "was",
    "wenn", "wer", "wie", "wir", "zu", "zum", "zur",
];

/// A compact Spanish stop-word list.
pub const SPANISH: &[&str] = &[
    "a", "al", "algo", "como", "con", "de", "del", "donde", "el", "ella", "ellos", "en", "era",
    "es", "esta", "este", "esto", "fue", "ha", "hay", "la", "las", "le", "lo", "los", "más",
    "me", "mi", "muy", "no", "nos", "o", "para", "pero", "por", "porque", "que", "qué", "se",
    "ser", "si", "sin", "sobre", "son", "su", "sus", "también", "te", "tiene", "todo", "tu",
    "un", "una", "uno", "y", "ya", "yo",
];

fn english_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| ENGLISH.iter().copied().collect())
}

/// Whether `token` (already lower-cased) is an English stop word.
///
/// Single-character alphabetic tokens are always stopped: they carry no
/// retrieval signal and inflate the index.
pub fn is_english_stopword(token: &str) -> bool {
    if token.chars().count() == 1 && token.chars().all(char::is_alphabetic) {
        return true;
    }
    english_set().contains(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopped() {
        for w in ["the", "and", "is", "of", "to", "can", "you", "some", "which"] {
            assert!(is_english_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["swimming", "copper", "conductor", "php", "milan", "diablo"] {
            assert!(!is_english_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn single_letters_are_stopped_digits_not() {
        assert!(is_english_stopword("x"));
        assert!(is_english_stopword("q"));
        assert!(!is_english_stopword("3"));
    }

    #[test]
    fn lists_are_lowercase_and_unique() {
        for list in [ENGLISH, ITALIAN, FRENCH, GERMAN, SPANISH] {
            let mut seen = HashSet::new();
            for w in list {
                assert_eq!(*w, w.to_lowercase(), "{w} must be lower-case");
                assert!(seen.insert(*w), "duplicate stop word {w}");
            }
        }
    }
}
