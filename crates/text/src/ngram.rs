//! Character n-gram extraction.
//!
//! Used by `rightcrowd-langid` for Cavnar–Trenkle language profiles. Words
//! are padded with `_` sentinels (the original paper's convention) so that
//! prefix and suffix grams are distinguishable from interior grams.

/// Extracts padded character n-grams of size `n` from `text`, word by word.
///
/// Each word `w` is treated as `_w_` and all windows of `n` characters are
/// emitted, e.g. for `n = 3`, "the" yields `_th`, `the`, `he_`.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let mut grams = Vec::new();
    for word in text.split(|c: char| !c.is_alphanumeric()) {
        if word.is_empty() {
            continue;
        }
        let padded: Vec<char> = std::iter::once('_')
            .chain(word.chars().flat_map(char::to_lowercase))
            .chain(std::iter::once('_'))
            .collect();
        if padded.len() < n {
            continue;
        }
        for window in padded.windows(n) {
            grams.push(window.iter().collect());
        }
    }
    grams
}

/// Counts occurrences of each n-gram, returning (gram, count) pairs sorted
/// by descending count, ties broken lexicographically — the canonical
/// Cavnar–Trenkle profile ordering.
pub fn ngram_profile(text: &str, n: usize) -> Vec<(String, usize)> {
    use std::collections::HashMap;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for g in char_ngrams(text, n) {
        *counts.entry(g).or_insert(0) += 1;
    }
    let mut profile: Vec<(String, usize)> = counts.into_iter().collect();
    profile.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_windows_with_padding() {
        let grams = char_ngrams("the", 3);
        assert_eq!(grams, vec!["_th", "the", "he_"]);
    }

    #[test]
    fn short_words_skipped_when_smaller_than_n() {
        // "a" padded is "_a_" (3 chars) so it yields one trigram.
        assert_eq!(char_ngrams("a", 3), vec!["_a_"]);
        // For n = 4 it is too short.
        assert!(char_ngrams("a", 4).is_empty());
    }

    #[test]
    fn multiple_words_and_case_folding() {
        let grams = char_ngrams("To Be", 2);
        assert_eq!(grams, vec!["_t", "to", "o_", "_b", "be", "e_"]);
    }

    #[test]
    fn profile_sorted_by_count_then_gram() {
        let profile = ngram_profile("aa aa ab", 2);
        // "_a" occurs 3 times; "a_" twice (from "aa" twice); "aa" twice; "ab" once; "b_" once.
        assert_eq!(profile[0].0, "_a");
        assert_eq!(profile[0].1, 3);
        let counts: Vec<usize> = profile.iter().map(|p| p.1).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_n_panics() {
        char_ngrams("x", 0);
    }
}
