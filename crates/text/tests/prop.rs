//! Property tests for the text-processing substrate.

use proptest::prelude::*;
use rightcrowd_text::ngram::{char_ngrams, ngram_profile};
use rightcrowd_text::{porter_stem, sanitize, tokenize, TextProcessor};

proptest! {
    #[test]
    fn stemming_is_total_and_shrinking(word in "[a-z]{3,30}") {
        let stem = porter_stem(&word);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= word.len());
        // A stem of ASCII lower-case input stays ASCII lower-case.
        prop_assert!(stem.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemming_preserves_short_and_mixed_words(word in "([A-Z][a-z]{0,5}|[a-z]{1,2})") {
        // Words of length ≤ 2 or with non-lower-case bytes pass through.
        prop_assert_eq!(porter_stem(&word), word);
    }

    #[test]
    fn tokens_roundtrip_through_tokenizer(text in "[a-z0-9 ]{0,100}") {
        // Tokenising already-tokenised text is the identity.
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn sanitize_collapses_whitespace(text in "\\PC{0,150}") {
        let out = sanitize(&text);
        prop_assert!(!out.text.contains("  "), "double space in {:?}", out.text);
        prop_assert!(!out.text.starts_with(' '));
        prop_assert!(!out.text.ends_with(' '));
    }

    #[test]
    fn sanitize_is_idempotent_when_no_urls(text in "[a-zA-Z ,.!?]{0,150}") {
        let once = sanitize(&text);
        let twice = sanitize(&once.text);
        prop_assert_eq!(&once.text, &twice.text);
        prop_assert!(twice.urls.is_empty());
    }

    #[test]
    fn ngram_count_matches_padded_length(word in "[a-z]{1,20}", n in 1usize..5) {
        let grams = char_ngrams(&word, n);
        let padded = word.chars().count() + 2;
        let expected = padded.saturating_sub(n - 1).saturating_sub(if padded < n { padded } else { 0 });
        if padded >= n {
            prop_assert_eq!(grams.len(), padded - n + 1);
        } else {
            prop_assert!(grams.is_empty());
        }
        let _ = expected;
        for g in &grams {
            prop_assert_eq!(g.chars().count(), n);
        }
    }

    #[test]
    fn profile_counts_sum_to_gram_count(text in "[a-z ]{0,120}", n in 1usize..4) {
        let grams = char_ngrams(&text, n);
        let profile = ngram_profile(&text, n);
        let total: usize = profile.iter().map(|p| p.1).sum();
        prop_assert_eq!(total, grams.len());
    }

    #[test]
    fn processor_never_emits_stopwords_or_empties(text in "\\PC{0,200}") {
        let p = TextProcessor::default();
        for term in p.process(&text).terms {
            prop_assert!(!term.is_empty());
            // Stemmed terms may *become* stop-word-shaped ("ued" → "u" is
            // filtered before stemming, not after), so only pre-stem stop
            // words are guaranteed absent; check a conservative subset
            // that stemming cannot produce from non-stop-words.
            prop_assert_ne!(term.as_str(), "the");
            prop_assert_ne!(term.as_str(), "and");
        }
    }
}
