//! `rc soak` — the closed-loop in-process load harness.
//!
//! Where `rc bench` measures the sequential request path (one query at a
//! time, percentiles of a quiet machine), the soak harness answers the
//! serving question: what does the index deliver **under sustained
//! concurrent load**, and what does watching it cost? N worker threads
//! share one snapshot-loaded corpus and hammer it with a Zipf-skewed
//! query mix — a handful of hot queries dominate, the tail stays warm —
//! while a coordinator thread ticks the [`rightcrowd_obs::timeseries`]
//! sampler once per interval, turning the live counter registry into a
//! per-second series (qps, windowed p50/p90/p99, postings/s, block-skip
//! fraction).
//!
//! One run walks a thread ladder (1 → 2 → 4 → 8 workers by default) and
//! additionally measures a **telemetry-off** phase: the same closed loop
//! with the sampler parked and the per-query probes (latency histogram,
//! wide-event log) skipped. The throughput gap between the two is the
//! observability tax, recorded as `soak_telemetry_overhead_frac` and
//! gated by `rc regress` at ≤3% ([`crate::regress::OBS_OVERHEAD_MAX`]).
//!
//! Artifacts per run (all under `--out`):
//!
//! * `SOAK_<scale>.json` — the full report: per-phase aggregates plus
//!   the per-tick series rows.
//! * `SOAK_<scale>.events.jsonl` — the tail-sampled wide-event query log
//!   ([`rightcrowd_obs::wide`]): errors and the slowest tail always, a
//!   uniform reservoir of the rest.
//! * `SOAK_<scale>.openmetrics` — OpenMetrics exposition rebuilt from
//!   the final phase's window ring, validated before it is written.
//!
//! The headline numbers (`qps_t{1,2,4,8}`, `p50/p99_under_load_t{N}_ms`,
//! the overhead fraction, peak RSS) are also merged into
//! `BENCH_<scale>.json` so the regression gate covers them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rightcrowd_core::ranker::rank_query;
use rightcrowd_core::FinderConfig;
use rightcrowd_obs::timeseries::{Sampler, Window};
use rightcrowd_obs::{BuildInfo, HistId, QueryRecord, WideEvent, WideEventLog};

use crate::regress::{parse_json, Json};
use crate::report::percentile;
use crate::runner::Bench;

/// Zipf exponent of the query mix: weight of the rank-`i` query is
/// `1 / (i + 1)^s`. `s = 1` is the classic web-workload skew.
const ZIPF_S: f64 = 1.0;

/// Wide-event log capacities: uniform reservoir and slow-tail cohort.
const WIDE_RESERVOIR: usize = 256;
const WIDE_TAIL: usize = 64;

/// The compile-time feature string for the OpenMetrics `build_info`.
pub(crate) fn build_features() -> String {
    let mut features: Vec<&str> = Vec::new();
    if !rightcrowd_obs::PROBES_ENABLED {
        features.push("obs-off");
    }
    if cfg!(feature = "blocks-off") {
        features.push("blocks-off");
    }
    if features.is_empty() {
        "default".to_owned()
    } else {
        features.join(",")
    }
}

/// The `build_info` labels for every exposition this binary produces.
pub fn build_info() -> BuildInfo {
    BuildInfo::new(crate::report::git_rev(), build_features())
}

/// Knobs of one soak run (defaults match the CLI defaults).
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Wall-clock length of each measured phase.
    pub duration: Duration,
    /// Stop a phase early once this many queries completed.
    pub query_budget: Option<u64>,
    /// Caps the thread ladder (`None` = the full 1/2/4/8).
    pub max_threads: Option<usize>,
    /// Sampler tick — one series row per tick.
    pub tick: Duration,
    /// Print a live status line per tick (stderr).
    pub watch: bool,
    /// Run the sampling profiler over the telemetry-on ladder and fold
    /// per-query CPU estimates into the wide-event log.
    pub profile: bool,
    /// Seed for the query mix and the wide-event reservoir.
    pub seed: u64,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            duration: Duration::from_secs(10),
            query_budget: None,
            max_threads: None,
            tick: Duration::from_secs(1),
            watch: false,
            profile: false,
            seed: 0x50AC_BEEF,
        }
    }
}

/// The thread ladder a soak run walks: the default rungs capped at
/// `max`, with `max` itself appended when it is not a rung (so
/// `--threads 3` measures 1, 2 *and* 3).
pub fn thread_ladder(max: Option<usize>) -> Vec<usize> {
    let cap = max.unwrap_or(8).max(1);
    let mut ladder: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&n| n <= cap).collect();
    if max.is_some() && !ladder.contains(&cap) {
        ladder.push(cap);
    }
    ladder.sort_unstable();
    ladder
}

/// Deterministic Zipf(`s`) sampler over ranks `0..n` via inverse CDF on
/// precomputed cumulative weights.
pub struct ZipfPicker {
    cumulative: Vec<f64>,
}

impl ZipfPicker {
    /// Builds the cumulative weight table for `n` ranks.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfPicker { cumulative }
    }

    /// Maps a uniform `u ∈ [0, 1)` to a rank (0 = hottest).
    pub fn pick(&self, u: f64) -> usize {
        let Some(&total) = self.cumulative.last() else { return 0 };
        let target = u.clamp(0.0, 1.0) * total;
        self.cumulative.partition_point(|&c| c <= target).min(self.cumulative.len() - 1)
    }
}

/// xorshift64* — the same tiny generator the wide-event reservoir uses;
/// good enough to pick query ranks, and dependency-free.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A uniform f64 in `[0, 1)` from the generator's top 53 bits.
fn next_unit(state: &mut u64) -> f64 {
    (next_rand(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Milliseconds since the Unix epoch (0 when the clock is broken).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One sampler tick of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Window start, milliseconds since the phase's sampler started.
    pub t_ms: u64,
    /// Queries completed in the window.
    pub queries: u64,
    /// Queries per second over the window.
    pub qps: f64,
    /// Windowed latency percentiles (µs, bucket upper bounds).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Postings traversed per second over the window.
    pub postings_per_sec: f64,
    /// Fraction of compressed blocks skipped whole in the window.
    pub block_skip_frac: f64,
}

impl SeriesRow {
    fn from_window(w: &Window) -> Self {
        SeriesRow {
            t_ms: w.start_ms,
            queries: w.hist(HistId::QueryLatency).count,
            qps: w.qps(),
            p50_us: w.latency_percentile_us(0.50),
            p90_us: w.latency_percentile_us(0.90),
            p99_us: w.latency_percentile_us(0.99),
            postings_per_sec: w.postings_per_sec(),
            block_skip_frac: w.block_skip_frac(),
        }
    }

    fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("t_ms".to_owned(), Json::Num(self.t_ms as f64));
        m.insert("queries".to_owned(), Json::Num(self.queries as f64));
        m.insert("qps".to_owned(), Json::Num(self.qps));
        m.insert("p50_us".to_owned(), Json::Num(self.p50_us));
        m.insert("p90_us".to_owned(), Json::Num(self.p90_us));
        m.insert("p99_us".to_owned(), Json::Num(self.p99_us));
        m.insert("postings_per_sec".to_owned(), Json::Num(self.postings_per_sec));
        m.insert("block_skip_frac".to_owned(), Json::Num(self.block_skip_frac));
        Json::Obj(m)
    }
}

/// The aggregate of one soak phase (one ladder rung, or the
/// telemetry-off baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct SoakPhase {
    /// Worker thread count.
    pub threads: usize,
    /// Whether live telemetry ran (sampler ticks + per-query probes).
    pub telemetry: bool,
    /// Queries completed.
    pub queries: u64,
    /// Wall-clock phase length (seconds).
    pub elapsed_s: f64,
    /// Closed-loop throughput.
    pub qps: f64,
    /// Interpolated latency percentiles over every query (ms).
    pub p50_ms: f64,
    /// 90th percentile (ms).
    pub p90_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// One row per sampler tick (empty for telemetry-off phases).
    pub series: Vec<SeriesRow>,
}

impl SoakPhase {
    fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("threads".to_owned(), Json::Num(self.threads as f64));
        m.insert("telemetry".to_owned(), Json::Bool(self.telemetry));
        m.insert("queries".to_owned(), Json::Num(self.queries as f64));
        m.insert("elapsed_s".to_owned(), Json::Num(self.elapsed_s));
        m.insert("qps".to_owned(), Json::Num(self.qps));
        m.insert("p50_ms".to_owned(), Json::Num(self.p50_ms));
        m.insert("p90_ms".to_owned(), Json::Num(self.p90_ms));
        m.insert("p99_ms".to_owned(), Json::Num(self.p99_ms));
        m.insert(
            "series".to_owned(),
            Json::Arr(self.series.iter().map(SeriesRow::to_json).collect()),
        );
        Json::Obj(m)
    }
}

/// Everything one soak run produced.
pub struct SoakReport {
    /// Dataset scale label.
    pub scale: String,
    /// Short git revision of the measuring tree.
    pub git_rev: String,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// Per-phase duration the run was configured with (ms).
    pub duration_ms: u64,
    /// Sampler tick (ms).
    pub tick_ms: u64,
    /// Measured phases in run order (the warmup is discarded).
    pub phases: Vec<SoakPhase>,
    /// `(qps_off − qps_on) / qps_off` at the first ladder rung, floored
    /// at zero — the observability tax `rc regress` gates at ≤3%.
    pub telemetry_overhead_frac: f64,
    /// Peak resident set (`VmHWM`); `None` off Linux.
    pub rss_peak_bytes: Option<u64>,
    /// Wide events offered across the telemetry phases.
    pub events_seen: u64,
    /// Wide events retained after tail sampling.
    pub events_retained: usize,
    /// The tail-sampled query log, one JSON object per line.
    pub events_jsonl: String,
    /// OpenMetrics exposition rebuilt from the final phase's windows.
    pub openmetrics: String,
    /// The sampling profile of the measured ladder, when the run was
    /// started with [`SoakOptions::profile`] (empty under `obs-off`).
    pub profile: Option<rightcrowd_obs::ProfileReport>,
}

/// What one worker brought home.
struct WorkerOut {
    latencies_ns: Vec<u64>,
}

/// Runs one closed-loop phase: `threads` workers against the shared
/// corpus until the deadline or the query budget, the coordinator
/// sampling per tick when `telemetry` is on.
fn run_phase(
    bench: &Bench,
    opts: &SoakOptions,
    threads: usize,
    telemetry: bool,
    duration: Duration,
    wide: Option<&Mutex<WideEventLog>>,
) -> (SoakPhase, Vec<Window>) {
    let ctx = bench.ctx();
    let config = FinderConfig::default();
    let attribution = ctx.attribution(&config);
    let needs = bench.ds.queries();
    let candidates = bench.ds.candidates().len();
    let zipf = ZipfPicker::new(needs.len().max(1), ZIPF_S);
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let sampler = telemetry.then(|| {
        let windows = (duration.as_millis() / opts.tick.as_millis().max(1)) as usize + 8;
        Sampler::with_capacity(windows.max(16))
    });

    let started = Instant::now();
    let deadline = started + duration;
    let (outs, series): (Vec<WorkerOut>, Vec<SeriesRow>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let (stop, completed) = (&stop, &completed);
                let (zipf, attribution, config) = (&zipf, &attribution, &config);
                scope.spawn(move || {
                    let pipeline = rightcrowd_core::AnalysisPipeline::new(bench.ds.kb());
                    let mut rng =
                        opts.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut latencies_ns = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        if needs.is_empty() {
                            break;
                        }
                        let need = &needs[zipf.pick(next_unit(&mut rng))];
                        let _ = rightcrowd_index::take_traversal_stats();
                        // Tag profiler samples with the in-flight query id
                        // so `--profile` can stamp cpu_est_us per event.
                        let _cpu =
                            rightcrowd_obs::prof::query_scope(need.id.index() as u64);
                        let one = Instant::now();
                        let query = pipeline.analyze_query(&need.text);
                        let ranking =
                            rank_query(&bench.corpus, attribution, config, &query, candidates);
                        let elapsed = one.elapsed();
                        let stats = rightcrowd_index::take_traversal_stats();
                        latencies_ns.push(elapsed.as_nanos() as u64);
                        if telemetry {
                            rightcrowd_obs::record(HistId::QueryLatency, elapsed);
                            if let Some(log) = wide {
                                let event = WideEvent {
                                    unix_ms: unix_ms(),
                                    thread: worker as u32,
                                    record: QueryRecord {
                                        query_id: need.id.index() as u64,
                                        label: need.text.clone(),
                                        domain: need.domain.label().to_string(),
                                        alpha: config.alpha,
                                        max_distance: config.max_distance.level() as u8,
                                        window: config.window.label(),
                                        latency_ns: elapsed.as_nanos() as u64,
                                        postings_traversed: stats.traversed,
                                        maxscore_admitted: stats.admitted,
                                        maxscore_pruned: stats.pruned,
                                        top_candidates: ranking
                                            .first()
                                            .map(|r| (r.person.0, r.score))
                                            .into_iter()
                                            .collect(),
                                        cpu_est_us: 0,
                                    },
                                    blocks_total: stats.blocks_total,
                                    blocks_skipped: stats.blocks_skipped,
                                    // The pruning floor this query ended
                                    // at: the weakest positive fused score
                                    // still on the board.
                                    theta: ranking.last().map_or(0.0, |r| r.score),
                                    error: None,
                                };
                                log.lock().expect("wide-event log poisoned").offer(event);
                            }
                        }
                        std::hint::black_box(&ranking);
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        if opts.query_budget.is_some_and(|budget| done >= budget) {
                            stop.store(true, Ordering::Release);
                        }
                    }
                    WorkerOut { latencies_ns }
                })
            })
            .collect();

        // The coordinator: short dozes so a budget stop lands promptly,
        // sampling the window ring once per full tick.
        let mut series = Vec::new();
        let mut last_tick = Instant::now();
        let mut last_total = 0u64;
        while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
            let nap = opts.tick.min(Duration::from_millis(25));
            std::thread::sleep(nap.min(deadline.saturating_duration_since(Instant::now())));
            if last_tick.elapsed() >= opts.tick {
                last_tick = Instant::now();
                if let Some(sampler) = &sampler {
                    let w = sampler.sample();
                    let row = SeriesRow::from_window(&w);
                    if opts.watch {
                        eprintln!(
                            "[soak t{threads}] {:>6.1}s {:>8.0} qps  p50 {:>7.2} ms  p99 {:>7.2} ms  skip {:.2}",
                            started.elapsed().as_secs_f64(),
                            row.qps,
                            row.p50_us / 1e3,
                            row.p99_us / 1e3,
                            row.block_skip_frac,
                        );
                    }
                    series.push(row);
                } else if opts.watch {
                    // No sampler in the off phase; derive qps from the
                    // shared completion counter (same cost both phases).
                    let total = completed.load(Ordering::Relaxed);
                    let window_s = last_tick.duration_since(started).as_secs_f64();
                    let _ = window_s;
                    eprintln!(
                        "[soak t{threads} obs-off] {:>6.1}s {:>8.0} qps",
                        started.elapsed().as_secs_f64(),
                        (total - last_total) as f64 / opts.tick.as_secs_f64().max(1e-9),
                    );
                    last_total = total;
                }
            }
        }
        stop.store(true, Ordering::Release);
        let outs: Vec<WorkerOut> =
            handles.into_iter().map(|h| h.join().expect("soak worker panicked")).collect();
        // One final sample after the workers stopped captures the tail
        // partial window.
        if let Some(sampler) = &sampler {
            let w = sampler.sample();
            if w.hist(HistId::QueryLatency).count > 0 {
                series.push(SeriesRow::from_window(&w));
            }
        }
        (outs, series)
    });
    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);

    let mut latencies_ms: Vec<f64> =
        outs.iter().flat_map(|o| o.latencies_ns.iter().map(|&ns| ns as f64 / 1e6)).collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let queries = latencies_ms.len() as u64;
    let windows = sampler.as_ref().map(Sampler::windows).unwrap_or_default();
    (
        SoakPhase {
            threads,
            telemetry,
            queries,
            elapsed_s,
            qps: queries as f64 / elapsed_s,
            p50_ms: percentile(&latencies_ms, 0.50),
            p90_ms: percentile(&latencies_ms, 0.90),
            p99_ms: percentile(&latencies_ms, 0.99),
            series,
        },
        windows,
    )
}

impl SoakReport {
    /// Runs the full soak: a discarded warmup, the telemetry-on thread
    /// ladder, and the telemetry-off baseline at the first rung.
    pub fn run(bench: &Bench, opts: &SoakOptions) -> SoakReport {
        let ladder = thread_ladder(opts.max_threads);
        let wide = Mutex::new(WideEventLog::new(WIDE_RESERVOIR, WIDE_TAIL, opts.seed));

        // Warmup: touches every cold path (attribution cache, allocator
        // arenas, branch predictors) so the first measured rung is not
        // paying one-time costs. Short, discarded.
        let warmup = opts.duration.div_f64(5.0).clamp(
            Duration::from_millis(200),
            Duration::from_secs(2),
        );
        eprintln!("[soak] warmup: {} threads for {:.1}s...", ladder[ladder.len() - 1], warmup.as_secs_f64());
        let _ = run_phase(bench, opts, ladder[ladder.len() - 1], true, warmup, None);

        // The profiler samples the measured ladder only (warmup is
        // discarded, so sampling it would just dilute the profile). The
        // telemetry-off twin runs inside the sampled region too — its
        // spans are compiled in, only the soak-level probes are skipped —
        // which keeps the on/off phase pair thermally back-to-back.
        let profiler = opts.profile.then(rightcrowd_obs::Profiler::start);

        let mut phases = Vec::new();
        let mut last_windows = Vec::new();

        // Telemetry-on rung 1 first, then its telemetry-off twin
        // back-to-back (thermal/cache drift hits both equally), then the
        // rest of the ladder.
        for (i, &threads) in ladder.iter().enumerate() {
            eprintln!(
                "[soak] measuring {} thread{} (telemetry on) for {:.1}s...",
                threads,
                if threads == 1 { "" } else { "s" },
                opts.duration.as_secs_f64()
            );
            let (phase, windows) =
                run_phase(bench, opts, threads, true, opts.duration, Some(&wide));
            last_windows = windows;
            phases.push(phase);
            if i == 0 {
                eprintln!(
                    "[soak] measuring {} thread{} (telemetry off) for {:.1}s...",
                    threads,
                    if threads == 1 { "" } else { "s" },
                    opts.duration.as_secs_f64()
                );
                let (off, _) = run_phase(bench, opts, threads, false, opts.duration, None);
                phases.push(off);
            }
        }

        let qps_on = phases
            .iter()
            .find(|p| p.telemetry && p.threads == ladder[0])
            .map_or(0.0, |p| p.qps);
        let qps_off = phases
            .iter()
            .find(|p| !p.telemetry && p.threads == ladder[0])
            .map_or(0.0, |p| p.qps);
        let telemetry_overhead_frac =
            if qps_off > 0.0 { ((qps_off - qps_on) / qps_off).max(0.0) } else { 0.0 };

        let mut wide = wide.into_inner().expect("wide-event log poisoned");
        let profile = profiler.map(rightcrowd_obs::Profiler::stop);
        if let Some(profile) = &profile {
            let cpu = profile.query_cpu_us();
            wide.attribute_cpu(&cpu);
            rightcrowd_obs::flight::attribute_cpu(&cpu);
            eprintln!(
                "[soak] profiler: {} samples over {} ticks, CPU attributed to {} queries",
                profile.samples,
                profile.ticks,
                cpu.len()
            );
        }
        let openmetrics = rightcrowd_obs::export::openmetrics_from_windows(
            &build_info(),
            &last_windows,
        );
        SoakReport {
            scale: crate::runner::scale_label(),
            git_rev: crate::report::git_rev(),
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            duration_ms: opts.duration.as_millis() as u64,
            tick_ms: opts.tick.as_millis() as u64,
            phases,
            telemetry_overhead_frac,
            rss_peak_bytes: rightcrowd_obs::rss_peak_bytes(),
            events_seen: wide.seen(),
            events_retained: wide.retained(),
            events_jsonl: wide.to_jsonl(),
            openmetrics,
            profile,
        }
    }

    /// The headline keys merged into `BENCH_<scale>.json`: throughput
    /// and under-load percentiles per default ladder rung, the telemetry
    /// overhead fraction, and peak RSS.
    pub fn bench_entries(&self) -> Vec<(String, Json)> {
        let mut entries = Vec::new();
        for phase in self.phases.iter().filter(|p| p.telemetry) {
            if ![1usize, 2, 4, 8].contains(&phase.threads) {
                continue;
            }
            let t = phase.threads;
            entries.push((format!("qps_t{t}"), Json::Num(phase.qps)));
            entries.push((format!("p50_under_load_t{t}_ms"), Json::Num(phase.p50_ms)));
            entries.push((format!("p99_under_load_t{t}_ms"), Json::Num(phase.p99_ms)));
        }
        entries.push((
            "soak_telemetry_overhead_frac".to_owned(),
            Json::Num(self.telemetry_overhead_frac),
        ));
        if let Some(rss) = self.rss_peak_bytes {
            entries.push(("rss_peak_bytes".to_owned(), Json::Num(rss as f64)));
        }
        entries
    }

    /// Merges [`SoakReport::bench_entries`] into the bench snapshot at
    /// `path` (parse → insert → re-render, so the result stays valid
    /// JSON; keys come out alphabetised). A missing snapshot becomes a
    /// minimal one so a soak-only run still leaves a gateable artifact.
    pub fn merge_into_bench(&self, path: &std::path::Path) -> Result<(), String> {
        let mut doc = match std::fs::read_to_string(path) {
            Ok(text) => parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut m = std::collections::BTreeMap::new();
                m.insert("scale".to_owned(), Json::Str(self.scale.clone()));
                m.insert("git_rev".to_owned(), Json::Str(self.git_rev.clone()));
                Json::Obj(m)
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        for (key, value) in self.bench_entries() {
            doc.set(&key, value);
        }
        std::fs::write(path, doc.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// The full report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut m = std::collections::BTreeMap::new();
        m.insert("scale".to_owned(), Json::Str(self.scale.clone()));
        m.insert("git_rev".to_owned(), Json::Str(self.git_rev.clone()));
        m.insert("unix_time".to_owned(), Json::Num(self.unix_time as f64));
        m.insert("duration_ms".to_owned(), Json::Num(self.duration_ms as f64));
        m.insert("tick_ms".to_owned(), Json::Num(self.tick_ms as f64));
        m.insert(
            "phases".to_owned(),
            Json::Arr(self.phases.iter().map(SoakPhase::to_json).collect()),
        );
        m.insert(
            "soak_telemetry_overhead_frac".to_owned(),
            Json::Num(self.telemetry_overhead_frac),
        );
        m.insert(
            "rss_peak_bytes".to_owned(),
            self.rss_peak_bytes.map_or(Json::Null, |b| Json::Num(b as f64)),
        );
        m.insert("events_seen".to_owned(), Json::Num(self.events_seen as f64));
        m.insert("events_retained".to_owned(), Json::Num(self.events_retained as f64));
        for (key, value) in self.bench_entries() {
            m.entry(key).or_insert(value);
        }
        Json::Obj(m).render()
    }

    /// Writes the three artifacts into `dir` (created if missing) and
    /// merges the headline keys into `BENCH_<scale>.json` there. The
    /// OpenMetrics text is validated before it is written — an
    /// exposition this binary cannot re-parse is a bug, not an artifact.
    /// Returns the paths written.
    pub fn write_to(&self, dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut written = Vec::new();

        let json_path = dir.join(format!("SOAK_{}.json", self.scale));
        std::fs::write(&json_path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        written.push(json_path);

        let events_path = dir.join(format!("SOAK_{}.events.jsonl", self.scale));
        std::fs::write(&events_path, &self.events_jsonl)
            .map_err(|e| format!("cannot write {}: {e}", events_path.display()))?;
        written.push(events_path);

        rightcrowd_obs::validate_openmetrics(&self.openmetrics)
            .map_err(|e| format!("soak exposition failed validation: {e}"))?;
        let om_path = dir.join(format!("SOAK_{}.openmetrics", self.scale));
        std::fs::write(&om_path, &self.openmetrics)
            .map_err(|e| format!("cannot write {}: {e}", om_path.display()))?;
        written.push(om_path);

        let bench_path = dir.join(format!("BENCH_{}.json", self.scale));
        self.merge_into_bench(&bench_path)?;
        written.push(bench_path);
        Ok(written)
    }
}

/// A minimal keep-alive HTTP/1.1 client for driving `rc serve` over
/// real TCP: enough protocol for `POST /rank`, `GET /healthz` and the
/// chunked `GET /metrics` exposition.
pub struct SoakClient {
    addr: String,
    stream: std::net::TcpStream,
    carry: Vec<u8>,
    /// The last response carried `Connection: close` — the daemon caps
    /// requests per connection, so the next request needs a fresh one.
    close_after: bool,
}

impl SoakClient {
    /// Connects to the daemon with a request timeout.
    pub fn connect(addr: &str) -> Result<SoakClient, String> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(10))))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| format!("cannot configure socket to {addr}: {e}"))?;
        Ok(SoakClient { addr: addr.to_owned(), stream, carry: Vec::new(), close_after: false })
    }

    /// Replaces the connection (announced close, request cap, idle
    /// timeout) — the reconnect cost lands in the measured latency,
    /// which is what a real client of the daemon would pay too.
    fn reconnect(&mut self) -> Result<(), String> {
        *self = SoakClient::connect(&self.addr)?;
        Ok(())
    }

    /// `POST path` with a JSON body; returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> Result<(u16, Vec<u8>), String> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: rc\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.round_trip(&request)
    }

    /// `GET path`; returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> Result<(u16, Vec<u8>), String> {
        let request = format!("GET {path} HTTP/1.1\r\nHost: rc\r\n\r\n");
        self.round_trip(&request)
    }

    /// Sends one request and reads its response, transparently taking
    /// a fresh connection when the daemon announced a close — and
    /// retrying once on a fresh connection when the old one died
    /// unannounced (keep-alive idled out between requests). A failure
    /// on the fresh connection is real and propagates.
    fn round_trip(&mut self, request: &str) -> Result<(u16, Vec<u8>), String> {
        if self.close_after {
            self.reconnect()?;
        }
        match self.send_and_read(request) {
            Ok(response) => Ok(response),
            Err(_) => {
                self.reconnect()?;
                self.send_and_read(request)
            }
        }
    }

    fn send_and_read(&mut self, request: &str) -> Result<(u16, Vec<u8>), String> {
        use std::io::Write;
        self.stream.write_all(request.as_bytes()).map_err(|e| format!("send: {e}"))?;
        self.read_response()
    }

    /// Reads one response off the keep-alive connection —
    /// Content-Length-framed or chunked — leaving any pipelined surplus
    /// in the carry buffer.
    fn read_response(&mut self) -> Result<(u16, Vec<u8>), String> {
        let head_end = loop {
            if let Some(i) =
                self.carry.windows(4).position(|w| w == b"\r\n\r\n")
            {
                break i + 4;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.carry[..head_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line: {:?}", head.lines().next()))?;
        let header = |name: &str| {
            head.lines().find_map(|l| {
                let (n, value) = l.split_once(':')?;
                n.eq_ignore_ascii_case(name).then(|| value.trim().to_owned())
            })
        };
        self.close_after =
            header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let chunked = header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        if chunked {
            self.carry.drain(..head_end);
            return Ok((status, self.read_chunked_body()?));
        }
        let length: usize = header("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| "response without Content-Length".to_owned())?;
        self.carry.drain(..head_end);
        while self.carry.len() < length {
            self.fill()?;
        }
        let body: Vec<u8> = self.carry.drain(..length).collect();
        Ok((status, body))
    }

    /// Reassembles a chunked body: `size-hex\r\n data \r\n` repeated,
    /// terminated by a zero-size chunk.
    fn read_chunked_body(&mut self) -> Result<Vec<u8>, String> {
        let mut body = Vec::new();
        loop {
            let line_end = loop {
                if let Some(i) = self.carry.windows(2).position(|w| w == b"\r\n") {
                    break i;
                }
                self.fill()?;
            };
            let size_line = String::from_utf8_lossy(&self.carry[..line_end]).into_owned();
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("malformed chunk size {size_line:?}"))?;
            self.carry.drain(..line_end + 2);
            while self.carry.len() < size + 2 {
                self.fill()?;
            }
            body.extend(self.carry.drain(..size));
            self.carry.drain(..2); // the chunk's trailing CRLF
            if size == 0 {
                return Ok(body);
            }
        }
    }

    /// Reads more bytes from the daemon into the carry buffer.
    fn fill(&mut self) -> Result<(), String> {
        use std::io::Read;
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection mid-response".to_owned());
        }
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

/// The `/rank` request body connect-mode sends for `text` — also what
/// the bit-identity pre-check posts, so the two cannot diverge.
fn rank_body(text: &str) -> String {
    format!("{{\"query\": {}, \"top\": 10}}", rightcrowd_serve::http::json_escape(text))
}

/// Runs one closed-loop connect-mode phase: `threads` workers, each on
/// its own keep-alive connection, posting Zipf-picked queries to the
/// daemon until the deadline or budget. Latency is the full round trip
/// (serialise + TCP + daemon rank + response), which is the number a
/// client of the daemon actually experiences.
fn run_connect_phase(
    bench: &Bench,
    opts: &SoakOptions,
    addr: &str,
    threads: usize,
    duration: Duration,
) -> Result<SoakPhase, String> {
    let needs = bench.ds.queries();
    let zipf = ZipfPicker::new(needs.len().max(1), ZIPF_S);
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);

    let started = Instant::now();
    let deadline = started + duration;
    let outs: Vec<Result<WorkerOut, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let (stop, completed, zipf) = (&stop, &completed, &zipf);
                scope.spawn(move || {
                    let mut client = SoakClient::connect(addr)?;
                    let mut rng =
                        opts.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut latencies_ns = Vec::new();
                    while !stop.load(Ordering::Acquire) && !needs.is_empty() {
                        let need = &needs[zipf.pick(next_unit(&mut rng))];
                        let body = rank_body(&need.text);
                        let one = Instant::now();
                        let (status, _) = client.post("/rank", &body)?;
                        let elapsed = one.elapsed();
                        if status != 200 {
                            return Err(format!(
                                "daemon answered {status} to a well-formed /rank request"
                            ));
                        }
                        latencies_ns.push(elapsed.as_nanos() as u64);
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        if opts.query_budget.is_some_and(|budget| done >= budget) {
                            stop.store(true, Ordering::Release);
                        }
                    }
                    Ok(WorkerOut { latencies_ns })
                })
            })
            .collect();

        while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
            std::thread::sleep(
                Duration::from_millis(25)
                    .min(deadline.saturating_duration_since(Instant::now())),
            );
        }
        stop.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().expect("connect worker panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);

    let mut latencies_ms = Vec::new();
    for out in outs {
        latencies_ms
            .extend(out?.latencies_ns.iter().map(|&ns| ns as f64 / 1e6));
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let queries = latencies_ms.len() as u64;
    Ok(SoakPhase {
        threads,
        // Client-side phases carry no sampler: the daemon owns the live
        // registry (scrape `GET /metrics` for it).
        telemetry: false,
        queries,
        elapsed_s,
        qps: queries as f64 / elapsed_s,
        p50_ms: percentile(&latencies_ms, 0.50),
        p90_ms: percentile(&latencies_ms, 0.90),
        p99_ms: percentile(&latencies_ms, 0.99),
        series: Vec::new(),
    })
}

/// Everything one `rc soak --connect` run produced: the thread ladder
/// replayed against a live daemon over TCP.
pub struct ConnectReport {
    /// Dataset scale label (checked against the daemon's `/healthz`).
    pub scale: String,
    /// Short git revision of the measuring tree.
    pub git_rev: String,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// The daemon address driven.
    pub addr: String,
    /// Per-phase duration the run was configured with (ms).
    pub duration_ms: u64,
    /// Queries whose served bytes were verified against in-process
    /// ranking before the ladder ran.
    pub identity_checked: usize,
    /// Measured phases in ladder order (the warmup is discarded).
    pub phases: Vec<SoakPhase>,
}

impl ConnectReport {
    /// Runs the connect-mode soak: verifies the daemon serves this
    /// tree's exact bytes (scale via `/healthz`, then byte-identity of
    /// `/rank` against in-process [`crate::serve_app::rank_response`]
    /// for a prefix of the workload), then walks the thread ladder.
    pub fn run(bench: &Bench, addr: &str, opts: &SoakOptions) -> Result<ConnectReport, String> {
        let scale = crate::runner::scale_label();
        let mut probe = SoakClient::connect(addr)?;
        let (status, health) = probe.get("/healthz")?;
        if status != 200 {
            return Err(format!("{addr}/healthz answered {status}"));
        }
        let health = parse_json(&String::from_utf8_lossy(&health))
            .map_err(|e| format!("{addr}/healthz body is not JSON: {e}"))?;
        match health.get("scale") {
            Some(Json::Str(daemon_scale)) if *daemon_scale == scale => {}
            Some(Json::Str(daemon_scale)) => {
                return Err(format!(
                    "scale mismatch: daemon serves {daemon_scale:?}, this run is {scale:?} \
                     (set RIGHTCROWD_SCALE or --scale to match)"
                ));
            }
            _ => return Err(format!("{addr}/healthz reports no scale")),
        }

        // Bit-identity: the served response must be byte-for-byte what
        // in-process ranking renders, or every latency this run measures
        // describes some other computation.
        let config = FinderConfig::default();
        let attribution = bench.ctx().attribution(&config);
        let checked: Vec<&rightcrowd_synth::ExpertiseNeed> =
            bench.ds.queries().iter().take(3).collect();
        for need in &checked {
            let (expected, _) =
                crate::serve_app::rank_response(bench, &attribution, &config, &need.text, 10);
            let (status, served) = probe.post("/rank", &rank_body(&need.text))?;
            if status != 200 {
                return Err(format!("{addr}/rank answered {status} during identity check"));
            }
            if served != expected.as_bytes() {
                return Err(format!(
                    "served response for {:?} differs from in-process ranking \
                     ({} vs {} bytes) — daemon built from a different tree or snapshot?",
                    need.text,
                    served.len(),
                    expected.len()
                ));
            }
        }
        eprintln!(
            "[soak] identity: {} served responses byte-identical to in-process ranking",
            checked.len()
        );

        let ladder = thread_ladder(opts.max_threads);
        let warmup = opts
            .duration
            .div_f64(5.0)
            .clamp(Duration::from_millis(200), Duration::from_secs(2));
        eprintln!(
            "[soak] warmup: {} connection(s) against {addr} for {:.1}s...",
            ladder[ladder.len() - 1],
            warmup.as_secs_f64()
        );
        let _ = run_connect_phase(bench, opts, addr, ladder[ladder.len() - 1], warmup)?;

        let mut phases = Vec::new();
        for &threads in &ladder {
            eprintln!(
                "[soak] measuring {threads} connection(s) against {addr} for {:.1}s...",
                opts.duration.as_secs_f64()
            );
            phases.push(run_connect_phase(bench, opts, addr, threads, opts.duration)?);
        }
        Ok(ConnectReport {
            scale,
            git_rev: crate::report::git_rev(),
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            addr: addr.to_owned(),
            duration_ms: opts.duration.as_millis() as u64,
            identity_checked: checked.len(),
            phases,
        })
    }

    /// The headline keys merged into `BENCH_<scale>.json`: served
    /// throughput and under-load round-trip percentiles per default
    /// ladder rung, gated by `rc regress` with the same reversed-slack
    /// rules as the in-process soak keys.
    pub fn bench_entries(&self) -> Vec<(String, Json)> {
        let mut entries = Vec::new();
        for phase in &self.phases {
            if ![1usize, 2, 4, 8].contains(&phase.threads) {
                continue;
            }
            let t = phase.threads;
            entries.push((format!("serve_qps_t{t}"), Json::Num(phase.qps)));
            entries.push((format!("serve_p50_under_load_t{t}_ms"), Json::Num(phase.p50_ms)));
            entries.push((format!("serve_p99_under_load_t{t}_ms"), Json::Num(phase.p99_ms)));
        }
        entries
    }

    /// The full report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut m = std::collections::BTreeMap::new();
        m.insert("scale".to_owned(), Json::Str(self.scale.clone()));
        m.insert("git_rev".to_owned(), Json::Str(self.git_rev.clone()));
        m.insert("unix_time".to_owned(), Json::Num(self.unix_time as f64));
        m.insert("addr".to_owned(), Json::Str(self.addr.clone()));
        m.insert("duration_ms".to_owned(), Json::Num(self.duration_ms as f64));
        m.insert("identity_checked".to_owned(), Json::Num(self.identity_checked as f64));
        m.insert(
            "phases".to_owned(),
            Json::Arr(self.phases.iter().map(SoakPhase::to_json).collect()),
        );
        for (key, value) in self.bench_entries() {
            m.entry(key).or_insert(value);
        }
        Json::Obj(m).render()
    }

    /// Writes `SERVE_<scale>.json` into `dir` and merges the headline
    /// keys into `BENCH_<scale>.json` there (same parse → insert →
    /// re-render contract as the in-process soak). Returns the paths
    /// written.
    pub fn write_to(&self, dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut written = Vec::new();

        let json_path = dir.join(format!("SERVE_{}.json", self.scale));
        std::fs::write(&json_path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        written.push(json_path);

        let bench_path = dir.join(format!("BENCH_{}.json", self.scale));
        let mut doc = match std::fs::read_to_string(&bench_path) {
            Ok(text) => {
                parse_json(&text).map_err(|e| format!("{}: {e}", bench_path.display()))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut m = std::collections::BTreeMap::new();
                m.insert("scale".to_owned(), Json::Str(self.scale.clone()));
                m.insert("git_rev".to_owned(), Json::Str(self.git_rev.clone()));
                Json::Obj(m)
            }
            Err(e) => return Err(format!("cannot read {}: {e}", bench_path.display())),
        };
        for (key, value) in self.bench_entries() {
            doc.set(&key, value);
        }
        std::fs::write(&bench_path, doc.render())
            .map_err(|e| format!("cannot write {}: {e}", bench_path.display()))?;
        written.push(bench_path);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_the_default_rungs_and_odd_caps() {
        assert_eq!(thread_ladder(None), vec![1, 2, 4, 8]);
        assert_eq!(thread_ladder(Some(8)), vec![1, 2, 4, 8]);
        assert_eq!(thread_ladder(Some(2)), vec![1, 2]);
        assert_eq!(thread_ladder(Some(3)), vec![1, 2, 3]);
        assert_eq!(thread_ladder(Some(1)), vec![1]);
        assert_eq!(thread_ladder(Some(16)), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn zipf_is_skewed_and_exhaustive() {
        let zipf = ZipfPicker::new(100, ZIPF_S);
        assert_eq!(zipf.pick(0.0), 0);
        assert!(zipf.pick(0.999_999) >= 90);
        let mut rng = 7u64;
        let mut hits = [0u32; 100];
        for _ in 0..100_000 {
            hits[zipf.pick(next_unit(&mut rng))] += 1;
        }
        // Rank 0 carries weight 1 of ~5.19 total: ~19% of the draws —
        // and the tail still gets traffic.
        assert!(hits[0] > hits[10] && hits[10] > 0, "{:?}", &hits[..12]);
        assert!((15_000..25_000).contains(&hits[0]), "rank 0 drew {}", hits[0]);
        // Degenerate sizes stay in range.
        assert_eq!(ZipfPicker::new(1, ZIPF_S).pick(0.9), 0);
        assert_eq!(ZipfPicker::new(0, ZIPF_S).pick(0.5), 0);
    }

    /// Satellite 4's bench-side half: on ranks where the type-7
    /// interpolated percentile (`report::percentile`, PR 2) lands
    /// exactly on an observation, the windowed nearest-rank percentile
    /// reports the upper bound of the bucket holding that same
    /// observation — the two implementations select the same sample.
    #[test]
    fn windowed_percentile_selects_the_interpolated_sample() {
        use rightcrowd_obs::hist::{bucket_upper_ns, PlainHistogram, BUCKETS};
        let bucket_of = |ns: u64| (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        // Odd count, spread across decades, so p ∈ {0, 0.5, 1} all hit
        // integral type-7 ranks.
        let samples: Vec<u64> =
            vec![800, 3_000, 70_000, 500_000, 2_000_000, 40_000_000, 900_000_000];
        let mut window = PlainHistogram::new();
        for &ns in &samples {
            window.record_ns(ns);
        }
        let sorted_ms: Vec<f64> = samples.iter().map(|&ns| ns as f64 / 1e6).collect();
        for p in [0.0, 0.5, 1.0] {
            let exact_ns = (percentile(&sorted_ms, p) * 1e6).round() as u64;
            assert!(samples.contains(&exact_ns), "rank must be integral at p={p}");
            assert_eq!(
                window.percentile_ns(p),
                bucket_upper_ns(bucket_of(exact_ns)),
                "p={p}: windowed result must cover the interpolated sample"
            );
        }
    }

    #[test]
    fn soak_runs_end_to_end_on_a_tiny_corpus() {
        let ds = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
        let bench = Bench { ds, corpus, generate_ms: 1.0, analyze_ms: 1.0 };
        let opts = SoakOptions {
            duration: Duration::from_millis(300),
            query_budget: Some(400),
            max_threads: Some(2),
            tick: Duration::from_millis(100),
            // Exercise the profiled path too — a no-op under obs-off.
            profile: true,
            ..SoakOptions::default()
        };
        let report = SoakReport::run(&bench, &opts);

        // Ladder [1, 2] telemetry-on plus the off twin at rung 1.
        assert_eq!(report.phases.len(), 3);
        assert!(report.profile.is_some(), "--profile must yield a profile report");
        assert!(report.phases.iter().all(|p| p.queries > 0 && p.qps > 0.0));
        assert!(report.phases.iter().all(|p| p.p50_ms <= p.p99_ms));
        let off: Vec<_> = report.phases.iter().filter(|p| !p.telemetry).collect();
        assert_eq!((off.len(), off[0].threads), (1, 1));
        assert!(off[0].series.is_empty(), "no sampler ticks in the off phase");
        assert!((0.0..=1.0).contains(&report.telemetry_overhead_frac));

        // The report is valid JSON carrying the headline keys.
        let doc = parse_json(&report.to_json()).expect("soak json must parse");
        assert!(doc.get("qps_t1").and_then(Json::as_f64).is_some_and(|q| q > 0.0));
        assert!(doc.get("p99_under_load_t2_ms").is_some());
        assert!(doc.get("phases").is_some());

        if rightcrowd_obs::PROBES_ENABLED {
            // Telemetry phases produced series rows, wide events, and a
            // valid exposition.
            assert!(report.phases.iter().any(|p| p.telemetry && !p.series.is_empty()));
            assert!(report.events_seen > 0);
            assert!(report.events_retained > 0);
            assert!(report.events_jsonl.lines().count() == report.events_retained);
            rightcrowd_obs::validate_openmetrics(&report.openmetrics)
                .expect("soak exposition must validate");
        }

        // Artifacts + BENCH merge land on disk.
        let dir = std::env::temp_dir().join(format!("rc-soak-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let existing = dir.join(format!("BENCH_{}.json", report.scale));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&existing, "{\n  \"query_p50_ms\": 1.25\n}\n").unwrap();
        if rightcrowd_obs::PROBES_ENABLED {
            let written = report.write_to(&dir).expect("artifacts must write");
            assert_eq!(written.len(), 4);
            let merged = parse_json(&std::fs::read_to_string(&existing).unwrap()).unwrap();
            // Pre-existing keys survive the merge; soak keys joined them.
            assert_eq!(merged.get("query_p50_ms").and_then(Json::as_f64), Some(1.25));
            assert!(merged.get("qps_t1").is_some());
            assert!(merged.get("soak_telemetry_overhead_frac").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn connect_mode_soaks_a_live_daemon_over_tcp() {
        use rightcrowd_serve::{Server, ServerConfig};

        // The scale label must agree between the in-process bench and
        // the daemon's /healthz, and both read RIGHTCROWD_SCALE — but a
        // parallel test could have set it differently, so build both
        // sides from the same tiny dataset and only compare /healthz
        // against whatever scale_label() currently says.
        let ds = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
        let bench = Bench { ds, corpus, generate_ms: 1.0, analyze_ms: 1.0 };
        let ds2 = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus2 = rightcrowd_core::AnalyzedCorpus::build(&ds2);
        let daemon_bench = Bench { ds: ds2, corpus: corpus2, generate_ms: 1.0, analyze_ms: 1.0 };
        let app = crate::serve_app::RankApp::new(daemon_bench, "in-memory".to_owned(), None);

        rightcrowd_serve::reset_stop();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("ephemeral bind");
        let addr = server.local_addr().expect("bound address").to_string();

        // Requests a drain on drop so a failing assertion below still
        // stops the server instead of deadlocking the scope join.
        struct StopOnDrop;
        impl Drop for StopOnDrop {
            fn drop(&mut self) {
                rightcrowd_serve::request_stop();
            }
        }

        std::thread::scope(|scope| {
            let run = scope.spawn(|| server.run(&app));
            let stopper = StopOnDrop;

            let opts = SoakOptions {
                duration: Duration::from_millis(250),
                query_budget: Some(200),
                max_threads: Some(2),
                ..SoakOptions::default()
            };
            let report =
                ConnectReport::run(&bench, &addr, &opts).expect("connect soak must succeed");
            assert_eq!(report.identity_checked, 3);
            assert_eq!(report.phases.len(), 2, "ladder [1, 2]");
            assert!(report.phases.iter().all(|p| p.queries > 0 && p.qps > 0.0));
            assert!(report.phases.iter().all(|p| p.p50_ms <= p.p99_ms));

            // The report is valid JSON carrying the serve_* keys, and
            // the artifacts merge into an existing BENCH snapshot.
            let doc = parse_json(&report.to_json()).expect("connect json must parse");
            assert!(doc.get("serve_qps_t1").and_then(Json::as_f64).is_some_and(|q| q > 0.0));
            assert!(doc.get("serve_p99_under_load_t2_ms").is_some());
            let dir =
                std::env::temp_dir().join(format!("rc-connect-test-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let existing = dir.join(format!("BENCH_{}.json", report.scale));
            std::fs::write(&existing, "{\n  \"qps_t1\": 100.0\n}\n").unwrap();
            let written = report.write_to(&dir).expect("artifacts must write");
            assert_eq!(written.len(), 2);
            let merged = parse_json(&std::fs::read_to_string(&existing).unwrap()).unwrap();
            assert_eq!(merged.get("qps_t1").and_then(Json::as_f64), Some(100.0));
            assert!(merged.get("serve_qps_t1").is_some());
            std::fs::remove_dir_all(&dir).ok();

            drop(stopper);
            run.join().expect("server thread");
        });
        rightcrowd_serve::reset_stop();
    }
}
