//! Shared experiment plumbing.

use rightcrowd_core::{AnalyzedCorpus, EvalContext};
use rightcrowd_synth::{DatasetConfig, SyntheticDataset};

/// The dataset scale selected by `RIGHTCROWD_SCALE` (tiny/small/paper).
pub fn scale_label() -> String {
    std::env::var("RIGHTCROWD_SCALE").unwrap_or_else(|_| "small".to_owned())
}

/// Loads the dataset at the selected scale.
pub fn load_dataset() -> SyntheticDataset {
    let config = match scale_label().as_str() {
        "tiny" => DatasetConfig::tiny(),
        "paper" => DatasetConfig::paper(),
        "small" => DatasetConfig::small(),
        other => {
            eprintln!("unknown RIGHTCROWD_SCALE {other:?}, using small");
            DatasetConfig::small()
        }
    };
    SyntheticDataset::generate(&config)
}

/// How an existing snapshot container was loaded, for progress output
/// and the daemon's `/healthz` report.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotLoad {
    /// Whether the container was a sharded directory (vs a monolithic
    /// file).
    pub sharded: bool,
    /// Whether the shards were `RCSHRD02` files opened zero-copy via
    /// `mmap(2)` (always `false` for monolithic containers).
    pub mapped: bool,
    /// Shard files read (1 for a monolithic container).
    pub shard_count: usize,
    /// Total bytes read and verified.
    pub bytes: u64,
    /// The sharded manifest's whole-file digest — the snapshot identity
    /// `/healthz` fingerprints on the mapped path (it attests the shard
    /// table and thus every shard without paging the index in). `None`
    /// for monolithic containers.
    pub manifest_digest: Option<u64>,
    /// Wall time of read + verify + reconstruct, milliseconds.
    pub elapsed_ms: f64,
}

/// Loads an *existing* snapshot container, auto-detecting the layout: a
/// directory holding `manifest.rcm` goes through the parallel sharded
/// path, a file through the monolithic one, and anything else (including
/// a manifest-less directory) is a typed error. This is the one loader
/// every `--snapshot` consumer shares — `rc bench`, `explain`, `flight`,
/// `regress`, `soak`, and the resident `rc serve` daemon — so sharded
/// detection and integrity failures behave identically everywhere.
pub fn load_snapshot(
    path: &std::path::Path,
    threads: usize,
) -> Result<(SyntheticDataset, AnalyzedCorpus, SnapshotLoad), String> {
    if rightcrowd_store::is_sharded(path) {
        let (ds, corpus, stats) = rightcrowd_store::load_sharded(path, threads)
            .map_err(|e| format!("snapshot {}: {e}", path.display()))?;
        let load = SnapshotLoad {
            sharded: true,
            mapped: stats.mapped,
            shard_count: stats.shard_count,
            bytes: stats.bytes,
            manifest_digest: Some(stats.manifest_digest),
            elapsed_ms: stats.elapsed_ms,
        };
        return Ok((ds, corpus, load));
    }
    if path.is_file() {
        let (ds, corpus, stats) = rightcrowd_store::load(path)
            .map_err(|e| format!("snapshot {}: {e}", path.display()))?;
        let load = SnapshotLoad {
            sharded: false,
            mapped: false,
            shard_count: 1,
            bytes: stats.bytes,
            manifest_digest: None,
            elapsed_ms: stats.elapsed_ms,
        };
        return Ok((ds, corpus, load));
    }
    if path.is_dir() {
        // An existing directory without a manifest is not a snapshot we
        // can load (or should ever overwrite).
        return Err(format!(
            "snapshot {}: directory exists but holds no {}",
            path.display(),
            rightcrowd_store::MANIFEST_FILE
        ));
    }
    Err(format!("snapshot {}: no such file or directory", path.display()))
}

/// A ready-to-run experiment bench: dataset + analysed corpus, plus the
/// build timings recorded for the perf trajectory (`BENCH_<scale>.json`).
pub struct Bench {
    /// The generated dataset.
    pub ds: SyntheticDataset,
    /// The analysed corpus.
    pub corpus: AnalyzedCorpus,
    /// Wall-clock milliseconds spent generating the dataset.
    pub generate_ms: f64,
    /// Wall-clock milliseconds spent analysing + indexing the corpus.
    pub analyze_ms: f64,
}

impl Bench {
    /// Generates and analyses at the environment-selected scale, with
    /// progress output on stderr.
    pub fn prepare() -> Self {
        eprintln!("[bench] generating dataset (scale: {})...", scale_label());
        let started = std::time::Instant::now();
        let ds = load_dataset();
        let generate_ms = started.elapsed().as_secs_f64() * 1e3;
        let (persons, profiles, resources, containers) = ds.graph().counts();
        eprintln!(
            "[bench]   {persons} candidates / {profiles} profiles / {resources} resources / {containers} containers ({generate_ms:.0} ms)",
        );
        eprintln!("[bench] analysing corpus (pipeline + indexing)...");
        let started = std::time::Instant::now();
        let corpus = AnalyzedCorpus::build(&ds);
        let analyze_ms = started.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "[bench]   {} retained, {} dropped as non-English ({analyze_ms:.0} ms)",
            corpus.retained(),
            corpus.dropped_non_english(),
        );
        Bench { ds, corpus, generate_ms, analyze_ms }
    }

    /// Like [`Bench::prepare`], but served from a store container when one
    /// is given: an existing file is loaded (verified checksums, no
    /// pipeline run — the *query many* half of the serving story), and a
    /// missing file is populated after the cold build so the next run —
    /// or the next CI job — hits the cache. The container kind is detected
    /// at runtime: a directory holding `manifest.rcm` loads through the
    /// parallel sharded path, anything else through the monolithic one. A
    /// damaged or mismatched container is an error (its typed
    /// [`rightcrowd_store::StoreError`] rendered), never a silent rebuild.
    pub fn prepare_with(snapshot: Option<&std::path::Path>) -> Result<Self, String> {
        Self::prepare_with_opts(snapshot, None)
    }

    /// [`Bench::prepare_with`] with a shard policy for the cache-miss
    /// path: when the snapshot is absent and `shards` is given, the cold
    /// build is cached as a sharded directory instead of a monolithic
    /// file. Loading always auto-detects, so `shards` never changes how an
    /// *existing* snapshot is read.
    pub fn prepare_with_opts(
        snapshot: Option<&std::path::Path>,
        shards: Option<usize>,
    ) -> Result<Self, String> {
        let Some(path) = snapshot else { return Ok(Self::prepare()) };
        let threads = rightcrowd_core::par::default_threads();
        if rightcrowd_store::is_sharded(path) || path.is_file() {
            eprintln!(
                "[bench] loading {}snapshot {}...",
                if rightcrowd_store::is_sharded(path) { "sharded " } else { "" },
                path.display()
            );
            let (ds, corpus, load) = load_snapshot(path, threads)?;
            eprintln!(
                "[bench]   {} retained docs from {} shard(s) / {} bytes in {:.0} ms (pipeline skipped)",
                corpus.retained(),
                load.shard_count,
                load.bytes,
                load.elapsed_ms,
            );
            // No pipeline ran, so there are no build timings to report.
            return Ok(Bench { ds, corpus, generate_ms: 0.0, analyze_ms: 0.0 });
        }
        if path.is_dir() && shards.is_none() {
            // An existing directory without a manifest is not a snapshot
            // we can (or should) overwrite with a monolithic file.
            return Err(format!(
                "snapshot {}: directory exists but holds no {}",
                path.display(),
                rightcrowd_store::MANIFEST_FILE
            ));
        }
        let bench = Self::prepare();
        match shards {
            Some(n) => match rightcrowd_store::save_sharded(path, &bench.ds, &bench.corpus, n, threads) {
                Ok(saved) => eprintln!(
                    "[bench]   cached sharded snapshot {} ({} shards, {} bytes, {:.0} ms)",
                    path.display(),
                    saved.shard_count,
                    saved.bytes,
                    saved.elapsed_ms,
                ),
                Err(e) => eprintln!("[bench]   warning: cannot cache {}: {e}", path.display()),
            },
            None => match rightcrowd_store::save(path, &bench.ds, &bench.corpus) {
                Ok(saved) => eprintln!(
                    "[bench]   cached snapshot {} ({} bytes, {:.0} ms)",
                    path.display(),
                    saved.bytes,
                    saved.elapsed_ms,
                ),
                // A failed cache write only costs the next run a rebuild.
                Err(e) => eprintln!("[bench]   warning: cannot cache {}: {e}", path.display()),
            },
        }
        Ok(bench)
    }

    /// The evaluation context over this bench.
    pub fn ctx(&self) -> EvalContext<'_> {
        EvalContext::new(&self.ds, &self.corpus)
    }
}

/// Least-squares linear regression over (x, y) points.
/// Returns `(slope, intercept, pearson_r)`; zeros on degenerate input.
pub fn linear_regression(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (0.0, 0.0, 0.0);
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let syy: f64 = points.iter().map(|p| p.1 * p.1).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let cov = sxy - sx * sy / n;
    let var_x = sxx - sx * sx / n;
    let var_y = syy - sy * sy / n;
    if var_x <= 0.0 || var_y <= 0.0 {
        return (0.0, sy / n, 0.0);
    }
    let slope = cov / var_x;
    let intercept = (sy - slope * sx) / n;
    let r = cov / (var_x * var_y).sqrt();
    (slope, intercept, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_with_rejects_a_damaged_snapshot() {
        let dir = std::env::temp_dir().join(format!("rc-runner-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.rcs");
        std::fs::write(&path, b"definitely not a container").unwrap();
        let err = match Bench::prepare_with(Some(&path)) {
            Err(err) => err,
            Ok(_) => panic!("damaged snapshot must fail"),
        };
        assert!(err.contains("bad.rcs"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepare_with_loads_a_sharded_directory() {
        let (ds, corpus) = rightcrowd_core::testkit::tiny();
        let dir = std::env::temp_dir().join(format!("rc-runner-sharded-{}", std::process::id()));
        rightcrowd_store::save_sharded(&dir, ds, corpus, 3, 2).unwrap();
        let bench = Bench::prepare_with(Some(&dir)).unwrap();
        assert_eq!(bench.corpus.index(), corpus.index());
        // A directory that is not a sharded snapshot must not be treated
        // as a cache miss and silently overwritten.
        std::fs::remove_file(rightcrowd_store::manifest_path(&dir)).unwrap();
        let err = match Bench::prepare_with(Some(&dir)) {
            Err(err) => err,
            Ok(_) => panic!("manifest-less directory must fail"),
        };
        assert!(err.contains("no manifest.rcm"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_snapshot_types_a_missing_path() {
        let missing = std::path::Path::new("/nonexistent/rc-snap.rcs");
        let err = load_snapshot(missing, 2).unwrap_err();
        assert!(err.contains("no such file"), "{err}");
    }

    #[test]
    fn regression_recovers_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        let (slope, intercept, r) = linear_regression(&pts);
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_degenerate_cases() {
        assert_eq!(linear_regression(&[]), (0.0, 0.0, 0.0));
        assert_eq!(linear_regression(&[(1.0, 2.0)]), (0.0, 0.0, 0.0));
        // Vertical spread with no x variance.
        let (s, _, r) = linear_regression(&[(1.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s, 0.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn negative_correlation() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        let (_, _, r) = linear_regression(&pts);
        assert!((r + 1.0).abs() < 1e-9);
    }
}
