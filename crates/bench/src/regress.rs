//! `rc regress` — the perf-regression harness.
//!
//! Diffs two `BENCH_<scale>.json` snapshots (a committed baseline and a
//! fresh run) over the latency-bearing keys and fails when any regresses
//! past a relative threshold. Snapshots are produced by
//! [`crate::report::BenchReport`]; the parser below is a minimal
//! recursive-descent JSON reader (objects, arrays, strings, numbers,
//! booleans, null) — enough for the snapshot schema while keeping the
//! workspace free of serialisation dependencies.

use std::collections::BTreeMap;

/// A parsed JSON value (the subset the snapshots use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all snapshot numbers fit f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Inserts (or replaces) an object member; no-op on other variants.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(m) = self {
            m.insert(key.to_owned(), value);
        }
    }

    /// Pretty-prints the value as a JSON document (2-space indent,
    /// alphabetical object keys — `BTreeMap` order — and a trailing
    /// newline). Round-trips through [`parse_json`]; `rc soak` uses this
    /// to merge its keys into an existing `BENCH_<scale>.json`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            for _ in 0..depth {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values print without a fractional part so
                // counters survive a parse → render round trip verbatim.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, depth + 1);
                    render_json_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted JSON string with the required escapes.
fn render_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { at: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(format!("invalid number {text:?}")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            // \uXXXX — decode the BMP code point (snapshot
                            // strings never need surrogate pairs).
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError {
                            at: self.pos,
                            message: "invalid utf-8".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(value)
}

/// The latency-bearing snapshot keys compared by the harness, in report
/// order. Throughput and metric counters are informational, not gated.
pub const LATENCY_KEYS: &[&str] = &[
    "generate_ms",
    "analyze_ms",
    "cold_build_ms",
    "snapshot_load_ms",
    "sharded_load_ms_t1",
    "sharded_load_ms_t2",
    "sharded_load_ms_t4",
    "sharded_load_ms_t8",
    "warm_open_ms",
    "cold_open_ms",
    "query_p50_ms",
    "query_p99_ms",
    "alpha_sweep_naive_ms",
    "alpha_sweep_factored_ms",
];

/// The snapshot-size keys, gated with the same relative-threshold policy
/// as the latency keys (the encoder is deterministic, so unexplained
/// growth is a format or content change, not noise). `postings_bytes` and
/// `manifest_bytes` keep the block-compression win from silently eroding.
pub const SIZE_KEYS: &[&str] =
    &["snapshot_bytes", "postings_bytes", "manifest_bytes", "mapped_bytes"];

/// The under-load latency keys written by `rc soak`: closed-loop p50/p99
/// at each rung of the thread ladder. Gated like [`LATENCY_KEYS`] but
/// with a larger absolute slack — a saturated 8-thread run jitters far
/// more than the sequential bench loop.
pub const UNDER_LOAD_LATENCY_KEYS: &[&str] = &[
    "p50_under_load_t1_ms",
    "p50_under_load_t2_ms",
    "p50_under_load_t4_ms",
    "p50_under_load_t8_ms",
    "p99_under_load_t1_ms",
    "p99_under_load_t2_ms",
    "p99_under_load_t4_ms",
    "p99_under_load_t8_ms",
];

/// The soak throughput keys, gated in the *opposite* direction of the
/// latency keys: a regression is the current run delivering fewer
/// queries per second than the baseline.
pub const THROUGHPUT_KEYS: &[&str] = &["qps_t1", "qps_t2", "qps_t4", "qps_t8"];

/// The served round-trip latency keys written by `rc soak --connect`:
/// closed-loop p50/p99 through a live `rc serve` daemon over TCP.
/// Gated like [`UNDER_LOAD_LATENCY_KEYS`] (same absolute slack — the
/// network round trip jitters at least as hard as the in-process loop).
pub const SERVE_UNDER_LOAD_LATENCY_KEYS: &[&str] = &[
    "serve_p50_under_load_t1_ms",
    "serve_p50_under_load_t2_ms",
    "serve_p50_under_load_t4_ms",
    "serve_p50_under_load_t8_ms",
    "serve_p99_under_load_t1_ms",
    "serve_p99_under_load_t2_ms",
    "serve_p99_under_load_t4_ms",
    "serve_p99_under_load_t8_ms",
];

/// The served throughput keys, gated in the reversed direction with the
/// same slack as [`THROUGHPUT_KEYS`]: fewer served queries per second
/// than the baseline is the regression.
pub const SERVE_THROUGHPUT_KEYS: &[&str] =
    &["serve_qps_t1", "serve_qps_t2", "serve_qps_t4", "serve_qps_t8"];

/// Sub-millisecond latencies jitter hard between runs; a delta is only a
/// regression when it also exceeds this absolute slack (ms).
const ABS_SLACK_MS: f64 = 0.05;

/// Container sizes only move when the encoded content moves; small
/// corpus-statistics drift (varint-free fixed-width encoding keeps this
/// rare) is forgiven below this absolute slack (bytes).
const ABS_SLACK_BYTES: f64 = 1024.0;

/// Under-load latencies jitter with scheduler preemption at saturation;
/// a delta only regresses past this absolute slack (ms).
const ABS_SLACK_UNDER_LOAD_MS: f64 = 0.5;

/// A throughput drop only regresses when it also exceeds this many
/// queries per second (tiny ladders at tiny scales are all noise).
const ABS_SLACK_QPS: f64 = 25.0;

/// Peak RSS moves with allocator arena behaviour and thread count; drift
/// below this absolute slack (bytes) is forgiven.
const ABS_SLACK_RSS_BYTES: f64 = 32.0 * 1024.0 * 1024.0;

/// The telemetry-overhead invariant from the soak harness: a
/// telemetry-on closed loop must deliver within this fraction of the
/// telemetry-off throughput on the same corpus (ISSUE 7's ≤3% budget).
pub const OBS_OVERHEAD_MAX: f64 = 0.03;

/// The sampling-profiler overhead budget: running the workload with the
/// in-process sampler attached must cost at most this fraction of the
/// unprofiled throughput (ISSUE 8). The publisher's per-span cost is a
/// handful of relaxed stores on a thread-owned cache line, so the budget
/// mostly bounds sampler-side interference.
pub const PROFILE_OVERHEAD_MAX: f64 = 0.03;

/// Admission ratios are noisy across machines but should be stable for
/// the same corpus seed; drift beyond this absolute slack (in ratio
/// points) flags a MaxScore accounting or bound-quality change.
const ADMISSION_DRIFT_SLACK: f64 = 0.05;

/// Below this mean shard size, per-file fixed costs (open, buffer setup,
/// one verification pass per file) dominate the parallel sharded load:
/// the thread curve flattens and `sharded_load_ms_t8` moves with
/// scheduler noise rather than real work. The t8 key then gates at twice
/// the relative threshold (see [`RegressReport::compare`]). The bench
/// report labels this condition explicitly (`sharded_load_copy_bound`);
/// the constant doubles as that label's definition.
pub const SMALL_SHARD_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

/// The warm-open contract of the mapped snapshot layout: a sidecar-
/// attested `open_mapped` must be at least this many times faster than
/// the single-threaded streamed sharded load of the same snapshot. The
/// warm path maps files and checks layouts without streaming a byte, so
/// anything below two orders of magnitude means verification snuck back
/// onto the hot path.
pub const WARM_OPEN_MIN_SPEEDUP: f64 = 100.0;

/// One counter-invariant verdict (see [`counter_checks`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterCheck {
    /// Short invariant name.
    pub name: &'static str,
    /// Human-readable evidence (the numbers the verdict came from).
    pub detail: String,
    /// Whether the invariant failed.
    pub failed: bool,
}

/// The MaxScore traversal counters of one snapshot's `metrics` block.
fn traversal_counters(snapshot: &Json) -> Option<(f64, f64, f64)> {
    let counters = snapshot.get("metrics")?.get("counters")?;
    let get = |key: &str| counters.get(key).and_then(Json::as_f64);
    Some((
        get("postings_traversed")?,
        get("maxscore_admitted")?,
        get("maxscore_pruned")?,
    ))
}

/// The block-traversal counters of one snapshot's `metrics` block:
/// `(blocks_total, blocks_decoded, blocks_skipped, postings_skipped)`.
/// `None` for snapshots that predate block compression.
fn block_counters(snapshot: &Json) -> Option<(f64, f64, f64, f64)> {
    let counters = snapshot.get("metrics")?.get("counters")?;
    let get = |key: &str| counters.get(key).and_then(Json::as_f64);
    Some((
        get("blocks_total")?,
        get("blocks_decoded")?,
        get("blocks_skipped")?,
        get("postings_skipped")?,
    ))
}

/// Counter-invariant checks over a snapshot pair, gated alongside the
/// latency keys:
///
/// 1. **Accounting sanity** (each snapshot): every document the MaxScore
///    scorer admits or prunes is discovered either through a traversed
///    posting or as part of a whole skipped block, so `maxscore_admitted +
///    maxscore_pruned` can never exceed `postings_traversed +
///    postings_skipped` (pre-block snapshots carry no `postings_skipped`
///    and reduce to the original `≤ postings_traversed` form). A violation
///    means the counter plumbing drifted from the traversal (e.g. a probe
///    was moved without its twin).
/// 2. **Block accounting** (each snapshot recording block counters): every
///    block the top-k path walks is either decoded or skipped whole —
///    `blocks_decoded + blocks_skipped == blocks_total` — and postings in
///    skipped blocks are a subset of the pruned tally
///    (`postings_skipped ≤ maxscore_pruned`), i.e. they never leak into
///    `postings_traversed`.
/// 3. **Block-max effectiveness** (each snapshot with blocks): a workload
///    that traverses compressed blocks must skip at least one
///    (`blocks_skipped > 0`), otherwise the per-block bounds stopped
///    pruning and the compression is paying decode cost for nothing.
/// 4. **Admission-ratio drift** (baseline vs current): the fraction of
///    touched documents that get fully scored, `admitted / (admitted +
///    pruned)`, is a property of the corpus and the bound quality — not of
///    the machine — so it should be stable run-to-run. Large drift flags a
///    pruning-logic change hiding inside a "pure perf" diff.
///
/// Snapshots without the traversal counters (pre-observability baselines)
/// skip the checks, mirroring how missing latency keys are skipped.
pub fn counter_checks(baseline: &Json, current: &Json) -> Vec<CounterCheck> {
    let mut checks = Vec::new();
    let mut ratios = Vec::new();
    for (label, snap) in [("baseline", baseline), ("current", current)] {
        let Some((traversed, admitted, pruned)) = traversal_counters(snap) else {
            continue;
        };
        let blocks = block_counters(snap);
        let skipped_postings = blocks.map_or(0.0, |(.., postings_skipped)| postings_skipped);
        checks.push(CounterCheck {
            name: "maxscore_accounting",
            detail: format!(
                "{label}: admitted {admitted:.0} + pruned {pruned:.0} vs traversed \
                 {traversed:.0} + skipped {skipped_postings:.0}"
            ),
            failed: admitted + pruned > traversed + skipped_postings,
        });
        if let Some((total, decoded, skipped, postings_skipped)) = blocks {
            checks.push(CounterCheck {
                name: "block_accounting",
                detail: format!(
                    "{label}: decoded {decoded:.0} + skipped {skipped:.0} vs total {total:.0}; \
                     skipped postings {postings_skipped:.0} vs pruned {pruned:.0}"
                ),
                failed: decoded + skipped != total || postings_skipped > pruned,
            });
            if total > 0.0 {
                checks.push(CounterCheck {
                    name: "block_max_skips",
                    detail: format!(
                        "{label}: {skipped:.0} of {total:.0} blocks skipped whole"
                    ),
                    failed: skipped == 0.0,
                });
            }
        }
        if admitted + pruned > 0.0 {
            ratios.push((label, admitted / (admitted + pruned)));
        }
    }
    if let [(_, base), (_, curr)] = ratios.as_slice() {
        checks.push(CounterCheck {
            name: "admission_ratio_drift",
            detail: format!(
                "baseline {:.3} vs current {:.3} (|Δ| {:.3}, slack {ADMISSION_DRIFT_SLACK})",
                base,
                curr,
                (curr - base).abs()
            ),
            failed: (curr - base).abs() > ADMISSION_DRIFT_SLACK,
        });
    }
    checks
}

/// The sharded-load speedup invariant, checked per snapshot that records
/// both loads: a 4-thread sharded load must beat the monolithic load of
/// the same corpus. The sharded path verifies every byte once (the
/// manifest carries each shard's whole-file digest) where the monolithic
/// path verifies twice (per-section and whole-file), so this holds even
/// on a single core; losing it means the shard fan-out went sequentially
/// slow or the single-pass verification regressed. Snapshots that predate
/// sharding skip the check, like missing latency keys.
pub fn sharded_speedup_checks(baseline: &Json, current: &Json) -> Vec<CounterCheck> {
    let mut checks = Vec::new();
    for (label, snap) in [("baseline", baseline), ("current", current)] {
        let (Some(mono), Some(sharded)) = (
            snap.get("snapshot_load_ms").and_then(Json::as_f64),
            snap.get("sharded_load_ms_t4").and_then(Json::as_f64),
        ) else {
            continue;
        };
        checks.push(CounterCheck {
            name: "sharded_load_speedup",
            detail: format!(
                "{label}: sharded t4 {sharded:.3} ms vs monolithic {mono:.3} ms ({:.2}×)",
                if sharded > 0.0 { mono / sharded } else { f64::INFINITY }
            ),
            failed: sharded >= mono,
        });
    }
    checks
}

/// The warm-open speedup invariant, checked per snapshot that records
/// both `warm_open_ms` and `sharded_load_ms_t1`: a sidecar-attested
/// mapped open must be at least [`WARM_OPEN_MIN_SPEEDUP`]× faster than
/// the single-threaded streamed load of the same snapshot. Absolute per
/// snapshot, like the overhead budgets; snapshots that predate the
/// mapped layout skip it.
pub fn warm_open_checks(baseline: &Json, current: &Json) -> Vec<CounterCheck> {
    let mut checks = Vec::new();
    for (label, snap) in [("baseline", baseline), ("current", current)] {
        let (Some(warm), Some(streamed)) = (
            snap.get("warm_open_ms").and_then(Json::as_f64),
            snap.get("sharded_load_ms_t1").and_then(Json::as_f64),
        ) else {
            continue;
        };
        checks.push(CounterCheck {
            name: "warm_open_speedup",
            detail: format!(
                "{label}: warm open {warm:.3} ms vs streamed t1 {streamed:.3} ms ({:.0}×, need \
                 ≥{WARM_OPEN_MIN_SPEEDUP:.0}×)",
                if warm > 0.0 { streamed / warm } else { f64::INFINITY }
            ),
            // Written so NaN (incomparable) fails rather than passes.
            failed: (warm * WARM_OPEN_MIN_SPEEDUP)
                .partial_cmp(&streamed)
                .is_none_or(|ord| ord == std::cmp::Ordering::Greater),
        });
    }
    checks
}

/// The telemetry-overhead invariant, checked per snapshot that records
/// `soak_telemetry_overhead_frac` (written by `rc soak`): the measured
/// throughput cost of running with live telemetry — window sampler,
/// latency histogram, wide-event log — must stay within
/// [`OBS_OVERHEAD_MAX`] of the telemetry-off closed loop. This is an
/// absolute bound, not a baseline-relative one: each snapshot certifies
/// its own measurement. Snapshots that predate the soak harness skip
/// the check, like missing latency keys.
pub fn soak_overhead_checks(baseline: &Json, current: &Json) -> Vec<CounterCheck> {
    let mut checks = Vec::new();
    for (label, snap) in [("baseline", baseline), ("current", current)] {
        let Some(frac) = snap.get("soak_telemetry_overhead_frac").and_then(Json::as_f64)
        else {
            continue;
        };
        checks.push(CounterCheck {
            name: "soak_telemetry_overhead",
            detail: format!(
                "{label}: telemetry-on soak {:.1}% slower than telemetry-off (budget {:.0}%)",
                frac * 100.0,
                OBS_OVERHEAD_MAX * 100.0
            ),
            // Written so NaN (incomparable) fails rather than passes.
            failed: !matches!(
                frac.partial_cmp(&OBS_OVERHEAD_MAX),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
        });
    }
    checks
}

/// The profiler-overhead invariant, checked per snapshot that records
/// `profile_overhead_frac` (written by `rc profile bench`): the workload
/// slowdown with the sampling profiler attached must stay within
/// [`PROFILE_OVERHEAD_MAX`]. Like the telemetry check this is an
/// absolute bound per snapshot, not a baseline-relative diff; snapshots
/// that never ran `rc profile` skip it.
pub fn profile_overhead_checks(baseline: &Json, current: &Json) -> Vec<CounterCheck> {
    let mut checks = Vec::new();
    for (label, snap) in [("baseline", baseline), ("current", current)] {
        let Some(frac) = snap.get("profile_overhead_frac").and_then(Json::as_f64) else {
            continue;
        };
        checks.push(CounterCheck {
            name: "profile_overhead",
            detail: format!(
                "{label}: profiled workload {:.1}% slower than unprofiled (budget {:.0}%)",
                frac * 100.0,
                PROFILE_OVERHEAD_MAX * 100.0
            ),
            // Written so NaN (incomparable) fails rather than passes.
            failed: !matches!(
                frac.partial_cmp(&PROFILE_OVERHEAD_MAX),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
        });
    }
    checks
}

/// One compared key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyDelta {
    /// The snapshot key.
    pub key: &'static str,
    /// Baseline value (ms; bytes for the [`SIZE_KEYS`]).
    pub baseline: f64,
    /// Current value (ms; bytes for the [`SIZE_KEYS`]).
    pub current: f64,
    /// `(current − baseline) / baseline` (0 when the baseline is 0).
    pub ratio: f64,
    /// Whether this key regressed past the threshold.
    pub regressed: bool,
}

/// The outcome of one baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Relative threshold the comparison ran with.
    pub threshold: f64,
    /// Per-key deltas, [`LATENCY_KEYS`] order then [`SIZE_KEYS`] (missing
    /// keys skipped).
    pub deltas: Vec<KeyDelta>,
    /// Counter-invariant verdicts (empty when the snapshots predate the
    /// traversal counters). See [`counter_checks`] and
    /// [`sharded_speedup_checks`].
    pub counters: Vec<CounterCheck>,
    /// Non-fatal advisories (e.g. a dirty-tree baseline): printed by
    /// [`RegressReport::render`], never part of the verdict.
    pub warnings: Vec<String>,
    /// The baseline's `git_rev`, when the snapshot records one — so a
    /// failure summary can say which tree produced the numbers it is
    /// failing against.
    pub baseline_rev: Option<String>,
    /// Whether the baseline snapshot says it was measured on a dirty
    /// work tree (`git_dirty: true`). `None` when the snapshot predates
    /// the provenance keys.
    pub baseline_dirty: Option<bool>,
}

impl RegressReport {
    /// Compares two parsed snapshots.
    pub fn compare(baseline: &Json, current: &Json, threshold: f64) -> Self {
        let mut deltas = Vec::new();
        // When the current run's shards average under `SMALL_SHARD_BYTES`,
        // the t8 load is fixed-cost bound (the scaling curve is flat by
        // construction) and its timing is mostly scheduler noise: gate it
        // at double the threshold instead of dropping it entirely. The
        // bench report labels this condition (`sharded_load_copy_bound`);
        // the label scopes the softened slack exactly — when present it
        // is authoritative, and only snapshots that predate it fall back
        // to inferring from `bytes_per_shard`.
        let small_shards = match current.get("sharded_load_copy_bound") {
            Some(Json::Bool(copy_bound)) => *copy_bound,
            _ => current
                .get("bytes_per_shard")
                .and_then(Json::as_f64)
                .is_some_and(|b| b < SMALL_SHARD_BYTES),
        };
        for &key in LATENCY_KEYS {
            let (Some(b), Some(c)) = (
                baseline.get(key).and_then(Json::as_f64),
                current.get(key).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let key_threshold = if key == "sharded_load_ms_t8" && small_shards {
                threshold * 2.0
            } else {
                threshold
            };
            let ratio = if b > 0.0 { (c - b) / b } else { 0.0 };
            let regressed = ratio > key_threshold && (c - b) > ABS_SLACK_MS;
            deltas.push(KeyDelta { key, baseline: b, current: c, ratio, regressed });
        }
        for &key in UNDER_LOAD_LATENCY_KEYS.iter().chain(SERVE_UNDER_LOAD_LATENCY_KEYS) {
            let (Some(b), Some(c)) = (
                baseline.get(key).and_then(Json::as_f64),
                current.get(key).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let ratio = if b > 0.0 { (c - b) / b } else { 0.0 };
            let regressed = ratio > threshold && (c - b) > ABS_SLACK_UNDER_LOAD_MS;
            deltas.push(KeyDelta { key, baseline: b, current: c, ratio, regressed });
        }
        for &key in THROUGHPUT_KEYS.iter().chain(SERVE_THROUGHPUT_KEYS) {
            let (Some(b), Some(c)) = (
                baseline.get(key).and_then(Json::as_f64),
                current.get(key).and_then(Json::as_f64),
            ) else {
                continue;
            };
            // Reversed direction: lower throughput is the regression.
            let ratio = if b > 0.0 { (c - b) / b } else { 0.0 };
            let regressed = -ratio > threshold && (b - c) > ABS_SLACK_QPS;
            deltas.push(KeyDelta { key, baseline: b, current: c, ratio, regressed });
        }
        for &key in SIZE_KEYS {
            let (Some(b), Some(c)) = (
                baseline.get(key).and_then(Json::as_f64),
                current.get(key).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let ratio = if b > 0.0 { (c - b) / b } else { 0.0 };
            let regressed = ratio > threshold && (c - b) > ABS_SLACK_BYTES;
            deltas.push(KeyDelta { key, baseline: b, current: c, ratio, regressed });
        }
        if let (Some(b), Some(c)) = (
            baseline.get("rss_peak_bytes").and_then(Json::as_f64),
            current.get("rss_peak_bytes").and_then(Json::as_f64),
        ) {
            let ratio = if b > 0.0 { (c - b) / b } else { 0.0 };
            let regressed = ratio > threshold && (c - b) > ABS_SLACK_RSS_BYTES;
            deltas.push(KeyDelta { key: "rss_peak_bytes", baseline: b, current: c, ratio, regressed });
        }
        let mut counters = counter_checks(baseline, current);
        counters.extend(sharded_speedup_checks(baseline, current));
        counters.extend(warm_open_checks(baseline, current));
        counters.extend(soak_overhead_checks(baseline, current));
        counters.extend(profile_overhead_checks(baseline, current));
        let mut warnings = Vec::new();
        if small_shards {
            warnings.push(
                "shards average under 4 MiB (bytes_per_shard): per-file fixed costs flatten \
                 the load-scaling curve, so sharded_load_ms_t8 gates at 2x the threshold"
                    .to_owned(),
            );
        }
        if baseline.get("git_dirty") == Some(&Json::Bool(true)) {
            warnings.push(
                "baseline was measured on a dirty work tree (git_dirty: true); its numbers are \
                 not reproducible from its git_rev — regenerate it from a clean tree"
                    .to_owned(),
            );
        }
        let baseline_rev = match baseline.get("git_rev") {
            Some(Json::Str(rev)) => Some(rev.clone()),
            _ => None,
        };
        let baseline_dirty = match baseline.get("git_dirty") {
            Some(Json::Bool(dirty)) => Some(*dirty),
            _ => None,
        };
        RegressReport { threshold, deltas, counters, warnings, baseline_rev, baseline_dirty }
    }

    /// One-line baseline provenance for failure summaries: which
    /// revision the baseline claims, and whether its tree was dirty —
    /// the first question a failed gate raises ("what am I actually
    /// regressing against?") answered without re-opening the snapshot.
    pub fn provenance(&self) -> String {
        match (&self.baseline_rev, self.baseline_dirty) {
            (Some(rev), Some(true)) => format!("baseline {rev} (DIRTY tree)"),
            (Some(rev), Some(false)) => format!("baseline {rev} (clean tree)"),
            (Some(rev), None) => format!("baseline {rev} (dirtiness unrecorded)"),
            (None, _) => "baseline provenance unrecorded".to_owned(),
        }
    }

    /// Whether any latency key or counter invariant regressed.
    pub fn any_regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed) || self.counters.iter().any(|c| c.failed)
    }

    /// How many latency keys and counter invariants regressed, so the
    /// CLI's collected-failure summary can say "3 regressed" instead of
    /// just "something regressed".
    pub fn regressed_count(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
            + self.counters.iter().filter(|c| c.failed).count()
    }

    /// The comparison as an aligned table with a verdict line.
    pub fn render(&self) -> String {
        // Units: ms for the latency keys, bytes for `snapshot_bytes`.
        let mut out = format!(
            "{:<26} {:>12} {:>12} {:>9}  verdict\n",
            "key", "baseline", "current", "delta"
        );
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<26} {:>12.3} {:>12.3} {:>+8.1}%  {}\n",
                d.key,
                d.baseline,
                d.current,
                d.ratio * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        if !self.counters.is_empty() {
            out.push_str("counter invariants:\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "  {:<24} {}  {}\n",
                    c.name,
                    c.detail,
                    if c.failed { "VIOLATED" } else { "ok" },
                ));
            }
        }
        if self.any_regressed() {
            out.push_str(&format!(
                "FAIL: regression beyond {:.0}% threshold or counter-invariant violation\n",
                self.threshold * 100.0
            ));
        } else {
            out.push_str(&format!(
                "OK: all keys within {:.0}% of baseline\n",
                self.threshold * 100.0
            ));
        }
        out
    }
}

/// Validates Chrome trace-event JSON (`rc trace --check`): the document
/// must parse, carry a non-empty `traceEvents` array, and every event must
/// be an object with the `ph`/`pid`/`name` members chrome://tracing and
/// Perfetto key on. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing \"traceEvents\" array".into());
    };
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".into());
    }
    for (i, event) in events.iter().enumerate() {
        if !matches!(event, Json::Obj(_)) {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
        for key in ["ph", "pid", "name"] {
            if event.get(key).is_none() {
                return Err(format!("traceEvents[{i}] is missing {key:?}"));
            }
        }
    }
    Ok(events.len())
}

/// Reads and compares two snapshot files.
pub fn compare_files(
    baseline: &std::path::Path,
    current: &std::path::Path,
    threshold: f64,
) -> Result<RegressReport, String> {
    let read = |path: &std::path::Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    Ok(RegressReport::compare(&read(baseline)?, &read(current)?, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse_json("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse_json(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse_json(r#""a\"b\\c\ndé""#).unwrap(),
            Json::Str("a\"b\\c\ndé".into())
        );
        assert_eq!(parse_json(r#""naïve""#).unwrap(), Json::Str("naïve".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse_json(r#"{"a": [1, 2, {"b": true}], "c": {"d": null}}"#).unwrap();
        let a = doc.get("a").unwrap();
        assert_eq!(a, &Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.0),
            Json::Obj([("b".to_string(), Json::Bool(true))].into_iter().collect()),
        ]));
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(parse_json("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", r#""open"#] {
            assert!(parse_json(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn parses_a_real_bench_snapshot() {
        let report = crate::report::BenchReport {
            scale: "tiny".into(),
            git_rev: "abc1234".into(),
            git_dirty: false,
            threads: 4,
            unix_time: 1_700_000_000,
            generate_ms: 10.0,
            analyze_ms: 900.0,
            cold_build_ms: 910.0,
            snapshot_load_ms: 45.0,
            snapshot_bytes: 987_654,
            postings_bytes: 123_456,
            compression_ratio: 1.5,
            shard_count: 4,
            manifest_bytes: 4_096,
            bytes_per_shard: 200_000,
            sharded_load_ms_t1: 40.0,
            sharded_load_ms_t2: 28.0,
            sharded_load_ms_t4: 20.0,
            sharded_load_ms_t8: 19.0,
            sharded_load_copy_bound: true,
            warm_open_ms: 0.2,
            cold_open_ms: 35.0,
            mapped_bytes: 800_000,
            retained_docs: 100,
            queries: 30,
            query_p50_ms: 1.0,
            query_p99_ms: 2.0,
            queries_per_sec: 500.0,
            blocks_skipped_frac: 0.4,
            alpha_points: 11,
            alpha_sweep_naive_ms: 300.0,
            alpha_sweep_factored_ms: 60.0,
            alpha_sweep_speedup: 5.0,
            flight: rightcrowd_obs::FlightSummary::default(),
            rss_peak_bytes: Some(64 << 20),
            build_metrics: rightcrowd_obs::snapshot(),
            metrics: rightcrowd_obs::snapshot(),
        };
        let doc = parse_json(&report.to_json()).unwrap();
        assert_eq!(doc.get("query_p50_ms").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("git_dirty"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("snapshot_load_ms").and_then(Json::as_f64), Some(45.0));
        assert_eq!(doc.get("shard_count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("sharded_load_ms_t4").and_then(Json::as_f64), Some(20.0));
        assert_eq!(doc.get("snapshot_bytes").and_then(Json::as_f64), Some(987_654.0));
        assert_eq!(doc.get("postings_bytes").and_then(Json::as_f64), Some(123_456.0));
        assert_eq!(doc.get("compression_ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("bytes_per_shard").and_then(Json::as_f64), Some(200_000.0));
        assert_eq!(doc.get("sharded_load_copy_bound"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("warm_open_ms").and_then(Json::as_f64), Some(0.2));
        assert_eq!(doc.get("cold_open_ms").and_then(Json::as_f64), Some(35.0));
        assert_eq!(doc.get("mapped_bytes").and_then(Json::as_f64), Some(800_000.0));
        assert_eq!(doc.get("blocks_skipped_frac").and_then(Json::as_f64), Some(0.4));
        assert!(doc.get("metrics").and_then(|m| m.get("counters")).is_some());
    }

    fn snap(p50: f64, p99: f64) -> Json {
        snap_sized(p50, p99, 1_000_000)
    }

    fn snap_sized(p50: f64, p99: f64, bytes: u64) -> Json {
        parse_json(&format!(
            r#"{{"generate_ms": 10.0, "analyze_ms": 1000.0, "cold_build_ms": 1010.0,
                "snapshot_load_ms": 50.0, "snapshot_bytes": {bytes},
                "sharded_load_ms_t1": 40.0, "sharded_load_ms_t2": 28.0,
                "sharded_load_ms_t4": 20.0, "sharded_load_ms_t8": 19.0,
                "warm_open_ms": 0.2, "cold_open_ms": 35.0,
                "query_p50_ms": {p50},
                "query_p99_ms": {p99}, "alpha_sweep_naive_ms": 300.0,
                "alpha_sweep_factored_ms": 60.0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn unchanged_snapshots_pass() {
        let r = RegressReport::compare(&snap(1.0, 2.0), &snap(1.0, 2.0), 0.2);
        // Every latency key plus the snapshot-size gate.
        assert_eq!(r.deltas.len(), LATENCY_KEYS.len() + 1);
        assert!(!r.any_regressed());
        assert!(r.render().contains("OK:"));
    }

    #[test]
    fn snapshot_size_growth_fails() {
        // +50% and far beyond the byte slack: the container got fatter.
        let r =
            RegressReport::compare(&snap_sized(1.0, 2.0, 1_000_000), &snap_sized(1.0, 2.0, 1_500_000), 0.2);
        assert!(r.any_regressed());
        let d = r.deltas.iter().find(|d| d.key == "snapshot_bytes").unwrap();
        assert!(d.regressed);
        assert!((d.ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_size_slack_and_shrink_pass() {
        // Growth within the absolute byte slack is forgiven even when the
        // relative threshold trips (tiny baseline), and shrinking is never
        // a regression.
        let r = RegressReport::compare(&snap_sized(1.0, 2.0, 1_000), &snap_sized(1.0, 2.0, 1_900), 0.2);
        assert!(!r.deltas.iter().find(|d| d.key == "snapshot_bytes").unwrap().regressed);
        let r =
            RegressReport::compare(&snap_sized(1.0, 2.0, 2_000_000), &snap_sized(1.0, 2.0, 1_000_000), 0.2);
        assert!(!r.any_regressed());
    }

    #[test]
    fn snapshot_load_regression_fails() {
        let mut slow = snap(1.0, 2.0);
        if let Json::Obj(m) = &mut slow {
            m.insert("snapshot_load_ms".into(), Json::Num(90.0));
        }
        let r = RegressReport::compare(&snap(1.0, 2.0), &slow, 0.2);
        assert!(r.any_regressed());
        let d = r.deltas.iter().find(|d| d.key == "snapshot_load_ms").unwrap();
        assert!(d.regressed);
    }

    #[test]
    fn large_regression_fails() {
        let r = RegressReport::compare(&snap(1.0, 2.0), &snap(1.5, 2.0), 0.2);
        assert!(r.any_regressed());
        let d = r.deltas.iter().find(|d| d.key == "query_p50_ms").unwrap();
        assert!(d.regressed);
        assert!((d.ratio - 0.5).abs() < 1e-12);
        assert!(r.render().contains("REGRESSED"));
        assert!(r.render().contains("FAIL:"));
    }

    #[test]
    fn improvement_is_never_a_regression() {
        let r = RegressReport::compare(&snap(2.0, 4.0), &snap(1.0, 2.0), 0.2);
        assert!(!r.any_regressed());
    }

    #[test]
    fn absolute_slack_forgives_tiny_jitter() {
        // +50% relative but only +0.02 ms absolute: not a regression.
        let r = RegressReport::compare(&snap(0.04, 2.0), &snap(0.06, 2.0), 0.2);
        assert!(!r.any_regressed());
    }

    #[test]
    fn missing_keys_are_skipped() {
        let partial = parse_json(r#"{"query_p50_ms": 1.0}"#).unwrap();
        let r = RegressReport::compare(&partial, &snap(1.0, 2.0), 0.2);
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].key, "query_p50_ms");
    }

    /// A minimal snapshot carrying only soak-harness keys.
    fn soak_snap(qps_t1: f64, p99_t1: f64, overhead: f64, rss: u64) -> Json {
        parse_json(&format!(
            r#"{{"qps_t1": {qps_t1}, "qps_t4": {q4}, "p99_under_load_t1_ms": {p99_t1},
                "p50_under_load_t1_ms": {p50}, "soak_telemetry_overhead_frac": {overhead},
                "rss_peak_bytes": {rss}}}"#,
            q4 = qps_t1 * 3.0,
            p50 = p99_t1 / 4.0,
        ))
        .unwrap()
    }

    #[test]
    fn soak_keys_gate_in_both_directions() {
        let base = soak_snap(2000.0, 4.0, 0.01, 200 << 20);
        // Unchanged: everything ok, overhead within budget on both sides.
        let r = RegressReport::compare(&base, &base.clone(), 0.2);
        assert!(!r.any_regressed());
        assert!(r.deltas.iter().any(|d| d.key == "qps_t1"));
        assert!(r.deltas.iter().any(|d| d.key == "p99_under_load_t1_ms"));
        assert!(r.deltas.iter().any(|d| d.key == "rss_peak_bytes"));
        assert_eq!(
            r.counters.iter().filter(|c| c.name == "soak_telemetry_overhead").count(),
            2
        );

        // Throughput collapse regresses (reversed direction)…
        let slow = soak_snap(1200.0, 4.0, 0.01, 200 << 20);
        let r = RegressReport::compare(&base, &slow, 0.2);
        assert!(r.deltas.iter().find(|d| d.key == "qps_t1").unwrap().regressed);
        // …but a throughput *gain* never does, even a huge one.
        let fast = soak_snap(9000.0, 4.0, 0.01, 200 << 20);
        assert!(!RegressReport::compare(&base, &fast, 0.2).any_regressed());
        // A drop inside the absolute qps slack is noise, not a regression.
        let tiny_base = soak_snap(40.0, 4.0, 0.01, 200 << 20);
        let tiny_drop = soak_snap(20.0, 4.0, 0.01, 200 << 20);
        let r = RegressReport::compare(&tiny_base, &tiny_drop, 0.2);
        assert!(!r.deltas.iter().find(|d| d.key == "qps_t1").unwrap().regressed);

        // Under-load latency regresses past threshold + 0.5 ms slack…
        let laggy = soak_snap(2000.0, 8.0, 0.01, 200 << 20);
        let r = RegressReport::compare(&base, &laggy, 0.2);
        assert!(r.deltas.iter().find(|d| d.key == "p99_under_load_t1_ms").unwrap().regressed);
        // …while sub-slack jitter passes.
        let jitter = soak_snap(2000.0, 4.3, 0.01, 200 << 20);
        assert!(!RegressReport::compare(&base, &jitter, 0.2).any_regressed());
    }

    /// A minimal snapshot carrying only `rc soak --connect` keys.
    fn serve_snap(qps_t1: f64, p99_t1: f64) -> Json {
        parse_json(&format!(
            r#"{{"serve_qps_t1": {qps_t1}, "serve_qps_t4": {q4},
                "serve_p50_under_load_t1_ms": {p50},
                "serve_p99_under_load_t1_ms": {p99_t1}}}"#,
            q4 = qps_t1 * 3.0,
            p50 = p99_t1 / 4.0,
        ))
        .unwrap()
    }

    #[test]
    fn serve_keys_gate_with_the_soak_slack_rules() {
        let base = serve_snap(1500.0, 6.0);
        let r = RegressReport::compare(&base, &base.clone(), 0.2);
        assert!(!r.any_regressed());
        assert!(r.deltas.iter().any(|d| d.key == "serve_qps_t1"));
        assert!(r.deltas.iter().any(|d| d.key == "serve_p99_under_load_t1_ms"));

        // Served throughput collapse regresses (reversed direction)…
        let slow = serve_snap(900.0, 6.0);
        let r = RegressReport::compare(&base, &slow, 0.2);
        assert!(r.deltas.iter().find(|d| d.key == "serve_qps_t1").unwrap().regressed);
        // …a gain never does…
        assert!(!RegressReport::compare(&base, &serve_snap(5000.0, 6.0), 0.2).any_regressed());
        // …and a drop inside the absolute qps slack is noise.
        let r = RegressReport::compare(&serve_snap(40.0, 6.0), &serve_snap(20.0, 6.0), 0.2);
        assert!(!r.deltas.iter().find(|d| d.key == "serve_qps_t1").unwrap().regressed);

        // Round-trip latency past threshold + 0.5 ms slack regresses;
        // sub-slack jitter passes.
        let laggy = serve_snap(1500.0, 12.0);
        let r = RegressReport::compare(&base, &laggy, 0.2);
        assert!(r
            .deltas
            .iter()
            .find(|d| d.key == "serve_p99_under_load_t1_ms")
            .unwrap()
            .regressed);
        assert!(!RegressReport::compare(&base, &serve_snap(1500.0, 6.4), 0.2).any_regressed());
    }

    #[test]
    fn provenance_reports_the_baseline_rev_and_dirtiness() {
        let clean = parse_json(r#"{"git_rev": "abc1234", "git_dirty": false}"#).unwrap();
        let none = parse_json("{}").unwrap();
        let r = RegressReport::compare(&clean, &none, 0.2);
        assert_eq!(r.baseline_rev.as_deref(), Some("abc1234"));
        assert_eq!(r.baseline_dirty, Some(false));
        assert_eq!(r.provenance(), "baseline abc1234 (clean tree)");

        let dirty = parse_json(r#"{"git_rev": "abc1234", "git_dirty": true}"#).unwrap();
        let r = RegressReport::compare(&dirty, &none, 0.2);
        assert_eq!(r.provenance(), "baseline abc1234 (DIRTY tree)");

        let old = parse_json(r#"{"git_rev": "abc1234"}"#).unwrap();
        let r = RegressReport::compare(&old, &none, 0.2);
        assert_eq!(r.provenance(), "baseline abc1234 (dirtiness unrecorded)");

        let r = RegressReport::compare(&none, &none, 0.2);
        assert_eq!(r.baseline_rev, None);
        assert_eq!(r.provenance(), "baseline provenance unrecorded");
    }

    #[test]
    fn rss_peak_gates_with_its_own_slack() {
        let base = soak_snap(2000.0, 4.0, 0.01, 256 << 20);
        // +50% and way past 32 MiB: a real footprint regression.
        let fat = soak_snap(2000.0, 4.0, 0.01, 384 << 20);
        let r = RegressReport::compare(&base, &fat, 0.2);
        assert!(r.deltas.iter().find(|d| d.key == "rss_peak_bytes").unwrap().regressed);
        // +50% of a tiny footprint stays under the absolute slack.
        let small = soak_snap(2000.0, 4.0, 0.01, 20 << 20);
        let small_fat = soak_snap(2000.0, 4.0, 0.01, 30 << 20);
        assert!(!RegressReport::compare(&small, &small_fat, 0.2).any_regressed());
    }

    #[test]
    fn telemetry_overhead_past_budget_fails() {
        let base = soak_snap(2000.0, 4.0, 0.01, 200 << 20);
        let costly = soak_snap(2000.0, 4.0, 0.08, 200 << 20);
        let r = RegressReport::compare(&base, &costly, 0.2);
        assert!(r.any_regressed());
        let check = r
            .counters
            .iter()
            .find(|c| c.name == "soak_telemetry_overhead" && c.failed)
            .expect("the current snapshot's overhead check must fail");
        assert!(check.detail.contains("current"), "{}", check.detail);
        // NaN must not sneak past the budget comparison.
        let nan = parse_json(r#"{"soak_telemetry_overhead_frac": 1e999}"#).unwrap();
        let r = RegressReport::compare(&base, &nan, 0.2);
        assert!(r.counters.iter().any(|c| c.name == "soak_telemetry_overhead" && c.failed));
    }

    #[test]
    fn profile_overhead_past_budget_fails() {
        let base = parse_json(r#"{"profile_overhead_frac": 0.005}"#).unwrap();
        let r = RegressReport::compare(&base, &base.clone(), 0.2);
        assert_eq!(r.counters.iter().filter(|c| c.name == "profile_overhead").count(), 2);
        assert!(!r.any_regressed());

        let costly = parse_json(r#"{"profile_overhead_frac": 0.09}"#).unwrap();
        let r = RegressReport::compare(&base, &costly, 0.2);
        assert!(r.any_regressed());
        let check = r
            .counters
            .iter()
            .find(|c| c.name == "profile_overhead" && c.failed)
            .expect("the current snapshot's overhead check must fail");
        assert!(check.detail.contains("current"), "{}", check.detail);
        // NaN must not sneak past the budget comparison.
        let nan = parse_json(r#"{"profile_overhead_frac": 1e999}"#).unwrap();
        let r = RegressReport::compare(&base, &nan, 0.2);
        assert!(r.counters.iter().any(|c| c.name == "profile_overhead" && c.failed));
        // Snapshots that never ran `rc profile` skip the check entirely.
        let r = RegressReport::compare(&snap(1.0, 2.0), &snap(1.0, 2.0), 0.2);
        assert!(r.counters.iter().all(|c| c.name != "profile_overhead"));
    }

    #[test]
    fn render_round_trips_through_parse() {
        let text = r#"{
  "arr": [1, 2.5, "x"],
  "b": true,
  "empty_arr": [],
  "empty_obj": {},
  "nested": {"k": null, "needs\tescape": "a\"b\\c\nd"},
  "num": 42,
  "wide": 9007199254740991
}"#;
        let doc = parse_json(text).unwrap();
        let rendered = doc.render();
        assert_eq!(parse_json(&rendered).unwrap(), doc, "{rendered}");
        // Integers survive verbatim (no trailing `.0`), floats keep value.
        assert!(rendered.contains("\"num\": 42"), "{rendered}");
        assert!(rendered.contains("9007199254740991"), "{rendered}");
        assert!(rendered.contains("2.5"), "{rendered}");
        // And a second round trip is a fixed point.
        assert_eq!(parse_json(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn set_inserts_and_replaces_members() {
        let mut doc = parse_json(r#"{"a": 1}"#).unwrap();
        doc.set("b", Json::Num(2.0));
        doc.set("a", Json::Str("replaced".into()));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("a"), Some(&Json::Str("replaced".into())));
        // No-op on non-objects.
        let mut arr = Json::Arr(vec![]);
        arr.set("x", Json::Null);
        assert_eq!(arr, Json::Arr(vec![]));
    }

    /// A minimal snapshot carrying only the traversal counters.
    fn counter_snap(traversed: u64, admitted: u64, pruned: u64) -> Json {
        parse_json(&format!(
            r#"{{"metrics": {{"counters": {{"postings_traversed": {traversed},
                "maxscore_admitted": {admitted}, "maxscore_pruned": {pruned}}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn validates_chrome_traces() {
        // A real export: synthetic snapshot + one flight record.
        let snap = rightcrowd_obs::MetricsSnapshot {
            counters: vec![],
            histograms: vec![],
            spans: vec![(
                "corpus.build".to_string(),
                rightcrowd_obs::SpanStat { calls: 1, total_ns: 5_000_000, child_ns: 0 },
            )],
        };
        let record = rightcrowd_obs::QueryRecord {
            query_id: 1,
            label: "q".into(),
            latency_ns: 1_000_000,
            ..Default::default()
        };
        let trace = rightcrowd_obs::chrome_trace_json(&snap, &[record]);
        let events = validate_chrome_trace(&trace).expect("exported trace must validate");
        assert!(events >= 2, "span + flight events expected, got {events}");

        // Rejections: garbage, wrong shape, empty, malformed events.
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [1]}"#).is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents": [{"ph": "X", "pid": 1}]}"#).is_err(),
            "events without a name must fail"
        );
        assert!(validate_chrome_trace(
            r#"{"traceEvents": [{"ph": "X", "pid": 1, "name": "a"}]}"#
        )
        .is_ok());
    }

    #[test]
    fn stable_counters_pass_the_invariants() {
        let base = counter_snap(1000, 300, 500);
        let curr = counter_snap(2000, 610, 990);
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert_eq!(r.counters.len(), 3, "two accounting checks + one drift check");
        assert!(!r.any_regressed());
        assert!(r.render().contains("counter invariants:"));
        assert!(r.render().contains("admission_ratio_drift"));
    }

    #[test]
    fn accounting_violation_fails() {
        // admitted + pruned > traversed: impossible for a real traversal.
        let bad = counter_snap(100, 80, 40);
        let r = RegressReport::compare(&counter_snap(1000, 300, 500), &bad, 0.2);
        assert!(r.any_regressed());
        let check = r.counters.iter().find(|c| c.failed).unwrap();
        assert_eq!(check.name, "maxscore_accounting");
        assert!(r.render().contains("VIOLATED"));
        assert!(r.render().contains("FAIL:"));
    }

    #[test]
    fn admission_ratio_drift_fails() {
        // Same accounting sanity, but the admitted fraction moves from
        // 0.375 to 0.8 — far beyond the drift slack.
        let base = counter_snap(1000, 300, 500);
        let curr = counter_snap(1000, 640, 160);
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(r.any_regressed());
        let check = r.counters.iter().find(|c| c.failed).unwrap();
        assert_eq!(check.name, "admission_ratio_drift");
    }

    /// A snapshot carrying the full traversal + block counter set.
    #[allow(clippy::too_many_arguments)]
    fn block_snap(
        traversed: u64,
        admitted: u64,
        pruned: u64,
        total: u64,
        decoded: u64,
        skipped: u64,
        postings_skipped: u64,
    ) -> Json {
        parse_json(&format!(
            r#"{{"metrics": {{"counters": {{"postings_traversed": {traversed},
                "maxscore_admitted": {admitted}, "maxscore_pruned": {pruned},
                "blocks_total": {total}, "blocks_decoded": {decoded},
                "blocks_skipped": {skipped}, "postings_skipped": {postings_skipped}}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn block_counters_pass_the_invariants() {
        // 40 of 100 blocks skipped whole; their 400 postings are pruned
        // without being traversed, so admitted + pruned exceeds traversed
        // by exactly the skipped tally.
        let snap = block_snap(1000, 300, 900, 100, 60, 40, 400);
        let r = RegressReport::compare(&snap, &snap, 0.2);
        assert!(!r.any_regressed(), "{}", r.render());
        for name in ["maxscore_accounting", "block_accounting", "block_max_skips"] {
            assert!(r.counters.iter().any(|c| c.name == name), "missing {name}");
        }
    }

    #[test]
    fn block_accounting_violation_fails() {
        // decoded + skipped ≠ total: a block fell through both paths.
        let bad = block_snap(1000, 300, 900, 100, 60, 30, 400);
        let r = RegressReport::compare(&block_snap(1000, 300, 900, 100, 60, 40, 400), &bad, 0.2);
        assert!(r.any_regressed());
        let failed = r.counters.iter().find(|c| c.failed).unwrap();
        assert_eq!(failed.name, "block_accounting");
    }

    #[test]
    fn skipped_postings_leaking_past_pruned_fails() {
        // postings_skipped > maxscore_pruned: skipped-block postings must
        // be a subset of the pruned tally.
        let bad = block_snap(1000, 300, 200, 100, 60, 40, 400);
        let r = RegressReport::compare(&bad, &bad, 0.2);
        assert!(r.counters.iter().any(|c| c.failed && c.name == "block_accounting"));
    }

    #[test]
    fn zero_blocks_skipped_fails_when_blocks_were_traversed() {
        let lazy = block_snap(1000, 300, 500, 100, 100, 0, 0);
        let r = RegressReport::compare(&lazy, &lazy, 0.2);
        let failed: Vec<_> = r.counters.iter().filter(|c| c.failed).collect();
        assert!(failed.iter().all(|c| c.name == "block_max_skips"), "{:?}", failed);
        assert!(!failed.is_empty());
        // A blocks-off run (blocks_total == 0) skips the gate entirely.
        let flat = block_snap(1000, 300, 500, 0, 0, 0, 0);
        let r = RegressReport::compare(&flat, &flat, 0.2);
        assert!(!r.any_regressed(), "{}", r.render());
        assert!(r.counters.iter().all(|c| c.name != "block_max_skips"));
    }

    #[test]
    fn small_shards_soften_the_t8_gate() {
        // +30% on t8: over the 20% threshold but under the doubled one.
        let mut base = snap(1.0, 2.0);
        let mut curr = snap(1.0, 2.0);
        for (json, t8) in [(&mut base, 19.0), (&mut curr, 24.7)] {
            if let Json::Obj(m) = json {
                m.insert("sharded_load_ms_t8".into(), Json::Num(t8));
                m.insert("bytes_per_shard".into(), Json::Num(3.0 * 1024.0 * 1024.0));
            }
        }
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(!r.any_regressed(), "{}", r.render());
        assert!(r.warnings.iter().any(|w| w.contains("bytes_per_shard")), "{:?}", r.warnings);
        // Large shards (or a snapshot without the key) keep the full gate.
        if let Json::Obj(m) = &mut curr {
            m.insert("bytes_per_shard".into(), Json::Num(64.0 * 1024.0 * 1024.0));
        }
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(r.deltas.iter().any(|d| d.key == "sharded_load_ms_t8" && d.regressed));
        // …but the doubled slack is not unconditional: +120% still fails.
        if let Json::Obj(m) = &mut curr {
            m.insert("sharded_load_ms_t8".into(), Json::Num(42.0));
            m.insert("bytes_per_shard".into(), Json::Num(3.0 * 1024.0 * 1024.0));
        }
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(r.deltas.iter().any(|d| d.key == "sharded_load_ms_t8" && d.regressed));
    }

    #[test]
    fn copy_bound_label_scopes_the_softened_t8_slack() {
        // +30% on t8, shards under the floor — but the report says the
        // run was NOT copy-bound: the explicit label is authoritative, so
        // the full gate applies and the key fails.
        let mut base = snap(1.0, 2.0);
        let mut curr = snap(1.0, 2.0);
        for (json, t8) in [(&mut base, 19.0), (&mut curr, 24.7)] {
            if let Json::Obj(m) = json {
                m.insert("sharded_load_ms_t8".into(), Json::Num(t8));
                m.insert("bytes_per_shard".into(), Json::Num(3.0 * 1024.0 * 1024.0));
                m.insert("sharded_load_copy_bound".into(), Json::Bool(false));
            }
        }
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(
            r.deltas.iter().any(|d| d.key == "sharded_load_ms_t8" && d.regressed),
            "{}",
            r.render()
        );
        // Labelled copy-bound: the doubled slack applies even when the
        // (stale or absent) bytes_per_shard key would say otherwise.
        for json in [&mut base, &mut curr] {
            if let Json::Obj(m) = json {
                m.insert("bytes_per_shard".into(), Json::Num(64.0 * 1024.0 * 1024.0));
                m.insert("sharded_load_copy_bound".into(), Json::Bool(true));
            }
        }
        let r = RegressReport::compare(&base, &curr, 0.2);
        assert!(!r.any_regressed(), "{}", r.render());
    }

    #[test]
    fn warm_open_speedup_gate() {
        // snap() records warm 0.2 ms vs streamed t1 40 ms: 200×, passes.
        let r = RegressReport::compare(&snap(1.0, 2.0), &snap(1.0, 2.0), 0.2);
        let checks: Vec<_> = r.counters.iter().filter(|c| c.name == "warm_open_speedup").collect();
        assert_eq!(checks.len(), 2, "one verdict per snapshot");
        assert!(checks.iter().all(|c| !c.failed));
        assert!(r.render().contains("warm_open_speedup"));
        // A warm open that lost two orders of magnitude fails its snapshot.
        let mut curr = snap(1.0, 2.0);
        if let Json::Obj(m) = &mut curr {
            m.insert("warm_open_ms".into(), Json::Num(1.0));
        }
        let r = RegressReport::compare(&snap(1.0, 2.0), &curr, 0.2);
        let failed: Vec<_> =
            r.counters.iter().filter(|c| c.name == "warm_open_speedup" && c.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].detail.contains("current"), "{}", failed[0].detail);
        assert!(r.any_regressed());
        // Snapshots that predate the mapped layout skip the gate.
        let old = parse_json(r#"{"sharded_load_ms_t1": 40.0}"#).unwrap();
        let r = RegressReport::compare(&old, &old, 0.2);
        assert!(r.counters.iter().all(|c| c.name != "warm_open_speedup"));
    }

    #[test]
    fn postings_and_manifest_sizes_are_gated() {
        let sized = |postings: u64, manifest: u64| {
            parse_json(&format!(
                r#"{{"postings_bytes": {postings}, "manifest_bytes": {manifest}}}"#
            ))
            .unwrap()
        };
        let r = RegressReport::compare(&sized(1_000_000, 500_000), &sized(1_400_000, 500_000), 0.2);
        assert!(r.deltas.iter().any(|d| d.key == "postings_bytes" && d.regressed));
        let r = RegressReport::compare(&sized(1_000_000, 500_000), &sized(1_000_000, 900_000), 0.2);
        assert!(r.deltas.iter().any(|d| d.key == "manifest_bytes" && d.regressed));
        let r = RegressReport::compare(&sized(1_000_000, 500_000), &sized(900_000, 400_000), 0.2);
        assert!(!r.any_regressed());
    }

    #[test]
    fn snapshots_without_counters_skip_the_checks() {
        // Pre-observability snapshots carry no metrics block: no traversal
        // checks, no failure — mirroring the missing-latency-key
        // behaviour. (The sharded speedup gate still runs; it keys on the
        // load timings, not the metrics block.)
        let traversal =
            |c: &&CounterCheck| c.name == "maxscore_accounting" || c.name == "admission_ratio_drift";
        let r = RegressReport::compare(&snap(1.0, 2.0), &snap(1.0, 2.0), 0.2);
        assert!(!r.counters.iter().any(|c| traversal(&c)));
        // One-sided counters run the sanity check but cannot diff ratios.
        let r = RegressReport::compare(&snap(1.0, 2.0), &counter_snap(10, 4, 4), 0.2);
        let checks: Vec<_> = r.counters.iter().filter(traversal).collect();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].name, "maxscore_accounting");
    }

    /// A minimal snapshot carrying only the two load timings the sharded
    /// speedup gate compares.
    fn load_snap(mono_ms: f64, sharded_t4_ms: f64) -> Json {
        parse_json(&format!(
            r#"{{"snapshot_load_ms": {mono_ms}, "sharded_load_ms_t4": {sharded_t4_ms}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn sharded_speedup_holds_when_sharded_is_faster() {
        let r = RegressReport::compare(&load_snap(50.0, 30.0), &load_snap(50.0, 28.0), 0.2);
        let checks: Vec<_> =
            r.counters.iter().filter(|c| c.name == "sharded_load_speedup").collect();
        assert_eq!(checks.len(), 2, "one verdict per snapshot");
        assert!(!r.any_regressed());
        assert!(r.render().contains("sharded_load_speedup"));
    }

    #[test]
    fn sharded_slower_than_monolithic_fails() {
        // The current run's 4-thread sharded load lost to the monolithic
        // load: the whole point of the sharded path regressed.
        let r = RegressReport::compare(&load_snap(50.0, 30.0), &load_snap(50.0, 55.0), 0.2);
        assert!(r.any_regressed());
        let failed = r.counters.iter().find(|c| c.failed).unwrap();
        assert_eq!(failed.name, "sharded_load_speedup");
        assert!(failed.detail.contains("current"), "{}", failed.detail);
        assert!(r.render().contains("VIOLATED"));
    }

    #[test]
    fn pre_sharding_snapshots_skip_the_speedup_gate() {
        // A monolithic-only snapshot (no sharded keys): no verdicts.
        let old = parse_json(r#"{"snapshot_load_ms": 50.0, "query_p50_ms": 1.0}"#).unwrap();
        let r = RegressReport::compare(&old, &old, 0.2);
        assert!(r.counters.iter().all(|c| c.name != "sharded_load_speedup"));
        // One-sided: only the snapshot that records both timings is gated.
        let r = RegressReport::compare(&old, &load_snap(50.0, 20.0), 0.2);
        assert_eq!(
            r.counters.iter().filter(|c| c.name == "sharded_load_speedup").count(),
            1
        );
    }

    #[test]
    fn dirty_baseline_warns_but_never_fails() {
        let dirty = parse_json(r#"{"git_dirty": true, "query_p50_ms": 1.0}"#).unwrap();
        let clean = parse_json(r#"{"git_dirty": false, "query_p50_ms": 1.0}"#).unwrap();
        let r = RegressReport::compare(&dirty, &clean, 0.2);
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("dirty work tree"), "{}", r.warnings[0]);
        assert!(!r.any_regressed(), "a warning must not flip the verdict");
        assert!(r.render().contains("warning: baseline was measured on a dirty work tree"));
        // A dirty *current* run is the developer's own uncommitted work in
        // flight — expected, not warned; and a clean baseline stays quiet.
        let r = RegressReport::compare(&clean, &dirty, 0.2);
        assert!(r.warnings.is_empty());
        assert!(!r.render().contains("warning:"));
    }

    #[test]
    fn compare_files_roundtrip() {
        let dir = std::env::temp_dir().join("rc-regress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let curr = dir.join("curr.json");
        std::fs::write(&base, r#"{"query_p50_ms": 1.0}"#).unwrap();
        std::fs::write(&curr, r#"{"query_p50_ms": 1.1}"#).unwrap();
        let r = compare_files(&base, &curr, 0.2).unwrap();
        assert!(!r.any_regressed());
        assert!(compare_files(&dir.join("missing.json"), &curr, 0.2).is_err());
    }
}
