//! The `BENCH_<scale>.json` emitter — the recorded performance trajectory.
//!
//! Every `rc bench` run measures the pipeline's hot paths on the current
//! machine and writes one JSON snapshot: corpus-build time, per-query
//! retrieval latency (p50/p99, queries/sec), and the factored-vs-naive
//! α-sweep comparison that certifies the single-traversal sweep of
//! [`EvalContext::run_alpha_sweep`]. Snapshots are committed next to the
//! code so the perf history rides the git history.
//!
//! The JSON is hand-rolled (flat object, numbers and strings only) to
//! keep the workspace free of serialisation dependencies.
//!
//! [`EvalContext::run_alpha_sweep`]: rightcrowd_core::EvalContext::run_alpha_sweep

use crate::{scale_label, Bench};
use rightcrowd_core::FinderConfig;
use rightcrowd_core::ranker::rank_query;
use std::time::Instant;

/// Repetitions per load measurement; the minimum is recorded. A single
/// ~100 ms load sample carries several ms of scheduler and page-cache
/// jitter — enough to flip the `sharded_load_speedup` regression gate on
/// an otherwise healthy build — while the floor over a few runs is stable.
const LOAD_REPS: usize = 3;

/// One performance snapshot, serialised to `BENCH_<scale>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Dataset scale label (`tiny` / `small` / `paper`).
    pub scale: String,
    /// Short git revision the snapshot was taken at (`unknown` outside a
    /// work tree).
    pub git_rev: String,
    /// Whether the work tree had uncommitted changes at measurement time
    /// (a dirty-tree snapshot is not reproducible from `git_rev`).
    pub git_dirty: bool,
    /// Available hardware parallelism on the measuring machine.
    pub threads: usize,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// Dataset generation wall-clock, milliseconds.
    pub generate_ms: f64,
    /// Corpus analysis + indexing wall-clock, milliseconds.
    pub analyze_ms: f64,
    /// `generate_ms + analyze_ms`: what a snapshot load avoids.
    pub cold_build_ms: f64,
    /// Store-container load (read + verify + reconstruct) wall-clock,
    /// milliseconds. The serving contract (ISSUE 4) wants this ≥10×
    /// faster than `cold_build_ms`.
    pub snapshot_load_ms: f64,
    /// Store-container size, bytes.
    pub snapshot_bytes: u64,
    /// On-disk payload bytes of the two posting-list sections in the
    /// monolithic snapshot (block-compressed by default; flat CSR under
    /// `blocks-off`).
    pub postings_bytes: u64,
    /// Flat-CSR postings encoding size ÷ `postings_bytes`: how much the
    /// block-compressed layout undercuts the uncompressed reference
    /// (1.0 under `blocks-off`, where the reference *is* the layout).
    pub compression_ratio: f64,
    /// Shard count of the sharded round trip measured below.
    pub shard_count: usize,
    /// Sharded-snapshot manifest size, bytes.
    pub manifest_bytes: u64,
    /// Mean shard-file size, bytes: `(total − manifest) / shard_count`.
    /// Labels the load-scaling curve below — when shards are only a few
    /// MB each, per-file fixed costs dominate and the curve flattens
    /// (`rc regress` softens the t8 gate accordingly).
    pub bytes_per_shard: u64,
    /// Sharded load (manifest + all shards, one CRC pass per shard) at 1
    /// worker thread, milliseconds.
    pub sharded_load_ms_t1: f64,
    /// Sharded load at 2 worker threads, milliseconds.
    pub sharded_load_ms_t2: f64,
    /// Sharded load at 4 worker threads, milliseconds. `rc regress` gates
    /// this against `snapshot_load_ms`: the sharded path must beat the
    /// monolithic load even before parallelism (it verifies each byte
    /// once, not twice).
    pub sharded_load_ms_t4: f64,
    /// Sharded load at 8 worker threads, milliseconds.
    pub sharded_load_ms_t8: f64,
    /// Whether the `sharded_load_ms_t{N}` curve is copy-bound at this
    /// scale: shards average under the parallelism floor
    /// ([`crate::regress::SMALL_SHARD_BYTES`]), so per-file fixed costs
    /// dominate and adding workers cannot move the numbers. `rc regress`
    /// softens the t8 gate exactly (and only) when this label is set.
    pub sharded_load_copy_bound: bool,
    /// Mapped-layout (`RCSHRD02`) warm open: sidecars attest every file,
    /// so the open maps + checks layout without streaming a byte.
    /// Milliseconds — microsecond-class by design; `rc regress` gates
    /// this at ≥100× faster than `sharded_load_ms_t1`.
    pub warm_open_ms: f64,
    /// Mapped-layout cold open (sidecars removed first): one streamed
    /// CRC + deep-verification pass per file, then the sidecars are
    /// re-earned. Milliseconds.
    pub cold_open_ms: f64,
    /// Shard payload bytes behind memory mappings after a mapped open.
    pub mapped_bytes: u64,
    /// Indexed documents after the language gate.
    pub retained_docs: usize,
    /// Workload size (number of queries measured).
    pub queries: usize,
    /// Median single-query latency (analyse + retrieve + rank), ms.
    pub query_p50_ms: f64,
    /// 99th-percentile single-query latency, ms.
    pub query_p99_ms: f64,
    /// Sequential single-query throughput.
    pub queries_per_sec: f64,
    /// Fraction of compressed blocks skipped whole by the Block-Max
    /// MaxScore bound over the latency workload: `blocks_skipped /
    /// blocks_total`. Zero when no blocks were traversed (`blocks-off`)
    /// or when the per-query deltas are compiled out (`obs-off`).
    pub blocks_skipped_frac: f64,
    /// Number of α points in the sweep comparison.
    pub alpha_points: usize,
    /// Naive sweep (one posting traversal per (query, distance, α)), ms.
    pub alpha_sweep_naive_ms: f64,
    /// Factored sweep (one traversal per (query, distance)), ms.
    pub alpha_sweep_factored_ms: f64,
    /// `alpha_sweep_naive_ms / alpha_sweep_factored_ms`.
    pub alpha_sweep_speedup: f64,
    /// Flight-recorder aggregate over the latency workload: the bench
    /// measures latency *with* flight recording enabled, so the snapshot
    /// certifies the recorder's overhead stays inside the latency budget.
    pub flight: rightcrowd_obs::FlightSummary,
    /// Peak resident set size at the end of the measurement (`VmHWM`
    /// from `/proc/self/status`); `None` off Linux.
    pub rss_peak_bytes: Option<u64>,
    /// Registry state frozen at the end of the build/store phase
    /// (dataset generation, corpus analysis, snapshot round trips).
    /// Counters here are that phase's totals; the registry's counters
    /// are reset right after this freeze.
    pub build_metrics: rightcrowd_obs::MetricsSnapshot,
    /// Registry state at the end of the run. Because the counters were
    /// reset after the build/store phase, counter values here are
    /// **query + sweep phase deltas**, not process totals (histograms
    /// and spans still span the whole run — only counters reset).
    pub metrics: rightcrowd_obs::MetricsSnapshot,
}

/// The short revision of the repository containing the working directory.
/// Shared with `rc soak` / `rc expose` (the OpenMetrics `build_info`).
pub(crate) fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the work tree has uncommitted changes (`false` when git is
/// unavailable, matching `git_rev`'s `unknown`).
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .is_some_and(|out| !out.stdout.is_empty())
}

/// Linearly-interpolated percentile over an ascending sample, `p` in
/// `[0, 1]` (the "linear" / type-7 estimator: rank `p·(n−1)`, interpolating
/// between the straddling order statistics). Shared with `rc soak`'s
/// under-load percentiles.
pub(crate) fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted_ms.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted_ms[lo];
    }
    let frac = rank - lo as f64;
    sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac
}

impl BenchReport {
    /// Measures the bench: per-query latency over the full workload at the
    /// paper's operating point, and the α sweep of Fig. 7 (all three
    /// distances, eleven α points) on both the naive per-α path and the
    /// factored single-traversal path.
    pub fn measure(bench: &Bench) -> Self {
        Self::measure_with(bench, None, None)
    }

    /// [`BenchReport::measure`] with an explicit store-container path: the
    /// save → load round trip is measured against `snapshot` (kept on
    /// disk for later `--snapshot` consumers) instead of a temp location.
    /// When `shards` is given, `snapshot` names the sharded-snapshot
    /// *directory* and the monolithic leg uses a temp file; otherwise
    /// `snapshot` names the monolithic file and the sharded leg (always
    /// measured, default 4 shards) uses a temp directory.
    pub fn measure_with(
        bench: &Bench,
        snapshot: Option<&std::path::Path>,
        shards: Option<usize>,
    ) -> Self {
        // Snapshot round trip first, on a quiet machine state: save the
        // built corpus, then load + verify it back and check the
        // reconstruction, so `snapshot_load_ms` certifies a *usable*
        // container, not just an I/O pass.
        eprintln!("[bench] measuring snapshot save/load round trip...");
        let temp = std::env::temp_dir().join(format!("rc-bench-{}.rcs", std::process::id()));
        let snap_path = if shards.is_none() { snapshot.unwrap_or(&temp) } else { &temp };
        if let Some(dir) = snap_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("snapshot directory must be creatable");
        }
        let saved =
            rightcrowd_store::save(snap_path, &bench.ds, &bench.corpus).expect("snapshot save");
        // Load timings are min-of-k: the load is ~100 ms against several
        // ms of scheduler/page-cache jitter, and the regression harness
        // hard-gates these keys, so the stable floor is the honest figure.
        let mut snapshot_load_ms = f64::INFINITY;
        for rep in 0..LOAD_REPS {
            let (_, loaded_corpus, load_stats) =
                rightcrowd_store::load(snap_path).expect("snapshot load");
            if rep == 0 {
                assert_eq!(
                    loaded_corpus.index(),
                    bench.corpus.index(),
                    "snapshot round trip must reconstruct the identical index"
                );
            }
            snapshot_load_ms = snapshot_load_ms.min(load_stats.elapsed_ms);
        }
        if snap_path == temp {
            std::fs::remove_file(&temp).ok();
        }
        eprintln!(
            "[bench]   {} bytes; load {:.0} ms vs cold build {:.0} ms",
            saved.bytes,
            snapshot_load_ms,
            bench.generate_ms + bench.analyze_ms,
        );

        // Postings footprint: what the two index sections cost on disk,
        // against the flat-CSR encoding of the same lists as the
        // uncompressed reference. Under `blocks-off` the reference *is*
        // the written layout, so the ratio is exactly 1.
        let parts = bench.corpus.index().to_parts();
        let legacy_postings_bytes =
            (rightcrowd_store::codec::encode_term_index(&parts.terms).len()
                + rightcrowd_store::codec::encode_entity_index(&parts.entities).len())
                as u64;
        #[cfg(not(feature = "blocks-off"))]
        let postings_bytes = {
            let (packed_terms, packed_entities) = bench.corpus.index().packed_postings();
            (rightcrowd_store::codec::encode_term_blocks(
                &parts.terms.vocab,
                &parts.terms.irf,
                packed_terms,
            )
            .len()
                + rightcrowd_store::codec::encode_entity_blocks(
                    &parts.entities.vocab,
                    &parts.entities.eirf,
                    packed_entities,
                )
                .len()) as u64
        };
        #[cfg(feature = "blocks-off")]
        let postings_bytes = legacy_postings_bytes;
        let compression_ratio =
            if postings_bytes > 0 { legacy_postings_bytes as f64 / postings_bytes as f64 } else { 0.0 };
        eprintln!(
            "[bench]   postings {postings_bytes} bytes ({compression_ratio:.2}x vs flat CSR)"
        );

        // Sharded round trip: same corpus split over per-term-range shards,
        // loaded back at 1/2/4/8 worker threads so the snapshot records a
        // load-scaling curve. Every load is parity-checked against the
        // in-memory index — the curve certifies usable reconstructions.
        let shard_count = shards.unwrap_or(4);
        let temp_dir =
            std::env::temp_dir().join(format!("rc-bench-{}.shards", std::process::id()));
        let shard_dir = if shards.is_some() { snapshot.unwrap_or(&temp_dir) } else { &temp_dir };
        eprintln!("[bench] measuring sharded load scaling ({shard_count} shards)...");
        let sharded_saved = rightcrowd_store::save_sharded(
            shard_dir,
            &bench.ds,
            &bench.corpus,
            shard_count,
            rightcrowd_core::par::default_threads(),
        )
        .expect("sharded snapshot save");
        eprintln!(
            "[bench]   {} bytes/shard — small shards pay per-file fixed costs, so \
             the thread curve below flattens at this scale",
            (sharded_saved.bytes - sharded_saved.manifest_bytes) / shard_count.max(1) as u64,
        );
        let mut sharded_ms = [0.0f64; 4];
        for (slot, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let mut best = f64::INFINITY;
            for rep in 0..LOAD_REPS {
                let (_, loaded, stats) = rightcrowd_store::load_sharded(shard_dir, threads)
                    .expect("sharded snapshot load");
                if rep == 0 {
                    assert_eq!(
                        loaded.index(),
                        bench.corpus.index(),
                        "sharded round trip at {threads} threads must reconstruct the identical index"
                    );
                }
                best = best.min(stats.elapsed_ms);
            }
            sharded_ms[slot] = best;
            eprintln!("[bench]   {threads} thread(s): {best:.0} ms");
        }
        if shard_dir == temp_dir {
            std::fs::remove_dir_all(&temp_dir).ok();
        }
        let bytes_per_shard =
            (sharded_saved.bytes - sharded_saved.manifest_bytes) / shard_count.max(1) as u64;
        let sharded_load_copy_bound = (bytes_per_shard as f64) < crate::regress::SMALL_SHARD_BYTES;
        if sharded_load_copy_bound {
            eprintln!(
                "[bench]   sharded_load_ms_t1..t8 are copy-bound at this scale \
                 ({bytes_per_shard} bytes/shard < parallelism floor)"
            );
        }

        // Mapped-layout (`RCSHRD02`) open costs: the zero-copy path every
        // `--snapshot` consumer takes when the snapshot was saved with
        // `--layout mapped`. Warm opens verify the sidecars and map;
        // cold opens (sidecars removed) pay one streamed CRC +
        // deep-verification pass per file, then re-earn the sidecars.
        eprintln!("[bench] measuring mapped-layout open costs...");
        let mapped_dir =
            std::env::temp_dir().join(format!("rc-bench-{}.mapped", std::process::id()));
        rightcrowd_store::save_sharded_with(
            &mapped_dir,
            &bench.ds,
            &bench.corpus,
            shard_count,
            rightcrowd_core::par::default_threads(),
            rightcrowd_store::SnapshotLayout::Mapped,
        )
        .expect("mapped snapshot save");
        let mut cold_open_ms = f64::INFINITY;
        for _ in 0..LOAD_REPS {
            for entry in std::fs::read_dir(&mapped_dir).expect("mapped dir") {
                let path = entry.expect("dir entry").path();
                if path.extension().is_some_and(|e| e == "rcv") {
                    std::fs::remove_file(path).expect("sidecar removal");
                }
            }
            let (_, stats) = rightcrowd_store::open_mapped(&mapped_dir).expect("cold mapped open");
            assert!(!stats.warm, "cold open must not find live sidecars");
            cold_open_ms = cold_open_ms.min(stats.elapsed_ms);
        }
        // The cold pass just rewrote the sidecars; warm opens are now
        // available. More reps than the streamed loads: a microsecond
        // measurement needs a deeper floor to shed scheduler noise.
        let mut warm_open_ms = f64::INFINITY;
        let mut mapped_bytes = 0u64;
        for rep in 0..LOAD_REPS * 3 {
            let (index, stats) =
                rightcrowd_store::open_mapped(&mapped_dir).expect("warm mapped open");
            assert!(stats.warm, "sidecars were just re-earned; the open must be warm");
            if rep == 0 {
                // Live owned-vs-mapped parity: the borrowed-from-disk
                // index must equal the built one bit for bit, so every
                // scoring path ranks identically over it.
                assert_eq!(
                    &index,
                    bench.corpus.index(),
                    "mapped open must reconstruct the identical index"
                );
            }
            mapped_bytes = stats.mapped_bytes;
            warm_open_ms = warm_open_ms.min(stats.elapsed_ms);
        }
        std::fs::remove_dir_all(&mapped_dir).ok();
        eprintln!(
            "[bench]   warm open {:.3} ms / cold open {cold_open_ms:.0} ms ({mapped_bytes} bytes mapped)",
            warm_open_ms,
        );

        // End of the build/store phase: freeze its counter totals, then
        // reset the counters so the final `metrics` block reports
        // query + sweep deltas instead of cumulative process totals
        // (`snapshot_bytes_read` alone accrues LOAD_REPS × (1 + thread
        // points) container reads above). Histograms and spans are left
        // accumulating — only counters have the cumulative-vs-delta
        // ambiguity.
        let build_metrics = rightcrowd_obs::snapshot();
        rightcrowd_obs::reset_counters();

        let ctx = bench.ctx();
        let config = FinderConfig::default();
        let attribution = ctx.attribution(&config);
        let pipeline = rightcrowd_core::AnalysisPipeline::new(bench.ds.kb());
        let n = bench.ds.candidates().len();

        // Per-query latency: the full serving path (analysis, retrieval,
        // ranking), sequential so percentiles reflect a single request.
        // Flight recording is ON for this loop — the snapshot's latency
        // figures certify the recorder's per-query overhead.
        eprintln!("[bench] measuring per-query latency (flight recorder on)...");
        rightcrowd_obs::flight::reset_flight();
        rightcrowd_obs::flight::set_flight_enabled(true);
        let mut latencies_ms = Vec::with_capacity(bench.ds.queries().len());
        let (mut blocks_total_sum, mut blocks_skipped_sum) = (0u64, 0u64);
        let started = Instant::now();
        for need in bench.ds.queries() {
            let _ = rightcrowd_index::take_traversal_stats();
            // Tag profiler samples landing in this iteration with the
            // query id, so `rc profile bench` can attribute CPU per query.
            let _cpu = rightcrowd_obs::prof::query_scope(need.id.index() as u64);
            let one = Instant::now();
            let query = pipeline.analyze_query(&need.text);
            let ranking = rank_query(&bench.corpus, &attribution, &config, &query, n);
            let elapsed = one.elapsed();
            let stats = rightcrowd_index::take_traversal_stats();
            blocks_total_sum += stats.blocks_total;
            blocks_skipped_sum += stats.blocks_skipped;
            rightcrowd_obs::flight::record(rightcrowd_obs::QueryRecord {
                query_id: need.id.index() as u64,
                label: need.text.clone(),
                domain: need.domain.label().to_string(),
                alpha: config.alpha,
                max_distance: config.max_distance.level() as u8,
                window: config.window.label(),
                latency_ns: elapsed.as_nanos() as u64,
                postings_traversed: stats.traversed,
                maxscore_admitted: stats.admitted,
                maxscore_pruned: stats.pruned,
                top_candidates: ranking.iter().take(5).map(|r| (r.person.0, r.score)).collect(),
                cpu_est_us: 0,
            });
            std::hint::black_box(ranking);
            rightcrowd_obs::record(rightcrowd_obs::HistId::QueryLatency, elapsed);
            latencies_ms.push(elapsed.as_secs_f64() * 1e3);
        }
        let total_s = started.elapsed().as_secs_f64();
        // Summarise before the sweeps so the flight block reflects the
        // measured workload only, then disable recording so the
        // naive-vs-factored comparison below stays apples-to-apples.
        let flight = rightcrowd_obs::flight::flight_summary();
        rightcrowd_obs::flight::set_flight_enabled(false);
        let mut sorted = latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

        // α sweep, Fig. 7 shape: naive re-traverses postings per α, the
        // factored path recombines per-query components.
        let alphas = crate::experiments::alpha::alpha_grid();
        eprintln!("[bench] measuring naive α sweep ({} points)...", alphas.len());
        let started = Instant::now();
        for distance in rightcrowd_types::Distance::ALL {
            let base = FinderConfig::default().with_distance(distance);
            let attribution = ctx.attribution(&base);
            for &alpha in &alphas {
                let swept = ctx.run_with_attribution(&base.clone().with_alpha(alpha), &attribution);
                std::hint::black_box(swept);
            }
        }
        let naive_ms = started.elapsed().as_secs_f64() * 1e3;

        eprintln!("[bench] measuring factored α sweep...");
        let started = Instant::now();
        for distance in rightcrowd_types::Distance::ALL {
            let base = FinderConfig::default().with_distance(distance);
            let swept = ctx.run_alpha_sweep(&base, &alphas);
            std::hint::black_box(swept);
        }
        let factored_ms = started.elapsed().as_secs_f64() * 1e3;

        BenchReport {
            scale: scale_label(),
            git_rev: git_rev(),
            git_dirty: git_dirty(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            generate_ms: bench.generate_ms,
            analyze_ms: bench.analyze_ms,
            cold_build_ms: bench.generate_ms + bench.analyze_ms,
            snapshot_load_ms,
            snapshot_bytes: saved.bytes,
            postings_bytes,
            compression_ratio,
            shard_count,
            manifest_bytes: sharded_saved.manifest_bytes,
            bytes_per_shard,
            sharded_load_ms_t1: sharded_ms[0],
            sharded_load_ms_t2: sharded_ms[1],
            sharded_load_ms_t4: sharded_ms[2],
            sharded_load_ms_t8: sharded_ms[3],
            sharded_load_copy_bound,
            warm_open_ms,
            cold_open_ms,
            mapped_bytes,
            retained_docs: bench.corpus.retained(),
            queries: latencies_ms.len(),
            query_p50_ms: percentile(&sorted, 0.50),
            query_p99_ms: percentile(&sorted, 0.99),
            queries_per_sec: if total_s > 0.0 { latencies_ms.len() as f64 / total_s } else { 0.0 },
            blocks_skipped_frac: if blocks_total_sum > 0 {
                blocks_skipped_sum as f64 / blocks_total_sum as f64
            } else {
                0.0
            },
            alpha_points: alphas.len(),
            alpha_sweep_naive_ms: naive_ms,
            alpha_sweep_factored_ms: factored_ms,
            alpha_sweep_speedup: if factored_ms > 0.0 { naive_ms / factored_ms } else { 0.0 },
            flight,
            rss_peak_bytes: rightcrowd_obs::rss_peak_bytes(),
            build_metrics,
            // Counters were reset after the build/store phase, so this
            // block's counters are query + sweep deltas; its histograms
            // and spans still cover the whole run.
            metrics: rightcrowd_obs::snapshot(),
        }
    }

    /// The snapshot as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() { format!("{v:.3}") } else { "null".to_owned() }
        }
        fn text(v: &str) -> String {
            let escaped: String = v
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    '\n' => vec!['\\', 'n'],
                    c if (c as u32) < 0x20 => " ".chars().collect(),
                    c => vec![c],
                })
                .collect();
            format!("\"{escaped}\"")
        }
        format!(
            "{{\n  \"scale\": {},\n  \"git_rev\": {},\n  \"git_dirty\": {},\n  \
             \"threads\": {},\n  \"unix_time\": {},\n  \
             \"generate_ms\": {},\n  \"analyze_ms\": {},\n  \"cold_build_ms\": {},\n  \
             \"snapshot_load_ms\": {},\n  \"snapshot_bytes\": {},\n  \
             \"postings_bytes\": {},\n  \"compression_ratio\": {},\n  \
             \"shard_count\": {},\n  \"manifest_bytes\": {},\n  \
             \"bytes_per_shard\": {},\n  \
             \"sharded_load_ms_t1\": {},\n  \"sharded_load_ms_t2\": {},\n  \
             \"sharded_load_ms_t4\": {},\n  \"sharded_load_ms_t8\": {},\n  \
             \"sharded_load_copy_bound\": {},\n  \
             \"warm_open_ms\": {},\n  \"cold_open_ms\": {},\n  \
             \"mapped_bytes\": {},\n  \
             \"retained_docs\": {},\n  \
             \"queries\": {},\n  \"query_p50_ms\": {},\n  \"query_p99_ms\": {},\n  \
             \"queries_per_sec\": {},\n  \"blocks_skipped_frac\": {},\n  \
             \"alpha_points\": {},\n  \
             \"alpha_sweep_naive_ms\": {},\n  \"alpha_sweep_factored_ms\": {},\n  \
             \"alpha_sweep_speedup\": {},\n  \"flight\": {{\n    \
             \"recorded\": {},\n    \"retained\": {},\n    \"mean_ms\": {},\n    \
             \"slowest_ms\": {},\n    \"slowest_label\": {}\n  }},\n  \
             \"rss_peak_bytes\": {},\n  \
             \"build_metrics\": {},\n  \
             \"metrics\": {}\n}}\n",
            text(&self.scale),
            text(&self.git_rev),
            self.git_dirty,
            self.threads,
            self.unix_time,
            num(self.generate_ms),
            num(self.analyze_ms),
            num(self.cold_build_ms),
            num(self.snapshot_load_ms),
            self.snapshot_bytes,
            self.postings_bytes,
            num(self.compression_ratio),
            self.shard_count,
            self.manifest_bytes,
            self.bytes_per_shard,
            num(self.sharded_load_ms_t1),
            num(self.sharded_load_ms_t2),
            num(self.sharded_load_ms_t4),
            num(self.sharded_load_ms_t8),
            self.sharded_load_copy_bound,
            num(self.warm_open_ms),
            num(self.cold_open_ms),
            self.mapped_bytes,
            self.retained_docs,
            self.queries,
            num(self.query_p50_ms),
            num(self.query_p99_ms),
            num(self.queries_per_sec),
            num(self.blocks_skipped_frac),
            self.alpha_points,
            num(self.alpha_sweep_naive_ms),
            num(self.alpha_sweep_factored_ms),
            num(self.alpha_sweep_speedup),
            self.flight.recorded,
            self.flight.retained,
            num(self.flight.mean_ms),
            num(self.flight.slowest_ms),
            text(&self.flight.slowest_label),
            self.rss_peak_bytes.map_or("null".to_owned(), |b| b.to_string()),
            self.build_metrics.to_json(2),
            self.metrics.to_json(2),
        )
    }

    /// The conventional snapshot filename for this report's scale.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.scale)
    }

    /// Writes the snapshot to `dir/BENCH_<scale>.json` (creating `dir` if
    /// needed) and returns the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.filename());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            scale: "tiny".into(),
            git_rev: "abc1234".into(),
            git_dirty: true,
            threads: 8,
            unix_time: 1_700_000_000,
            generate_ms: 12.5,
            analyze_ms: 800.25,
            cold_build_ms: 812.75,
            snapshot_load_ms: 40.5,
            snapshot_bytes: 1_234_567,
            postings_bytes: 222_333,
            compression_ratio: 1.75,
            shard_count: 4,
            manifest_bytes: 9_876,
            bytes_per_shard: 55_555,
            sharded_load_ms_t1: 38.0,
            sharded_load_ms_t2: 24.0,
            sharded_load_ms_t4: 15.5,
            sharded_load_ms_t8: 14.0,
            sharded_load_copy_bound: true,
            warm_open_ms: 0.125,
            cold_open_ms: 42.0,
            mapped_bytes: 1_111_111,
            retained_docs: 4321,
            queries: 30,
            query_p50_ms: 1.25,
            query_p99_ms: 4.75,
            queries_per_sec: 600.0,
            blocks_skipped_frac: 0.25,
            alpha_points: 11,
            alpha_sweep_naive_ms: 500.0,
            alpha_sweep_factored_ms: 50.0,
            alpha_sweep_speedup: 10.0,
            flight: rightcrowd_obs::FlightSummary {
                recorded: 30,
                retained: 30,
                mean_ms: 1.5,
                slowest_ms: 4.75,
                slowest_label: "slowest \"query\"".into(),
            },
            rss_peak_bytes: Some(104_857_600),
            build_metrics: rightcrowd_obs::MetricsSnapshot {
                counters: vec![("snapshot_bytes_read", 999_999)],
                histograms: vec![],
                spans: vec![],
            },
            metrics: rightcrowd_obs::MetricsSnapshot {
                counters: vec![("postings_traversed", 1234)],
                histograms: vec![],
                spans: vec![],
            },
        }
    }

    #[test]
    fn json_shape_is_flat_and_complete() {
        let json = sample().to_json();
        for key in [
            "scale",
            "git_rev",
            "git_dirty",
            "threads",
            "unix_time",
            "generate_ms",
            "analyze_ms",
            "cold_build_ms",
            "snapshot_load_ms",
            "snapshot_bytes",
            "postings_bytes",
            "compression_ratio",
            "shard_count",
            "manifest_bytes",
            "bytes_per_shard",
            "sharded_load_ms_t1",
            "sharded_load_ms_t2",
            "sharded_load_ms_t4",
            "sharded_load_ms_t8",
            "sharded_load_copy_bound",
            "warm_open_ms",
            "cold_open_ms",
            "mapped_bytes",
            "retained_docs",
            "queries",
            "query_p50_ms",
            "query_p99_ms",
            "queries_per_sec",
            "blocks_skipped_frac",
            "alpha_points",
            "alpha_sweep_naive_ms",
            "alpha_sweep_factored_ms",
            "alpha_sweep_speedup",
            "flight",
            "rss_peak_bytes",
            "build_metrics",
            "metrics",
        ] {
            assert!(json.contains(&format!("\"{key}\": ")), "missing {key} in {json}");
        }
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"git_dirty\": true"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"alpha_sweep_speedup\": 10.000"));
        // The snapshot size is an integer byte count, not a float.
        assert!(json.contains("\"snapshot_bytes\": 1234567"));
        assert!(json.contains("\"shard_count\": 4"));
        assert!(json.contains("\"manifest_bytes\": 9876"));
        assert!(json.contains("\"postings_bytes\": 222333"));
        assert!(json.contains("\"compression_ratio\": 1.750"));
        assert!(json.contains("\"bytes_per_shard\": 55555"));
        assert!(json.contains("\"blocks_skipped_frac\": 0.250"));
        assert!(json.contains("\"sharded_load_ms_t4\": 15.500"));
        assert!(json.contains("\"cold_build_ms\": 812.750"));
        assert!(json.contains("\"sharded_load_copy_bound\": true"));
        assert!(json.contains("\"warm_open_ms\": 0.125"));
        assert!(json.contains("\"cold_open_ms\": 42.000"));
        assert!(json.contains("\"mapped_bytes\": 1111111"));
        // The flight block is nested, escaped, and complete.
        for key in ["recorded", "retained", "mean_ms", "slowest_ms", "slowest_label"] {
            assert!(json.contains(&format!("\"{key}\": ")), "missing flight.{key}");
        }
        assert!(json.contains(r#""slowest_label": "slowest \"query\"""#));
        // The embedded metrics snapshot keeps its nested shape.
        assert!(json.contains("\"postings_traversed\": 1234"));
        // rss is an integer byte count; both metrics blocks are present.
        assert!(json.contains("\"rss_peak_bytes\": 104857600"));
        assert!(json.contains("\"snapshot_bytes_read\": 999999"));
    }

    #[test]
    fn json_renders_missing_rss_as_null() {
        let mut report = sample();
        report.rss_peak_bytes = None;
        assert!(report.to_json().contains("\"rss_peak_bytes\": null"));
    }

    #[test]
    fn json_escapes_strings() {
        let mut report = sample();
        report.git_rev = "we\"ird\\rev".into();
        let json = report.to_json();
        assert!(json.contains(r#""git_rev": "we\"ird\\rev""#));
    }

    #[test]
    fn filename_follows_scale() {
        assert_eq!(sample().filename(), "BENCH_tiny.json");
    }

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 10.0];
        // Exact order statistics where the rank lands on a sample.
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        // p99 over 5 samples: rank 3.96 → between 4.0 and 10.0.
        assert!((percentile(&sorted, 0.99) - 9.76).abs() < 1e-12);
        // p25 over 5 samples: rank exactly 1.0.
        assert_eq!(percentile(&sorted, 0.25), 2.0);
    }

    #[test]
    fn percentile_empty_input_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
    }

    #[test]
    fn percentile_single_sample_is_constant() {
        for p in [0.0, 0.37, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
    }

    #[test]
    fn percentile_even_count_interpolates_median() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        // Median rank 1.5 → midpoint of 2.0 and 3.0.
        assert_eq!(percentile(&sorted, 0.5), 2.5);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        // rank 2.97 → 3.0 + 0.97·(4.0 − 3.0).
        assert!((percentile(&sorted, 0.99) - 3.97).abs() < 1e-12);
    }

    #[test]
    fn percentile_odd_count_hits_middle_sample() {
        let sorted = [5.0, 6.0, 7.0];
        assert_eq!(percentile(&sorted, 0.5), 6.0);
        assert_eq!(percentile(&sorted, 0.25), 5.5);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let sorted = [1.0, 2.0];
        assert_eq!(percentile(&sorted, -0.5), 1.0);
        assert_eq!(percentile(&sorted, 1.5), 2.0);
    }

    /// Pins the per-phase counter semantics: `build_metrics` carries the
    /// build/store phase totals (≥ LOAD_REPS monolithic container reads
    /// of `snapshot_bytes` each), and the final `metrics` block carries
    /// query + sweep *deltas* — in particular zero snapshot reads,
    /// because nothing loads containers after the reset.
    #[test]
    fn measure_reports_per_phase_counter_deltas() {
        use rightcrowd_obs::CounterId;
        let ds = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
        let bench = Bench { ds, corpus, generate_ms: 1.0, analyze_ms: 1.0 };
        let report = BenchReport::measure(&bench);
        if !rightcrowd_obs::PROBES_ENABLED {
            return;
        }
        let build_read = report.build_metrics.counter(CounterId::SnapshotBytesRead);
        assert!(
            build_read >= LOAD_REPS as u64 * report.snapshot_bytes,
            "build phase must record its container reads: {build_read} < {} × {}",
            LOAD_REPS,
            report.snapshot_bytes
        );
        assert_eq!(
            report.metrics.counter(CounterId::SnapshotBytesRead),
            0,
            "query/sweep phase loads no containers, so the post-reset delta is zero"
        );
        // The query phase's own counters do land in the final block.
        assert!(report.metrics.counter(CounterId::PostingsTraversed) > 0);
        assert!(report.metrics.counter(CounterId::QueriesAnalyzed) > 0);
    }
}
