//! # rightcrowd-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§3), each printing the paper's reported values next to the
//! values measured on the synthetic reproduction. The experiment bodies
//! live in [`experiments`] as functions over a shared [`Bench`], so
//! `exp_all` runs the full suite against **one** dataset build.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `exp_dataset`  | Fig. 5a (resources/users per network & distance), Fig. 5b (experts per domain) |
//! | `exp_window`   | Fig. 6 (metrics vs. window size, distances 1–2) |
//! | `exp_alpha`    | Fig. 7 (metrics vs. α, distances 0–2) — factored single-traversal sweep |
//! | `exp_friends`  | Table 2 + Fig. 8 (Twitter friends on/off) |
//! | `exp_distance` | Table 3 + Fig. 9 (All/FB/TW/LI × distance) |
//! | `exp_domains`  | Table 4 (per-domain breakdown) |
//! | `exp_users`    | Fig. 10 (per-user F1 vs. available resources) |
//! | `exp_delta`    | Fig. 11 (retrieved-expert deltas per query) |
//! | `exp_ablation` | design-choice ablations (weights, normalisation, enrichment, voting, location policy) |
//! | `exp_rankers`  | retrieval (VSM vs. BM25) × fusion (Eq. 3 vs. voting models) comparison |
//! | `exp_all`      | everything above, in order, sharing one in-process [`Bench`] |
//! | `rc`           | interactive CLI: `rc query`, `rc explain`, `rc eval`, `rc stats`, `rc bench`, `rc save`, `rc load`, `rc flight`, `rc trace`, `rc metrics`, `rc regress`, `rc soak`, `rc profile`, `rc spans` |
//!
//! `rc bench` measures the retrieval hot path (per-query latency, the
//! factored-vs-naive α-sweep speedup) and writes a `BENCH_<scale>.json`
//! snapshot — see [`report`]. Since the observability layer landed the
//! snapshot also embeds a `metrics` member (counters, histograms, span
//! timings from [`rightcrowd_obs`]) and a `flight` member (the query
//! flight-recorder aggregate — the latency loop runs with recording on,
//! so the snapshot certifies the recorder's overhead); `rc metrics`
//! prints the same registry after a workload run, and `rc regress` diffs
//! two snapshots, failing on latency regressions past a threshold and on
//! traversal counter-invariant violations — see [`regress`]. `rc explain`
//! prints the per-resource score decomposition of a query ([`explain_fmt`]),
//! `rc flight` tails the flight recorder, and `rc trace --chrome` exports
//! spans + flight records as Chrome trace-event JSON.
//!
//! Since the `rightcrowd-store` snapshot layer landed, `rc save` /
//! `rc load` serialise and verify the built corpus as an on-disk
//! container, `--snapshot FILE.rcs` serves `rc explain` / `rc flight`
//! from such a container (cold-building and caching it when absent),
//! `rc bench` measures — and records in the JSON snapshot as
//! `cold_build_ms` / `snapshot_load_ms` / `snapshot_bytes` — the save →
//! load round trip, and `rc regress` gates on those keys plus the
//! container's integrity.
//!
//! The dataset scale is selected with the `RIGHTCROWD_SCALE` environment
//! variable (or `rc --scale`): `tiny`, `small` (default) or `paper` (the
//! full ~330k-resource study; expect a few minutes of corpus analysis).

pub mod cli;
pub mod experiments;
pub mod explain_fmt;
pub mod paper;
pub mod profile;
pub mod regress;
pub mod report;
pub mod runner;
pub mod serve_app;
pub mod soak;
pub mod table;

pub use report::BenchReport;
pub use runner::{load_dataset, scale_label, Bench};
