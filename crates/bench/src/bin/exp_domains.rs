//! Thin binary wrapper; see [`rightcrowd_bench::experiments::domains`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_domains
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::domains::run(&bench);
}
