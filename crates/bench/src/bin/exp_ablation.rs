//! Thin binary wrapper; see [`rightcrowd_bench::experiments::ablation`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_ablation
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::ablation::run(&bench);
}
