//! Thin binary wrapper; see [`rightcrowd_bench::experiments::distance`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_distance
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::distance::run(&bench);
}
