//! Experiment: α sensitivity — the paper's Fig. 7.
//!
//! Sweeps the Eq. 1 term/entity mixing weight α from 0 (entities only) to
//! 1 (terms only) at distances 0, 1 and 2 with window = 100, reporting the
//! four headline metrics.
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_alpha
//! ```

use rightcrowd_bench::table::{banner, header4, row4};
use rightcrowd_bench::Bench;
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::{Attribution, FinderConfig};
use rightcrowd_types::Distance;

fn main() {
    let bench = Bench::prepare();
    let ctx = bench.ctx();

    banner("Fig. 7 — sensitivity to the α parameter (window = 100)");
    println!(
        "paper shape: α = 0 (entities only) collapses at distance 0 (profiles\n\
         are too sparse to annotate); metrics are stable for α ∈ [0.3, 0.8];\n\
         the paper fixes α = 0.6.\n"
    );
    let random = random_baseline(&bench.ds, 0xA1FA);
    println!("{:<16} {}", "config", header4());
    println!("{:<16} {}", "random", row4(&random));

    for distance in Distance::ALL {
        let base = FinderConfig::default().with_distance(distance);
        let attribution = Attribution::compute(&bench.ds, &bench.corpus, &base);
        for step in 0..=10 {
            let alpha = step as f64 / 10.0;
            let config = base.clone().with_alpha(alpha);
            let outcome = ctx.run_with_attribution(&config, &attribution);
            println!(
                "{:<16} {}",
                format!("dist {} α={alpha:.1}", distance.level()),
                row4(&outcome.mean)
            );
        }
    }
}
