//! Thin binary wrapper; see [`rightcrowd_bench::experiments::alpha`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_alpha
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::alpha::run(&bench);
}
