//! `rc` — the interactive command-line front end.
//!
//! ```sh
//! cargo run --release -p rightcrowd-bench --bin rc -- query "why is copper a good conductor" --top 5
//! RIGHTCROWD_SCALE=tiny cargo run --release -p rightcrowd-bench --bin rc -- eval --platform tw
//! cargo run --release -p rightcrowd-bench --bin rc -- stats
//! cargo run --release -p rightcrowd-bench --bin rc -- bench --scale small
//! cargo run --release -p rightcrowd-bench --bin rc -- save --snapshot corpus.rcs
//! cargo run --release -p rightcrowd-bench --bin rc -- save --snapshot corpus.shards --shards 4
//! cargo run --release -p rightcrowd-bench --bin rc -- load --snapshot corpus.rcs
//! cargo run --release -p rightcrowd-bench --bin rc -- load --snapshot corpus.shards --threads 4
//! cargo run --release -p rightcrowd-bench --bin rc -- explain "famous freestyle swimmers" --snapshot corpus.rcs
//! cargo run --release -p rightcrowd-bench --bin rc -- metrics --trace
//! cargo run --release -p rightcrowd-bench --bin rc -- regress BENCH_small.json target/BENCH_small.json
//! cargo run --release -p rightcrowd-bench --bin rc -- explain "famous freestyle swimmers" --top 3
//! cargo run --release -p rightcrowd-bench --bin rc -- flight --slowest 10 --capacity 1024
//! cargo run --release -p rightcrowd-bench --bin rc -- soak --out target/perf --duration 30s --watch
//! cargo run --release -p rightcrowd-bench --bin rc -- serve --snapshot corpus.shards --addr 127.0.0.1:7700
//! cargo run --release -p rightcrowd-bench --bin rc -- soak --connect 127.0.0.1:7700 --duration 10s
//! cargo run --release -p rightcrowd-bench --bin rc -- profile bench --out target/perf --hz 1000
//! cargo run --release -p rightcrowd-bench --bin rc -- profile soak --duration 10s --svg flame.svg
//! cargo run --release -p rightcrowd-bench --bin rc -- spans --json
//! cargo run --release -p rightcrowd-bench --bin rc -- expose --out metrics.openmetrics --check metrics.openmetrics
//! cargo run --release -p rightcrowd-bench --bin rc -- trace --chrome trace.chrome.json --check trace.chrome.json
//! ```

use rightcrowd_bench::cli::{parse, Command, USAGE};
use rightcrowd_bench::table::{header4, row4};
use rightcrowd_bench::{explain_fmt, regress, Bench, BenchReport};
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::{ExpertFinder, FinderConfig};
use rightcrowd_synth::DatasetStats;
use rightcrowd_types::{Domain, Platform};

/// [`Bench::prepare_with`], exiting with a rendered error (a damaged
/// snapshot is a hard failure, not a silent rebuild).
fn prepare_or_exit(snapshot: Option<&std::path::Path>) -> Bench {
    match Bench::prepare_with(snapshot) {
        Ok(bench) => bench,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match parse(&args) {
        Ok(invocation) => invocation,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(scale) = &invocation.scale {
        // Before any dataset loading; single-threaded here, so safe.
        std::env::set_var("RIGHTCROWD_SCALE", scale);
    }
    let trace = invocation.trace;
    match invocation.command {
        Command::Help => print!("{USAGE}"),
        Command::Stats => {
            let bench = Bench::prepare();
            let stats = DatasetStats::compute(&bench.ds);
            println!(
                "{} candidates, {} resources ({:.0}% English, {:.0}% with URLs)",
                stats.candidates,
                stats.total_resources,
                stats.english_fraction * 100.0,
                stats.url_fraction * 100.0
            );
            for platform in Platform::ALL {
                let p = &stats.platforms[platform.index()];
                println!(
                    "  {:<9} d0 {:>7}  d1 {:>7}  d2 {:>7}  (generated {:>7})",
                    platform.abbrev(),
                    p.docs_at[0],
                    p.docs_at[1],
                    p.docs_at[2],
                    p.resources_generated
                );
            }
            for domain in Domain::ALL {
                let d = &stats.domains[domain.index()];
                println!(
                    "  {:<22} {:>2} experts, avg expertise {:.2}",
                    domain.label(),
                    d.experts,
                    d.avg_expertise
                );
            }
        }
        Command::Query { text, top, platforms, distance } => {
            let bench = Bench::prepare();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let finder = ExpertFinder::with_corpus(&bench.ds, bench.corpus, &config);
            let ranking = finder.rank_text(&text);
            if ranking.is_empty() {
                println!("no candidate shows evidence for {text:?}");
                return;
            }
            println!("top {} of {} candidates for {:?}:", top.min(ranking.len()), ranking.len(), text);
            for (rank, expert) in ranking.iter().take(top).enumerate() {
                println!(
                    "  {:>2}. {:<24} {:>10.2}",
                    rank + 1,
                    bench.ds.candidates()[expert.person.index()].name,
                    expert.score
                );
            }
        }
        Command::Bench { out, snapshot, shards } => {
            // The bench always cold-builds (snapshot_load_ms must be
            // compared against a real cold_build_ms from the same run),
            // then measures the save → load round trip against --snapshot
            // or a temp file, monolithic and sharded both.
            let bench = Bench::prepare();
            let report = BenchReport::measure_with(&bench, snapshot.as_deref(), shards);
            println!(
                "query latency p50 {:.2} ms / p99 {:.2} ms ({:.0} queries/sec)",
                report.query_p50_ms, report.query_p99_ms, report.queries_per_sec
            );
            println!(
                "snapshot: {} bytes; load {:.0} ms vs cold build {:.0} ms — {:.1}× faster",
                report.snapshot_bytes,
                report.snapshot_load_ms,
                report.cold_build_ms,
                if report.snapshot_load_ms > 0.0 {
                    report.cold_build_ms / report.snapshot_load_ms
                } else {
                    f64::INFINITY
                },
            );
            println!(
                "sharded ({} shards, {} byte manifest): load {:.0} / {:.0} / {:.0} / {:.0} ms at 1/2/4/8 threads",
                report.shard_count,
                report.manifest_bytes,
                report.sharded_load_ms_t1,
                report.sharded_load_ms_t2,
                report.sharded_load_ms_t4,
                report.sharded_load_ms_t8,
            );
            println!(
                "α sweep ({} points × 3 distances): naive {:.0} ms, factored {:.0} ms — {:.1}× speedup",
                report.alpha_points,
                report.alpha_sweep_naive_ms,
                report.alpha_sweep_factored_ms,
                report.alpha_sweep_speedup
            );
            println!(
                "metrics: {} postings traversed, {} pruned, {} attribution cache hits / {} misses",
                report.metrics.counter(rightcrowd_obs::CounterId::PostingsTraversed),
                report.metrics.counter(rightcrowd_obs::CounterId::MaxscorePruned),
                report.metrics.counter(rightcrowd_obs::CounterId::AttributionCacheHits),
                report.metrics.counter(rightcrowd_obs::CounterId::AttributionCacheMisses),
            );
            println!(
                "flight: {} recorded, {} retained, mean {:.3} ms, slowest {:.3} ms ({:?})",
                report.flight.recorded,
                report.flight.retained,
                report.flight.mean_ms,
                report.flight.slowest_ms,
                report.flight.slowest_label,
            );
            match report.write_to(&out) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", out.display());
                    std::process::exit(1);
                }
            }
        }
        Command::Save { snapshot, shards, threads, layout } => {
            let bench = Bench::prepare();
            let threads = threads.unwrap_or_else(rightcrowd_core::par::default_threads);
            match shards {
                Some(n) => {
                    match rightcrowd_store::save_sharded_with(
                        &snapshot,
                        &bench.ds,
                        &bench.corpus,
                        n,
                        threads,
                        layout,
                    ) {
                        Ok(stats) => println!(
                            "wrote {} ({} shards + {} byte manifest, {} bytes total in {:.0} ms{})",
                            snapshot.display(),
                            stats.shard_count,
                            stats.manifest_bytes,
                            stats.bytes,
                            stats.elapsed_ms,
                            if layout == rightcrowd_store::SnapshotLayout::Mapped {
                                ", mapped layout + sidecars"
                            } else {
                                ""
                            },
                        ),
                        Err(e) => {
                            eprintln!("error: cannot save {}: {e}", snapshot.display());
                            std::process::exit(1);
                        }
                    }
                }
                None => match rightcrowd_store::save(&snapshot, &bench.ds, &bench.corpus) {
                    Ok(stats) => println!(
                        "wrote {} ({} bytes in {:.0} ms)",
                        snapshot.display(),
                        stats.bytes,
                        stats.elapsed_ms
                    ),
                    Err(e) => {
                        eprintln!("error: cannot save {}: {e}", snapshot.display());
                        std::process::exit(1);
                    }
                },
            }
        }
        Command::Load { snapshot, threads } => {
            // Container kind is detected on disk, not declared: the
            // shared loader routes a manifest-bearing directory through
            // the sharded path, anything else through the monolithic one.
            let threads = threads.unwrap_or_else(rightcrowd_core::par::default_threads);
            let rss_before = rightcrowd_obs::rss_now_bytes();
            match rightcrowd_bench::runner::load_snapshot(&snapshot, threads) {
                Ok((ds, corpus, load)) => {
                    if load.sharded {
                        println!(
                            "verified {} ({} shards, {} bytes in {:.0} ms, {} threads{})",
                            snapshot.display(),
                            load.shard_count,
                            load.bytes,
                            load.elapsed_ms,
                            threads,
                            if load.mapped { ", mapped zero-copy" } else { "" },
                        );
                    } else {
                        println!(
                            "verified {} ({} bytes in {:.0} ms)",
                            snapshot.display(),
                            load.bytes,
                            load.elapsed_ms
                        );
                    }
                    // The RSS delta across the open is the point of the
                    // mapped layout: borrowed pages are counted only as
                    // they are touched, so a mapped open should cost a
                    // fraction of the streamed reconstruction.
                    if let (Some(before), Some(after)) =
                        (rss_before, rightcrowd_obs::rss_now_bytes())
                    {
                        println!(
                            "  rss delta across the open: {:+} KiB (now {} KiB)",
                            (after as i64 - before as i64) / 1024,
                            after / 1024
                        );
                    }
                    // On the mapped layout the full load above verified (or
                    // re-signed) every sidecar, so re-opening just the index
                    // shows the steady-state warm cost: a stat + sidecar
                    // read + mmap per shard, no CRC pass. Best of three
                    // keeps one scheduler hiccup from skewing the report.
                    if load.mapped {
                        let mut best: Option<rightcrowd_store::MappedOpenStats> = None;
                        for _ in 0..3 {
                            if let Ok((_, stats)) = rightcrowd_store::open_mapped(&snapshot) {
                                if best.as_ref().is_none_or(|b| stats.elapsed_ms < b.elapsed_ms)
                                {
                                    best = Some(stats);
                                }
                            }
                        }
                        if let Some(stats) = best {
                            println!(
                                "  warm index open: {:.3} ms ({}, best of 3)",
                                stats.elapsed_ms,
                                if stats.warm { "warm" } else { "cold" },
                            );
                        }
                    }
                    let (persons, profiles, resources, containers) = ds.graph().counts();
                    println!(
                        "  {persons} candidates / {profiles} profiles / {resources} resources / {containers} containers"
                    );
                    println!(
                        "  {} retained docs, {} dropped as non-English, {} queries",
                        corpus.retained(),
                        corpus.dropped_non_english(),
                        ds.queries().len()
                    );
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Command::Explain { text, candidate, top, json, platforms, distance, snapshot } => {
            let bench = prepare_or_exit(snapshot.as_deref());
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let explained = ctx.explain_text(&config, &text);
            let names: Vec<&str> =
                bench.ds.candidates().iter().map(|p| p.name.as_str()).collect();
            if json {
                print!(
                    "{}",
                    explain_fmt::explain_json(
                        &explained,
                        &config,
                        &names,
                        candidate.as_deref(),
                        top
                    )
                );
            } else {
                println!("explaining {text:?}");
                print!(
                    "{}",
                    explain_fmt::render_explain(
                        &explained,
                        &config,
                        &names,
                        candidate.as_deref(),
                        top
                    )
                );
            }
        }
        Command::Flight { slowest, capacity, platforms, distance, snapshot } => {
            let bench = prepare_or_exit(snapshot.as_deref());
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            if let Some(n) = capacity {
                // Swap in a fresh ring of the requested size before the
                // run (drops anything previously recorded).
                rightcrowd_obs::set_flight_capacity(n);
                eprintln!(
                    "[flight] ring capacity {}",
                    rightcrowd_obs::flight::flight_capacity()
                );
            }
            rightcrowd_obs::flight::reset_flight();
            rightcrowd_obs::flight::set_flight_enabled(true);
            let outcome = ctx.run(&config);
            rightcrowd_obs::flight::set_flight_enabled(false);
            eprintln!(
                "[flight] workload MAP {:.3} over {} queries",
                outcome.mean.map,
                outcome.per_query.len()
            );
            let summary = rightcrowd_obs::flight::flight_summary();
            let records = match slowest {
                Some(k) => rightcrowd_obs::flight::slowest(k),
                None => {
                    // Newest first, like a log tail.
                    let mut recent = rightcrowd_obs::flight::recent();
                    recent.reverse();
                    recent
                }
            };
            let names: Vec<&str> =
                bench.ds.candidates().iter().map(|p| p.name.as_str()).collect();
            print!("{}", explain_fmt::render_flight(&summary, &records, &names));
        }
        Command::Soak {
            out,
            snapshot,
            connect,
            duration_ms,
            queries,
            threads,
            tick_ms,
            watch,
            profile,
        } => {
            let bench = prepare_or_exit(snapshot.as_deref());
            let opts = rightcrowd_bench::soak::SoakOptions {
                duration: std::time::Duration::from_millis(duration_ms),
                query_budget: queries,
                max_threads: threads,
                tick: std::time::Duration::from_millis(tick_ms),
                watch,
                profile,
                ..Default::default()
            };
            if let Some(addr) = connect {
                // Connect mode: the ladder drives a running `rc serve`
                // daemon over TCP instead of ranking in-process. The
                // local bench only supplies the query workload and the
                // bit-identity reference.
                let report =
                    match rightcrowd_bench::soak::ConnectReport::run(&bench, &addr, &opts) {
                        Ok(report) => report,
                        Err(e) => {
                            eprintln!("error: {e}");
                            std::process::exit(1);
                        }
                    };
                for phase in &report.phases {
                    println!(
                        "t{} over-tcp       {:>8.0} qps  p50 {:>7.3} ms  p99 {:>7.3} ms  ({} queries in {:.1}s)",
                        phase.threads, phase.qps, phase.p50_ms, phase.p99_ms, phase.queries,
                        phase.elapsed_s,
                    );
                }
                match report.write_to(&out) {
                    Ok(paths) => {
                        for path in paths {
                            println!("wrote {}", path.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
                return;
            }
            let report = rightcrowd_bench::soak::SoakReport::run(&bench, &opts);
            for phase in &report.phases {
                println!(
                    "t{} {:<13} {:>8.0} qps  p50 {:>7.3} ms  p99 {:>7.3} ms  ({} queries in {:.1}s)",
                    phase.threads,
                    if phase.telemetry { "telemetry-on" } else { "telemetry-off" },
                    phase.qps,
                    phase.p50_ms,
                    phase.p99_ms,
                    phase.queries,
                    phase.elapsed_s,
                );
            }
            println!(
                "telemetry overhead {:.2}% (budget {:.0}%); wide events {} seen / {} retained{}",
                report.telemetry_overhead_frac * 100.0,
                regress::OBS_OVERHEAD_MAX * 100.0,
                report.events_seen,
                report.events_retained,
                report
                    .rss_peak_bytes
                    .map_or(String::new(), |b| format!("; peak RSS {:.1} MiB", b as f64 / (1 << 20) as f64)),
            );
            if let Some(profile) = &report.profile {
                println!(
                    "profiler: {} samples over {} ticks ({:.0} µs interval); per-query CPU stamped on {} events",
                    profile.samples,
                    profile.ticks,
                    profile.interval_ns as f64 / 1_000.0,
                    profile.query_samples.len(),
                );
            }
            match report.write_to(&out) {
                Ok(paths) => {
                    for path in paths {
                        println!("wrote {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Command::Serve { snapshot, addr, threads, out } => {
            use std::sync::atomic::Ordering;

            // Warm once: snapshot when it exists (monolithic or sharded,
            // detected on disk), cold build + cache otherwise — the same
            // policy every other snapshot-taking subcommand follows.
            let decode_threads = rightcrowd_core::par::default_threads();
            let rss_before = rightcrowd_obs::rss_now_bytes();
            let (bench, load) = if rightcrowd_store::is_sharded(&snapshot)
                || snapshot.is_file()
            {
                match rightcrowd_bench::runner::load_snapshot(&snapshot, decode_threads) {
                    Ok((ds, corpus, load)) => (
                        Bench { ds, corpus, generate_ms: 0.0, analyze_ms: 0.0 },
                        Some(load),
                    ),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                (prepare_or_exit(Some(&snapshot)), None)
            };
            if let Some(l) = &load {
                // Startup cost report: wall time next to the RSS delta the
                // open actually charged this process — near zero on the
                // mapped path, where the index stays in borrowed page
                // cache until queries touch it.
                match (rss_before, rightcrowd_obs::rss_now_bytes()) {
                    (Some(before), Some(after)) => eprintln!(
                        "[serve] warmed in {:.0} ms ({}): rss delta {:+} KiB (now {} KiB)",
                        l.elapsed_ms,
                        if l.mapped { "mapped zero-copy" } else { "streamed" },
                        (after as i64 - before as i64) / 1024,
                        after / 1024
                    ),
                    _ => eprintln!(
                        "[serve] warmed in {:.0} ms ({})",
                        l.elapsed_ms,
                        if l.mapped { "mapped zero-copy" } else { "streamed" },
                    ),
                }
            }

            // Queries served over HTTP land in the flight ring like any
            // other instrumented run, so `rc flight`-style debugging
            // works against a daemon too.
            rightcrowd_obs::flight::set_flight_enabled(true);
            let app = rightcrowd_bench::serve_app::RankApp::new(
                bench,
                snapshot.display().to_string(),
                load,
            );
            let mut server_config = rightcrowd_serve::ServerConfig {
                addr,
                ..rightcrowd_serve::ServerConfig::default()
            };
            if let Some(n) = threads {
                server_config.threads = n;
            }
            let workers = server_config.threads;
            let server = match rightcrowd_serve::Server::bind(server_config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            match server.local_addr() {
                Some(bound) => println!(
                    "serving on http://{bound} ({workers} workers) — POST /rank, POST /explain, \
                     GET /metrics, GET /healthz, WS /rank"
                ),
                None => eprintln!("warning: cannot read bound address"),
            }
            println!(
                "snapshot fingerprint {}; SIGTERM/SIGINT drains in-flight queries and \
                 flushes the event log into {}",
                app.fingerprint(),
                out.display()
            );
            server.run(&app);

            // Past this point the drain contract holds: every accepted
            // request finished. Flush, report, exit 0.
            let stats = server.stats();
            eprintln!(
                "[serve] drained: {} queries over {} requests ({} connections, {} shed, \
                 {} ws upgrades, {} faults answered)",
                app.served(),
                stats.requests.load(Ordering::Relaxed),
                stats.accepted.load(Ordering::Relaxed),
                stats.shed.load(Ordering::Relaxed),
                stats.ws_upgrades.load(Ordering::Relaxed),
                stats.faults_answered.load(Ordering::Relaxed),
            );
            match app.flush_events(&out) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Command::Expose { out, check } => {
            if let Some(path) = &out {
                // Run the workload once so the registry holds a real
                // serving profile, then expose it.
                let bench = Bench::prepare();
                let ctx = bench.ctx();
                let outcome = ctx.run(&FinderConfig::default());
                eprintln!(
                    "[expose] workload MAP {:.3} over {} queries",
                    outcome.mean.map,
                    outcome.per_query.len()
                );
                let text = rightcrowd_obs::openmetrics_live(&rightcrowd_bench::soak::build_info());
                if let Err(e) = rightcrowd_obs::validate_openmetrics(&text) {
                    eprintln!("error: live exposition failed validation: {e}");
                    std::process::exit(1);
                }
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("wrote {}", path.display());
            }
            if let Some(path) = &check {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("error: cannot read {}: {e}", path.display());
                        std::process::exit(1);
                    }
                };
                match rightcrowd_obs::validate_openmetrics(&text) {
                    Ok(samples) => {
                        println!("ok: {} valid samples in {}", samples, path.display())
                    }
                    Err(e) => {
                        eprintln!("error: {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        Command::Trace { chrome, check, platforms, distance } => {
            if let Some(out_path) = &chrome {
                let bench = Bench::prepare();
                let ctx = bench.ctx();
                let config = FinderConfig::default()
                    .with_platforms(platforms)
                    .with_distance(distance);
                rightcrowd_obs::flight::reset_flight();
                rightcrowd_obs::flight::set_flight_enabled(true);
                let outcome = ctx.run(&config);
                rightcrowd_obs::flight::set_flight_enabled(false);
                eprintln!(
                    "[trace] workload MAP {:.3} over {} queries",
                    outcome.mean.map,
                    outcome.per_query.len()
                );
                let trace_json = rightcrowd_obs::chrome_trace_json(
                    &rightcrowd_obs::snapshot(),
                    &rightcrowd_obs::flight::recent(),
                );
                if let Err(e) = std::fs::write(out_path, &trace_json) {
                    eprintln!("error: cannot write {}: {e}", out_path.display());
                    std::process::exit(1);
                }
                println!("wrote {} (load in chrome://tracing or Perfetto)", out_path.display());
            }
            if let Some(path) = &check {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("error: cannot read {}: {e}", path.display());
                        std::process::exit(1);
                    }
                };
                match regress::validate_chrome_trace(&text) {
                    Ok(events) => {
                        println!("ok: {} valid trace events in {}", events, path.display())
                    }
                    Err(e) => {
                        eprintln!("error: {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        Command::Metrics { platforms, distance } => {
            let bench = Bench::prepare();
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            eprintln!(
                "[metrics] workload MAP {:.3} over {} queries",
                outcome.mean.map,
                outcome.per_query.len()
            );
            print!("{}", rightcrowd_obs::snapshot().render());
        }
        Command::Regress { baseline, current, threshold, warn_only, snapshot } => {
            // Every gate runs even after the first failure — one run
            // reports ALL broken keys and invariants (a CI loop that
            // surfaces failures one at a time costs a full rebuild per
            // discovery). Failures accumulate here; the exit happens once
            // at the end.
            let mut failures: Vec<String> = Vec::new();

            // Snapshot integrity gate: a container that fails its
            // checksums is a regression regardless of the latency diff.
            // The shared loader routes sharded directories through the
            // manifest-plus-every-shard path, monolithic files through
            // the single-container one.
            if let Some(path) = &snapshot {
                let threads = rightcrowd_core::par::default_threads();
                match rightcrowd_bench::runner::load_snapshot(path, threads) {
                    Ok((_, corpus, load)) if load.sharded => println!(
                        "snapshot {} ok: {} shards / {} bytes verified in {:.0} ms ({} retained docs)",
                        path.display(),
                        load.shard_count,
                        load.bytes,
                        load.elapsed_ms,
                        corpus.retained()
                    ),
                    Ok((_, corpus, load)) => println!(
                        "snapshot {} ok: {} bytes verified in {:.0} ms ({} retained docs)",
                        path.display(),
                        load.bytes,
                        load.elapsed_ms,
                        corpus.retained()
                    ),
                    Err(e) => failures.push(e),
                }
            }

            // Profiler artifact gate: when a profile run left its folded
            // stacks next to the current bench snapshot, they must still
            // parse — a flamegraph nobody can re-render is not an
            // artifact. Absence is fine (not every run profiles).
            let folded_path = current
                .parent()
                .map(|dir| dir.join("profile.folded"))
                .filter(|p| p.is_file());
            if let Some(path) = &folded_path {
                match std::fs::read_to_string(path) {
                    Ok(text) => match rightcrowd_obs::validate_folded(&text) {
                        Ok(samples) => println!(
                            "profile {} ok: {} samples re-validated",
                            path.display(),
                            samples
                        ),
                        Err(e) => failures.push(format!("profile {}: {e}", path.display())),
                    },
                    Err(e) => {
                        failures.push(format!("profile {}: cannot read: {e}", path.display()))
                    }
                }
            }

            // The snapshot diff itself: latency/size keys plus counter
            // invariants (including the profiler overhead budget).
            let mut provenance: Option<String> = None;
            match regress::compare_files(&baseline, &current, threshold) {
                Ok(report) => {
                    print!("{}", report.render());
                    provenance = Some(report.provenance());
                    if report.any_regressed() {
                        failures.push(format!(
                            "{} regressed key(s)/invariant(s) in {}",
                            report.regressed_count(),
                            current.display()
                        ));
                    }
                }
                Err(e) => failures.push(e.to_string()),
            }

            if !failures.is_empty() {
                // The summary names the baseline the run compared
                // against — a failed gate against a dirty-tree baseline
                // reads very differently from one against a clean rev.
                match &provenance {
                    Some(p) => eprintln!("{} gate(s) failed ({p}):", failures.len()),
                    None => eprintln!("{} gate(s) failed:", failures.len()),
                }
                for failure in &failures {
                    eprintln!("  - {failure}");
                }
                if !warn_only {
                    std::process::exit(1);
                }
            }
        }
        Command::Profile { mode, out, snapshot, folded, svg, hz, duration_ms, threads } => {
            if !rightcrowd_obs::PROBES_ENABLED {
                // obs-off builds keep the command but compile the sampler
                // (and every span it would observe) out. Degrade to a
                // clear no-op — writing empty artifacts would look like a
                // profiler bug rather than a build-flavour fact.
                eprintln!(
                    "rc profile: built with feature obs-off — the sampling profiler is \
                     compiled out, nothing to profile (rebuild without obs-off)"
                );
                return;
            }
            let bench = prepare_or_exit(snapshot.as_deref());
            let opts = rightcrowd_bench::profile::ProfileOptions {
                mode,
                hz,
                duration: std::time::Duration::from_millis(duration_ms),
                threads,
            };
            let report = rightcrowd_bench::profile::ProfileRunReport::run(&bench, &opts);
            println!(
                "profile: {} samples over {} ticks ({:.0} µs interval)",
                report.profile.samples,
                report.profile.ticks,
                report.profile.interval_ns as f64 / 1_000.0,
            );
            if let Some(frac) = report.overhead_frac {
                println!(
                    "overhead: {:.2}% vs unprofiled floor (budget {:.0}%, gated by rc regress)",
                    frac * 100.0,
                    regress::PROFILE_OVERHEAD_MAX * 100.0,
                );
            }
            for (i, (span, frac)) in report.profile.top_self(5).into_iter().enumerate() {
                println!("  top{} {:<44} {:>5.1}% self", i + 1, span, frac * 100.0);
            }
            match report.write_to(&out, folded.as_deref(), svg.as_deref()) {
                Ok(paths) => {
                    for path in paths {
                        println!("wrote {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Command::Spans { json, platforms, distance } => {
            // Run the evaluation workload once so the span registry holds
            // a real serving profile, then expose the aggregated tree —
            // the same rows `rc metrics` embeds, without the counters and
            // histograms around them.
            let bench = Bench::prepare();
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            eprintln!(
                "[spans] workload MAP {:.3} over {} queries",
                outcome.mean.map,
                outcome.per_query.len()
            );
            let spans = rightcrowd_obs::snapshot().spans;
            if json {
                let rows: Vec<regress::Json> = spans
                    .iter()
                    .map(|(path, stat)| {
                        let mut row = std::collections::BTreeMap::new();
                        row.insert("path".to_owned(), regress::Json::Str(path.clone()));
                        row.insert("calls".to_owned(), regress::Json::Num(stat.calls as f64));
                        row.insert(
                            "total_ns".to_owned(),
                            regress::Json::Num(stat.total_ns as f64),
                        );
                        row.insert(
                            "self_ns".to_owned(),
                            regress::Json::Num(stat.self_ns() as f64),
                        );
                        regress::Json::Obj(row)
                    })
                    .collect();
                print!("{}", regress::Json::Arr(rows).render());
            } else if spans.is_empty() {
                eprintln!("no spans recorded (built with obs-off?)");
            } else {
                print!("{}", rightcrowd_obs::span::render_tree(&spans));
            }
        }
        Command::Eval { platforms, distance } => {
            let bench = Bench::prepare();
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            let random = random_baseline(&bench.ds, 0x0E7A1);
            println!("{:<10} {}", "config", header4());
            println!("{:<10} {}", "random", row4(&random));
            println!(
                "{:<10} {}",
                format!("{} d{}", config.platforms.label(), distance.level()),
                row4(&outcome.mean)
            );
        }
    }
    if trace {
        let spans = rightcrowd_obs::snapshot().spans;
        if spans.is_empty() {
            eprintln!("[trace] no spans recorded (built with obs-off?)");
        } else {
            eprint!("{}", rightcrowd_obs::span::render_tree(&spans));
        }
    }
}
