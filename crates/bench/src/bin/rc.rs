//! `rc` — the interactive command-line front end.
//!
//! ```sh
//! cargo run --release -p rightcrowd-bench --bin rc -- query "why is copper a good conductor" --top 5
//! RIGHTCROWD_SCALE=tiny cargo run --release -p rightcrowd-bench --bin rc -- eval --platform tw
//! cargo run --release -p rightcrowd-bench --bin rc -- stats
//! cargo run --release -p rightcrowd-bench --bin rc -- bench --scale small
//! cargo run --release -p rightcrowd-bench --bin rc -- metrics --trace
//! cargo run --release -p rightcrowd-bench --bin rc -- regress BENCH_small.json target/BENCH_small.json
//! ```

use rightcrowd_bench::cli::{parse, Command, USAGE};
use rightcrowd_bench::table::{header4, row4};
use rightcrowd_bench::{regress, Bench, BenchReport};
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::{ExpertFinder, FinderConfig};
use rightcrowd_synth::DatasetStats;
use rightcrowd_types::{Domain, Platform};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match parse(&args) {
        Ok(invocation) => invocation,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(scale) = &invocation.scale {
        // Before any dataset loading; single-threaded here, so safe.
        std::env::set_var("RIGHTCROWD_SCALE", scale);
    }
    let trace = invocation.trace;
    match invocation.command {
        Command::Help => print!("{USAGE}"),
        Command::Stats => {
            let bench = Bench::prepare();
            let stats = DatasetStats::compute(&bench.ds);
            println!(
                "{} candidates, {} resources ({:.0}% English, {:.0}% with URLs)",
                stats.candidates,
                stats.total_resources,
                stats.english_fraction * 100.0,
                stats.url_fraction * 100.0
            );
            for platform in Platform::ALL {
                let p = &stats.platforms[platform.index()];
                println!(
                    "  {:<9} d0 {:>7}  d1 {:>7}  d2 {:>7}  (generated {:>7})",
                    platform.abbrev(),
                    p.docs_at[0],
                    p.docs_at[1],
                    p.docs_at[2],
                    p.resources_generated
                );
            }
            for domain in Domain::ALL {
                let d = &stats.domains[domain.index()];
                println!(
                    "  {:<22} {:>2} experts, avg expertise {:.2}",
                    domain.label(),
                    d.experts,
                    d.avg_expertise
                );
            }
        }
        Command::Query { text, top, platforms, distance } => {
            let bench = Bench::prepare();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let finder = ExpertFinder::with_corpus(&bench.ds, bench.corpus, &config);
            let ranking = finder.rank_text(&text);
            if ranking.is_empty() {
                println!("no candidate shows evidence for {text:?}");
                return;
            }
            println!("top {} of {} candidates for {:?}:", top.min(ranking.len()), ranking.len(), text);
            for (rank, expert) in ranking.iter().take(top).enumerate() {
                println!(
                    "  {:>2}. {:<24} {:>10.2}",
                    rank + 1,
                    bench.ds.candidates()[expert.person.index()].name,
                    expert.score
                );
            }
        }
        Command::Bench { out } => {
            let bench = Bench::prepare();
            let report = BenchReport::measure(&bench);
            println!(
                "query latency p50 {:.2} ms / p99 {:.2} ms ({:.0} queries/sec)",
                report.query_p50_ms, report.query_p99_ms, report.queries_per_sec
            );
            println!(
                "α sweep ({} points × 3 distances): naive {:.0} ms, factored {:.0} ms — {:.1}× speedup",
                report.alpha_points,
                report.alpha_sweep_naive_ms,
                report.alpha_sweep_factored_ms,
                report.alpha_sweep_speedup
            );
            println!(
                "metrics: {} postings traversed, {} pruned, {} attribution cache hits / {} misses",
                report.metrics.counter(rightcrowd_obs::CounterId::PostingsTraversed),
                report.metrics.counter(rightcrowd_obs::CounterId::MaxscorePruned),
                report.metrics.counter(rightcrowd_obs::CounterId::AttributionCacheHits),
                report.metrics.counter(rightcrowd_obs::CounterId::AttributionCacheMisses),
            );
            match report.write_to(&out) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", out.display());
                    std::process::exit(1);
                }
            }
        }
        Command::Metrics { platforms, distance } => {
            let bench = Bench::prepare();
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            eprintln!(
                "[metrics] workload MAP {:.3} over {} queries",
                outcome.mean.map,
                outcome.per_query.len()
            );
            print!("{}", rightcrowd_obs::snapshot().render());
        }
        Command::Regress { baseline, current, threshold, warn_only } => {
            match regress::compare_files(&baseline, &current, threshold) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.any_regressed() && !warn_only {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        Command::Eval { platforms, distance } => {
            let bench = Bench::prepare();
            let ctx = bench.ctx();
            let config = FinderConfig::default()
                .with_platforms(platforms)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            let random = random_baseline(&bench.ds, 0x0E7A1);
            println!("{:<10} {}", "config", header4());
            println!("{:<10} {}", "random", row4(&random));
            println!(
                "{:<10} {}",
                format!("{} d{}", config.platforms.label(), distance.level()),
                row4(&outcome.mean)
            );
        }
    }
    if trace {
        let spans = rightcrowd_obs::snapshot().spans;
        if spans.is_empty() {
            eprintln!("[trace] no spans recorded (built with obs-off?)");
        } else {
            eprint!("{}", rightcrowd_obs::span::render_tree(&spans));
        }
    }
}
