//! Thin binary wrapper; see [`rightcrowd_bench::experiments::friends`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_friends
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::friends::run(&bench);
}
