//! Thin binary wrapper; see [`rightcrowd_bench::experiments::dataset`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_dataset
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::dataset::run(&bench);
}
