//! Runs every experiment binary in sequence (sharing one dataset build
//! would require in-process orchestration; each binary is cheap at the
//! default scale, and at paper scale the corpus analysis dominates once
//! per binary — use the individual binaries for iteration).
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_all
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 10] = [
    "exp_dataset",
    "exp_window",
    "exp_alpha",
    "exp_friends",
    "exp_distance",
    "exp_domains",
    "exp_users",
    "exp_delta",
    "exp_ablation",
    "exp_rankers",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    if !failures.is_empty() {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
