//! Runs every experiment in sequence, **in-process**, against one shared
//! bench: the dataset is generated and the corpus analysed exactly once,
//! then every experiment body borrows the same [`Bench`]. At paper scale
//! the corpus analysis dominates, so this is ~10× cheaper than launching
//! the individual binaries.
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_all
//! ```
//!
//! [`Bench`]: rightcrowd_bench::Bench

use rightcrowd_bench::{experiments, Bench};

fn main() {
    let bench = Bench::prepare();
    for (name, run) in experiments::ALL {
        println!("\n################ {name} ################");
        run(&bench);
    }
}
