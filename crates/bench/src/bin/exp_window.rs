//! Thin binary wrapper; see [`rightcrowd_bench::experiments::window`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_window
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::window::run(&bench);
}
