//! Thin binary wrapper; see [`rightcrowd_bench::experiments::rankers`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_rankers
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::rankers::run(&bench);
}
