//! Thin binary wrapper; see [`rightcrowd_bench::experiments::delta`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_delta
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::delta::run(&bench);
}
