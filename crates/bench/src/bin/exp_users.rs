//! Thin binary wrapper; see [`rightcrowd_bench::experiments::users`].
//!
//! ```sh
//! RIGHTCROWD_SCALE=paper cargo run --release -p rightcrowd-bench --bin exp_users
//! ```

fn main() {
    let bench = rightcrowd_bench::Bench::prepare();
    rightcrowd_bench::experiments::users::run(&bench);
}
