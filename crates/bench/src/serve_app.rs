//! The application layer of the resident daemon: what the endpoints of
//! `rc serve` *mean*, plugged into the `rightcrowd-serve` transport
//! through its `App` trait.
//!
//! The split keeps `rightcrowd-serve` dependency-free in both
//! directions: the transport knows nothing about corpora or rankers,
//! and this module knows nothing about sockets. [`RankApp`] owns the
//! warmed snapshot (dataset + corpus + attribution cache) and serves:
//!
//! * `POST /rank` — JSON `{"query": ..., "top": N}` →
//!   [`rank_response`], byte-identical to what an in-process
//!   [`rank_query`] caller would render ([`rc soak --connect`]
//!   re-verifies this bit-identity before every measured phase).
//! * `POST /explain` — the score decomposition of
//!   [`rightcrowd_core::rank_explained`], rendered by the same
//!   [`crate::explain_fmt::explain_json`] the CLI uses.
//! * `GET /metrics` — the live OpenMetrics exposition (chunked).
//! * `GET /healthz` — snapshot fingerprint, uptime, served count.
//! * `WS /rank` — text frames carrying the `POST /rank` request shape
//!   (or `{"queries": [...]}` batches), one result frame per query.
//!
//! Every ranked query runs under the same spans / latency histogram /
//! flight-ring / wide-event / profiler probes as the soak harness, so
//! `rc profile`, `rc flight` and the OpenMetrics endpoint describe a
//! *serving* process, not an idle one. Under `obs-off` the probes
//! compile out and the daemon just serves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rightcrowd_core::ranker::rank_query;
use rightcrowd_core::{
    rank_explained, AnalysisPipeline, Attribution, FinderConfig, RankedExpert,
};
use rightcrowd_obs::{HistId, QueryRecord, WideEvent, WideEventLog};
use rightcrowd_serve::http::json_escape;
use rightcrowd_serve::{App, Request, Response};

use crate::regress::{parse_json, Json};
use crate::runner::{Bench, SnapshotLoad};
use crate::soak::build_info;

/// Wide-event log capacities (same cohort sizes as the soak harness).
const WIDE_RESERVOIR: usize = 256;
const WIDE_TAIL: usize = 64;

/// Most experts one request may ask for.
const MAX_TOP: usize = 1000;

/// Most queries one WebSocket batch frame may carry.
const MAX_BATCH: usize = 256;

/// FNV-1a over `bytes` — query ids for ad-hoc HTTP queries, and the
/// snapshot fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Milliseconds since the Unix epoch (0 when the clock is broken).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Analyses `text`, ranks the candidates, and renders the wire JSON.
/// This is THE `/rank` response path — the daemon serves its output
/// verbatim, and the `rc soak --connect` bit-identity check calls the
/// same function in-process, so the two cannot drift apart.
pub fn rank_response(
    bench: &Bench,
    attribution: &Attribution,
    config: &FinderConfig,
    text: &str,
    top: usize,
) -> (String, Vec<RankedExpert>) {
    let pipeline = AnalysisPipeline::new(bench.ds.kb());
    let query = pipeline.analyze_query(text);
    let ranking =
        rank_query(&bench.corpus, attribution, config, &query, bench.ds.candidates().len());

    let candidates = bench.ds.candidates();
    let experts: Vec<Json> = ranking
        .iter()
        .take(top.min(MAX_TOP))
        .enumerate()
        .map(|(i, expert)| {
            let mut row = BTreeMap::new();
            row.insert("rank".to_owned(), Json::Num((i + 1) as f64));
            row.insert("person".to_owned(), Json::Num(f64::from(expert.person.0)));
            row.insert(
                "name".to_owned(),
                Json::Str(candidates[expert.person.index()].name.clone()),
            );
            row.insert("score".to_owned(), Json::Num(expert.score));
            Json::Obj(row)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("query".to_owned(), Json::Str(text.to_owned()));
    doc.insert("count".to_owned(), Json::Num(ranking.len() as f64));
    doc.insert("experts".to_owned(), Json::Arr(experts));
    (Json::Obj(doc).render(), ranking)
}

/// One parsed rank/explain request body.
struct RankRequest {
    queries: Vec<String>,
    candidate: Option<String>,
    top: usize,
}

/// Parses `{"query": ...}` or `{"queries": [...]}` with optional `top`
/// and `candidate`. Every malformed shape is a rendered error, never a
/// panic — this is peer-controlled input.
fn parse_rank_request(body: &[u8]) -> Result<RankRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_owned())?;
    let doc = parse_json(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let mut queries = Vec::new();
    match (doc.get("query"), doc.get("queries")) {
        (Some(Json::Str(q)), None) => queries.push(q.clone()),
        (None, Some(Json::Arr(items))) => {
            if items.len() > MAX_BATCH {
                return Err(format!("batch of {} queries over the {MAX_BATCH} cap", items.len()));
            }
            for item in items {
                match item {
                    Json::Str(q) => queries.push(q.clone()),
                    other => return Err(format!("\"queries\" items must be strings, got {other:?}")),
                }
            }
        }
        (Some(_), None) => return Err("\"query\" must be a string".to_owned()),
        (None, Some(_)) => return Err("\"queries\" must be an array of strings".to_owned()),
        (Some(_), Some(_)) => return Err("give \"query\" or \"queries\", not both".to_owned()),
        (None, None) => return Err("missing \"query\" (or \"queries\") key".to_owned()),
    }
    if queries.iter().any(String::is_empty) {
        return Err("queries must be non-empty".to_owned());
    }
    let top = match doc.get("top") {
        None => 10,
        Some(t) => match t.as_f64() {
            Some(n) if n >= 1.0 && n <= MAX_TOP as f64 && n.fract() == 0.0 => n as usize,
            _ => return Err(format!("\"top\" must be an integer in 1..={MAX_TOP}")),
        },
    };
    let candidate = match doc.get("candidate") {
        None | Some(Json::Null) => None,
        Some(Json::Str(name)) => Some(name.clone()),
        Some(_) => return Err("\"candidate\" must be a string".to_owned()),
    };
    Ok(RankRequest { queries, candidate, top })
}

/// A 4xx JSON error body.
fn bad_request(why: &str) -> Response {
    Response::json(400, format!("{{\"error\": {}}}", json_escape(why)))
}

/// The resident application: a warmed snapshot plus everything the
/// endpoints need, shared read-only across the worker pool.
pub struct RankApp {
    bench: Bench,
    attribution: Arc<Attribution>,
    config: FinderConfig,
    fingerprint: String,
    snapshot_label: String,
    sharded: Option<bool>,
    mapped: Option<bool>,
    started: Instant,
    served: AtomicU64,
    wide: Mutex<WideEventLog>,
}

impl RankApp {
    /// Warms the app over a prepared bench: computes the shared
    /// attribution once (every request reuses it — the daemon's
    /// amortisation story) and fingerprints the snapshot for
    /// `/healthz`.
    pub fn new(bench: Bench, snapshot_label: String, load: Option<SnapshotLoad>) -> RankApp {
        let config = FinderConfig::default();
        let attribution = bench.ctx().attribution(&config);
        // On the mapped path the index is borrowed from `mmap(2)` pages
        // that may not be resident yet: fingerprint the snapshot by its
        // manifest digest (already verified against the sidecar at open
        // time — it attests the shard table and thus every shard's
        // bytes) instead of hashing corpus content, which would force a
        // full page-in on daemon boot.
        let fingerprint = match load {
            Some(l) if l.mapped => {
                let digest = l.manifest_digest.expect("mapped loads carry the manifest digest");
                format!("{digest:016x}")
            }
            _ => {
                let (persons, profiles, resources, containers) = bench.ds.graph().counts();
                let identity = format!(
                    "{}|{}|{}|{}|{}|{}|{}|{}",
                    crate::runner::scale_label(),
                    persons,
                    profiles,
                    resources,
                    containers,
                    bench.corpus.retained(),
                    bench.corpus.dropped_non_english(),
                    bench.ds.queries().len(),
                );
                format!("{:016x}", fnv1a(identity.as_bytes()))
            }
        };
        RankApp {
            bench,
            attribution,
            config,
            fingerprint,
            snapshot_label,
            sharded: load.map(|l| l.sharded),
            mapped: load.map(|l| l.mapped),
            started: Instant::now(),
            served: AtomicU64::new(0),
            wide: Mutex::new(WideEventLog::new(WIDE_RESERVOIR, WIDE_TAIL, 0x005E_12ED)),
        }
    }

    /// The snapshot fingerprint `/healthz` reports.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Queries served so far (HTTP + WebSocket).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Ranks one query under the full instrumentation stack and renders
    /// the wire body.
    fn rank_instrumented(&self, text: &str, top: usize) -> String {
        let _span = rightcrowd_obs::span!("serve.rank");
        let query_id = fnv1a(text.as_bytes());
        let _ = rightcrowd_index::take_traversal_stats();
        // Tag profiler samples with the query id so `rc profile` style
        // CPU attribution works against the daemon too.
        let _cpu = rightcrowd_obs::prof::query_scope(query_id);
        let one = Instant::now();
        let (body, ranking) =
            rank_response(&self.bench, &self.attribution, &self.config, text, top);
        let elapsed = one.elapsed();
        let stats = rightcrowd_index::take_traversal_stats();
        self.served.fetch_add(1, Ordering::Relaxed);
        rightcrowd_obs::record(HistId::QueryLatency, elapsed);
        let record = QueryRecord {
            query_id,
            label: text.to_owned(),
            domain: "http".to_owned(),
            alpha: self.config.alpha,
            max_distance: self.config.max_distance.level() as u8,
            window: self.config.window.label(),
            latency_ns: elapsed.as_nanos() as u64,
            postings_traversed: stats.traversed,
            maxscore_admitted: stats.admitted,
            maxscore_pruned: stats.pruned,
            top_candidates: ranking.first().map(|r| (r.person.0, r.score)).into_iter().collect(),
            cpu_est_us: 0,
        };
        rightcrowd_obs::flight::record(record.clone());
        let event = WideEvent {
            unix_ms: unix_ms(),
            thread: 0,
            record,
            blocks_total: stats.blocks_total,
            blocks_skipped: stats.blocks_skipped,
            theta: ranking.last().map_or(0.0, |r| r.score),
            error: None,
        };
        self.wide.lock().expect("wide-event log poisoned").offer(event);
        body
    }

    /// `POST /explain`: the full score decomposition.
    fn explain(&self, req: &RankRequest) -> Response {
        let text = &req.queries[0];
        let _span = rightcrowd_obs::span!("serve.explain");
        let pipeline = AnalysisPipeline::new(self.bench.ds.kb());
        let query = pipeline.analyze_query(text);
        let explained = rank_explained(
            &self.bench.corpus,
            &self.attribution,
            &self.config,
            &query,
            self.bench.ds.candidates().len(),
        );
        self.served.fetch_add(1, Ordering::Relaxed);
        let names: Vec<&str> =
            self.bench.ds.candidates().iter().map(|p| p.name.as_str()).collect();
        Response::json(
            200,
            crate::explain_fmt::explain_json(
                &explained,
                &self.config,
                &names,
                req.candidate.as_deref(),
                req.top,
            ),
        )
    }

    /// `GET /healthz`: identity + liveness.
    fn healthz(&self) -> Response {
        let mut doc = BTreeMap::new();
        doc.insert("status".to_owned(), Json::Str("ok".to_owned()));
        doc.insert("scale".to_owned(), Json::Str(crate::runner::scale_label()));
        doc.insert("snapshot".to_owned(), Json::Str(self.snapshot_label.clone()));
        doc.insert(
            "sharded".to_owned(),
            self.sharded.map_or(Json::Null, Json::Bool),
        );
        doc.insert(
            "mapped".to_owned(),
            self.mapped.map_or(Json::Null, Json::Bool),
        );
        doc.insert("fingerprint".to_owned(), Json::Str(self.fingerprint.clone()));
        doc.insert("git_rev".to_owned(), Json::Str(crate::report::git_rev()));
        doc.insert("features".to_owned(), Json::Str(crate::soak::build_features()));
        doc.insert(
            "uptime_s".to_owned(),
            Json::Num(self.started.elapsed().as_secs_f64()),
        );
        doc.insert("served".to_owned(), Json::Num(self.served() as f64));
        Response::json(200, Json::Obj(doc).render())
    }

    /// `GET /metrics`: the live OpenMetrics exposition, streamed
    /// chunked (the counter registry grows with uptime).
    fn metrics(&self) -> Response {
        let text = rightcrowd_obs::openmetrics_live(&build_info());
        Response {
            status: 200,
            content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8".into(),
            body: text.into_bytes(),
            headers: Vec::new(),
            chunked: true,
        }
    }

    /// Flushes the wide-event log to `dir/SERVE_<scale>.events.jsonl` —
    /// the drain-time half of the graceful-shutdown contract.
    pub fn flush_events(&self, dir: &std::path::Path) -> Result<std::path::PathBuf, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let wide = self.wide.lock().expect("wide-event log poisoned");
        let path = dir.join(format!("SERVE_{}.events.jsonl", crate::runner::scale_label()));
        let jsonl = wide.to_jsonl();
        // An empty log still leaves a marker line, so CI's `test -s`
        // check distinguishes "flushed nothing served" from "lost".
        let payload = if jsonl.is_empty() {
            format!(
                "{{\"kept\": \"none\", \"seen\": {}, \"note\": \"no queries served\"}}\n",
                wide.seen()
            )
        } else {
            jsonl
        };
        std::fs::write(&path, payload)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }
}

impl App for RankApp {
    fn handle(&self, req: &Request) -> Response {
        let _span = rightcrowd_obs::span!("serve.request");
        match (req.method.as_str(), req.path()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics(),
            ("POST", "/rank") => match parse_rank_request(&req.body) {
                Ok(rank) if rank.queries.len() == 1 => {
                    Response::json(200, self.rank_instrumented(&rank.queries[0], rank.top))
                }
                Ok(_) => bad_request("POST /rank takes one \"query\"; batches go over WS /rank"),
                Err(why) => bad_request(&why),
            },
            ("POST", "/explain") => match parse_rank_request(&req.body) {
                Ok(rank) if rank.queries.len() == 1 => self.explain(&rank),
                Ok(_) => bad_request("POST /explain takes one \"query\""),
                Err(why) => bad_request(&why),
            },
            (_, "/healthz" | "/metrics" | "/explain" | "/rank") => Response::json(
                405,
                "{\"error\": \"wrong method for this endpoint\"}".to_owned(),
            ),
            _ => Response::json(404, "{\"error\": \"no such endpoint\"}".to_owned()),
        }
    }

    fn upgrade_allowed(&self, path: &str) -> bool {
        path == "/rank"
    }

    fn ws_message(&self, text: &str) -> Vec<String> {
        match parse_rank_request(text.as_bytes()) {
            Ok(rank) => rank
                .queries
                .iter()
                .map(|q| self.rank_instrumented(q, rank.top))
                .collect(),
            Err(why) => vec![format!("{{\"error\": {}}}", json_escape(&why))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> RankApp {
        let ds = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
        let bench = Bench { ds, corpus, generate_ms: 0.0, analyze_ms: 0.0 };
        RankApp::new(bench, "in-memory".to_owned(), None)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            target: path.into(),
            version: "HTTP/1.1".into(),
            headers: vec![("Content-Length".into(), body.len().to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            target: path.into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn rank_endpoint_is_bit_identical_to_the_shared_renderer() {
        let app = tiny_app();
        let text = &app.bench.ds.queries()[0].text.clone();
        let (expected, _) =
            rank_response(&app.bench, &app.attribution, &app.config, text, 10);
        let body = format!("{{\"query\": {}, \"top\": 10}}", json_escape(text));
        let resp = app.handle(&post("/rank", &body));
        assert_eq!(resp.status, 200);
        assert_eq!(String::from_utf8(resp.body).unwrap(), expected);

        // The response parses and carries the contract keys.
        let doc = parse_json(&expected).unwrap();
        assert_eq!(doc.get("query"), Some(&Json::Str(text.clone())));
        assert!(doc.get("count").and_then(Json::as_f64).is_some());
        assert!(matches!(doc.get("experts"), Some(Json::Arr(_))));
    }

    #[test]
    fn websocket_batches_yield_one_frame_per_query_in_order() {
        let app = tiny_app();
        let queries: Vec<String> =
            app.bench.ds.queries().iter().take(3).map(|q| q.text.clone()).collect();
        let body = format!(
            "{{\"queries\": [{}], \"top\": 3}}",
            queries.iter().map(|q| json_escape(q)).collect::<Vec<_>>().join(", ")
        );
        let frames = app.ws_message(&body);
        assert_eq!(frames.len(), queries.len());
        for (frame, text) in frames.iter().zip(&queries) {
            let (expected, _) =
                rank_response(&app.bench, &app.attribution, &app.config, text, 3);
            assert_eq!(frame, &expected, "frame for {text:?}");
        }
    }

    #[test]
    fn explain_endpoint_matches_the_cli_renderer() {
        let app = tiny_app();
        let text = app.bench.ds.queries()[0].text.clone();
        let body = format!("{{\"query\": {}, \"top\": 3}}", json_escape(&text));
        let resp = app.handle(&post("/explain", &body));
        assert_eq!(resp.status, 200);
        let rendered = String::from_utf8(resp.body).unwrap();
        assert!(rendered.contains("\"experts\""), "{rendered}");
        assert!(rendered.contains("\"alpha\""), "{rendered}");
    }

    #[test]
    fn healthz_reports_identity_and_progress() {
        let app = tiny_app();
        let resp = app.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        let doc = parse_json(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("status"), Some(&Json::Str("ok".to_owned())));
        assert_eq!(
            doc.get("fingerprint"),
            Some(&Json::Str(app.fingerprint().to_owned()))
        );
        assert_eq!(doc.get("served").and_then(Json::as_f64), Some(0.0));

        // Serving a query moves the counter.
        let text = app.bench.ds.queries()[0].text.clone();
        let body = format!("{{\"query\": {}}}", json_escape(&text));
        assert_eq!(app.handle(&post("/rank", &body)).status, 200);
        assert_eq!(app.served(), 1);
    }

    #[test]
    fn mapped_loads_fingerprint_by_manifest_digest() {
        // A mapped open hands the app the manifest digest, and the app
        // must use it verbatim — hashing corpus content instead would
        // force a full page-in of the borrowed index on daemon boot.
        let make = |load: Option<SnapshotLoad>| {
            let ds = rightcrowd_synth::SyntheticDataset::generate(
                &rightcrowd_synth::DatasetConfig::tiny(),
            );
            let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
            let bench = Bench { ds, corpus, generate_ms: 0.0, analyze_ms: 0.0 };
            RankApp::new(bench, "snap".to_owned(), load)
        };
        let mapped_load = SnapshotLoad {
            sharded: true,
            mapped: true,
            shard_count: 2,
            bytes: 1024,
            manifest_digest: Some(0xDEAD_BEEF_0BAD_F00D),
            elapsed_ms: 0.1,
        };
        let app = make(Some(mapped_load));
        assert_eq!(app.fingerprint(), "deadbeef0badf00d");
        let doc = parse_json(
            std::str::from_utf8(&app.handle(&get("/healthz")).body).unwrap(),
        )
        .unwrap();
        assert_eq!(doc.get("mapped"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("fingerprint"),
            Some(&Json::Str("deadbeef0badf00d".to_owned()))
        );
        // A streamed sharded load keeps the identity-hash fingerprint.
        let streamed = make(Some(SnapshotLoad {
            mapped: false,
            manifest_digest: Some(0xDEAD_BEEF_0BAD_F00D),
            ..mapped_load
        }));
        assert_ne!(streamed.fingerprint(), "deadbeef0badf00d");
        let doc = parse_json(
            std::str::from_utf8(&streamed.handle(&get("/healthz")).body).unwrap(),
        )
        .unwrap();
        assert_eq!(doc.get("mapped"), Some(&Json::Bool(false)));
    }

    #[test]
    fn metrics_endpoint_survives_the_validator() {
        let app = tiny_app();
        let resp = app.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        assert!(resp.chunked, "the exposition streams chunked");
        let text = String::from_utf8(resp.body).unwrap();
        rightcrowd_obs::validate_openmetrics(&text).expect("live exposition must validate");
    }

    #[test]
    fn malformed_bodies_answer_400_and_unknown_paths_404() {
        let app = tiny_app();
        for body in [
            "not json",
            "{}",
            "{\"query\": 7}",
            "{\"query\": \"\"}",
            "{\"query\": \"x\", \"queries\": [\"y\"]}",
            "{\"query\": \"x\", \"top\": 0}",
            "{\"query\": \"x\", \"top\": 1e9}",
            "{\"queries\": \"not an array\"}",
        ] {
            let resp = app.handle(&post("/rank", body));
            assert_eq!(resp.status, 400, "{body}");
            assert!(String::from_utf8(resp.body).unwrap().contains("\"error\""), "{body}");
        }
        assert_eq!(app.handle(&get("/nowhere")).status, 404);
        assert_eq!(app.handle(&get("/rank")).status, 405);
        assert_eq!(app.handle(&post("/healthz", "{}")).status, 405);
        // WS upgrades are only allowed on /rank.
        assert!(app.upgrade_allowed("/rank"));
        assert!(!app.upgrade_allowed("/healthz"));
    }

    #[test]
    fn flush_events_always_leaves_a_non_empty_artifact() {
        let app = tiny_app();
        let dir = std::env::temp_dir().join(format!("rc-serve-app-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Nothing served yet: the marker line keeps the file non-empty.
        let path = app.flush_events(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty());
        assert!(text.contains("no queries served"), "{text}");

        if rightcrowd_obs::PROBES_ENABLED {
            let text_q = app.bench.ds.queries()[0].text.clone();
            let body = format!("{{\"query\": {}}}", json_escape(&text_q));
            assert_eq!(app.handle(&post("/rank", &body)).status, 200);
            let path = app.flush_events(&dir).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.lines().count() >= 1 && !text.contains("no queries served"), "{text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
