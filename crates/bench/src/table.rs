//! Plain-text table formatting for the experiment binaries.

use rightcrowd_metrics::MeanEval;

/// Formats a metric quadruple.
pub fn row4(m: &MeanEval) -> String {
    format!(
        "{:>7.4} {:>7.4} {:>7.4} {:>8.4}",
        m.map, m.mrr, m.ndcg, m.ndcg10
    )
}

/// Formats a paper reference quadruple.
pub fn paper_row4(r: crate::paper::Row4) -> String {
    format!("{:>7.4} {:>7.4} {:>7.4} {:>8.4}", r.0, r.1, r.2, r.3)
}

/// The standard metric header.
pub fn header4() -> &'static str {
    "    MAP     MRR    NDCG  NDCG@10"
}

/// Formats an 11-point interpolated precision curve.
pub fn p11(curve: &[f64; 11]) -> String {
    curve
        .iter()
        .map(|p| format!("{p:.3}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a DCG curve at cutoffs 5/10/15/20.
pub fn dcg_curve(curve: &[f64; 4]) -> String {
    curve
        .iter()
        .map(|d| format!("{d:>7.1}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// A section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} {}", "=".repeat(66usize.saturating_sub(title.len())));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_stable_width() {
        let m = MeanEval { map: 0.1234, mrr: 1.0, ndcg: 0.5, ndcg10: 0.25, ..Default::default() };
        assert_eq!(row4(&m), " 0.1234  1.0000  0.5000   0.2500");
        assert_eq!(row4(&m).len(), header4().len());
        assert_eq!(paper_row4((0.1234, 1.0, 0.5, 0.25)), row4(&m));
    }

    #[test]
    fn curves_format() {
        let c = p11(&[0.0; 11]);
        assert_eq!(c.split(' ').count(), 11);
        let d = dcg_curve(&[1.0, 2.0, 3.0, 4.5]);
        assert!(d.contains("4.5"));
    }
}
