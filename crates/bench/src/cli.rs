//! Argument parsing for the `rc` command-line tool.
//!
//! Hand-rolled (the workspace's dependency policy keeps external crates to
//! the algorithmic minimum); supports every subcommand of
//! `src/bin/rc.rs` with long-flag options.

use rightcrowd_types::{Distance, Platform, PlatformMask};

/// A parsed `rc` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `rc query "<text>" [--top N] [--platform P] [--distance D]`
    Query {
        /// The free-form expertise need.
        text: String,
        /// How many experts to print.
        top: usize,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc stats` — print dataset statistics.
    Stats,
    /// `rc eval [--platform P] [--distance D]` — run the workload and
    /// print the metric row.
    Eval {
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc bench [--out DIR] [--snapshot FILE.rcs] [--shards N]` —
    /// measure the retrieval hot path (cold build *and* the store
    /// save → load round trip, including the sharded load-scaling curve)
    /// and write a `BENCH_<scale>.json` snapshot.
    Bench {
        /// Directory the JSON snapshot is written into.
        out: std::path::PathBuf,
        /// Where the measured store container is kept (a temp file is
        /// used — and removed — when absent). With `--shards` this is a
        /// sharded-snapshot *directory*.
        snapshot: Option<std::path::PathBuf>,
        /// Shard count for the sharded load-scaling measurement
        /// (default 4).
        shards: Option<usize>,
    },
    /// `rc save --snapshot FILE.rcs [--shards N] [--threads N]
    /// [--layout streamed|mapped]` — build the corpus at the selected
    /// scale and serialise it as a store container (monolithic file, or
    /// a sharded directory with `--shards`). `--layout mapped` writes
    /// `RCSHRD02` fixed-layout shards plus validity sidecars, the format
    /// every consumer opens zero-copy via `mmap(2)`; it implies
    /// `--shards` (default 4).
    Save {
        /// Where the container is written (a directory with `--shards`).
        snapshot: std::path::PathBuf,
        /// Split into this many per-term-range shards instead of one
        /// monolithic file.
        shards: Option<usize>,
        /// Worker threads for the sharded encode.
        threads: Option<usize>,
        /// Shard encoding: streamed (`RCSHRD01`, the default) or mapped
        /// (`RCSHRD02` + sidecars, opened zero-copy).
        layout: rightcrowd_store::SnapshotLayout,
    },
    /// `rc load --snapshot PATH [--threads N]` — verify + reconstruct a
    /// store container (monolithic file or sharded directory, detected by
    /// the manifest) and print what it holds.
    Load {
        /// The container to load: a `.rcs` file or a sharded directory.
        snapshot: std::path::PathBuf,
        /// Worker threads for the sharded decode.
        threads: Option<usize>,
    },
    /// `rc metrics [--platform P] [--distance D]` — run the workload once
    /// and print the observability registry (counters, histograms, span
    /// tree).
    Metrics {
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc explain "<text>" [--candidate NAME] [--top K] [--json]
    /// [--platform P] [--distance D]` — rank the query with the full score
    /// decomposition and print why each candidate landed where they did.
    Explain {
        /// The free-form expertise need.
        text: String,
        /// Restrict the breakdown to candidates whose name contains this
        /// (case-insensitive) needle.
        candidate: Option<String>,
        /// How many experts to break down.
        top: usize,
        /// Emit the decomposition as JSON instead of tables.
        json: bool,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
        /// Serve from this store container instead of rebuilding (cold
        /// build + cache when the file is absent).
        snapshot: Option<std::path::PathBuf>,
    },
    /// `rc flight [--slowest K] [--capacity N] [--platform P]
    /// [--distance D]` — run the workload with the flight recorder on and
    /// print the retained records (all of them, or the K slowest).
    Flight {
        /// Print only the K slowest retained records.
        slowest: Option<usize>,
        /// Replace the global recorder with an N-record ring before the
        /// run (default 256).
        capacity: Option<usize>,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
        /// Serve from this store container instead of rebuilding (cold
        /// build + cache when the file is absent).
        snapshot: Option<std::path::PathBuf>,
    },
    /// `rc soak [--out DIR] [--snapshot PATH] [--connect ADDR]
    /// [--duration 30s] [--queries N] [--threads N] [--tick-ms MS]
    /// [--watch]` — the closed-loop load harness: a telemetry-on thread
    /// ladder plus a telemetry-off baseline, writing `SOAK_<scale>.json`
    /// (per-tick series), the wide-event query log, a validated
    /// OpenMetrics exposition, and merging the headline keys into
    /// `BENCH_<scale>.json`. With `--connect` the same ladder drives a
    /// running `rc serve` daemon over real TCP instead of in-process
    /// calls, merging `serve_qps_t{N}` / `serve_p50/p99_under_load_t{N}_ms`.
    Soak {
        /// Directory the artifacts are written into.
        out: std::path::PathBuf,
        /// Serve from this store container instead of rebuilding.
        snapshot: Option<std::path::PathBuf>,
        /// Drive a running `rc serve` daemon at this address over HTTP
        /// instead of ranking in-process.
        connect: Option<String>,
        /// Wall-clock length of each measured phase (ms).
        duration_ms: u64,
        /// Stop each phase early after this many queries.
        queries: Option<u64>,
        /// Cap the thread ladder (default rungs 1/2/4/8).
        threads: Option<usize>,
        /// Sampler tick: one series row per this many ms.
        tick_ms: u64,
        /// Print a live status line per tick.
        watch: bool,
        /// Run the sampling profiler over the telemetry-on ladder and
        /// fold CPU estimates into the wide-event log.
        profile: bool,
    },
    /// `rc serve --snapshot PATH [--addr HOST:PORT] [--threads N]
    /// [--out DIR]` — promote the snapshot to a resident query daemon:
    /// warm once, then serve `POST /rank`, `POST /explain`,
    /// `GET /metrics`, `GET /healthz` and `WS /rank` until SIGTERM,
    /// which drains in-flight queries, flushes the wide-event log into
    /// `--out`, and exits 0.
    Serve {
        /// The container to warm from: a `.rcs` file or a sharded
        /// directory (cold build + cache when absent).
        snapshot: std::path::PathBuf,
        /// Listen address (default 127.0.0.1:7700).
        addr: String,
        /// Worker threads (default: available parallelism).
        threads: Option<usize>,
        /// Directory the drain-time wide-event log is flushed into.
        out: std::path::PathBuf,
    },
    /// `rc profile <bench|soak> [--folded PATH] [--svg PATH] [--hz N]
    /// [--out DIR] [--snapshot PATH] [--duration 30s] [--threads N]` —
    /// run the workload under the in-process sampling profiler and write
    /// collapsed stacks (Brendan Gregg folded format) plus a
    /// self-contained flamegraph SVG, folding per-query CPU estimates
    /// into the flight recorder and merging `profile_*` keys into
    /// `BENCH_<scale>.json`.
    Profile {
        /// What to profile: the bench per-query workload loop, or the
        /// closed-loop soak ladder.
        mode: ProfileMode,
        /// Directory the artifacts (and the merged bench JSON) live in.
        out: std::path::PathBuf,
        /// Serve from this store container instead of rebuilding.
        snapshot: Option<std::path::PathBuf>,
        /// Where the folded stacks go (default `<out>/profile.folded`).
        folded: Option<std::path::PathBuf>,
        /// Where the flamegraph SVG goes (default `<out>/flamegraph.svg`).
        svg: Option<std::path::PathBuf>,
        /// Sampling frequency (default ~1003 Hz: a prime 997 µs period).
        hz: Option<u32>,
        /// Wall-clock length of the profiled soak phase (ms; soak mode).
        duration_ms: u64,
        /// Worker threads for the profiled soak phase (soak mode).
        threads: Option<usize>,
    },
    /// `rc spans [--json]` — run the workload once and print the
    /// aggregated span tree (or its JSON form) without a full bench.
    Spans {
        /// Emit the span table as JSON instead of the indented tree.
        json: bool,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc expose [--out FILE] [--check FILE]` — run the workload and
    /// write the live metric registry as OpenMetrics text, and/or
    /// validate an exposition file.
    Expose {
        /// Write the OpenMetrics exposition here.
        out: Option<std::path::PathBuf>,
        /// Validate this exposition file instead of — or after — writing.
        check: Option<std::path::PathBuf>,
    },
    /// `rc trace [--chrome OUT.json] [--check FILE.json]` — run the
    /// workload and export spans + flight records as Chrome trace-event
    /// JSON (chrome://tracing / Perfetto), and/or validate a trace file.
    Trace {
        /// Write the Chrome trace-event JSON here.
        chrome: Option<std::path::PathBuf>,
        /// Validate this trace file (well-formed JSON with a non-empty
        /// `traceEvents` array) instead of — or after — exporting.
        check: Option<std::path::PathBuf>,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc regress <baseline.json> <current.json> [--threshold F]
    /// [--warn-only]` — compare two bench snapshots and fail on latency
    /// or counter-invariant regressions.
    Regress {
        /// The committed baseline snapshot.
        baseline: std::path::PathBuf,
        /// The freshly measured snapshot.
        current: std::path::PathBuf,
        /// Relative regression threshold (0.2 = +20%).
        threshold: f64,
        /// Report regressions without a failing exit code.
        warn_only: bool,
        /// Also integrity-verify this store container (typed error →
        /// exit 1), so CI gates on snapshot health alongside latency.
        snapshot: Option<std::path::PathBuf>,
    },
    /// `rc help` or parse failure fallback.
    Help,
}

/// What `rc profile` drives while the sampler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// The bench-style per-query workload loop (profiler on vs off, so
    /// the run also measures `profile_overhead_frac`).
    Bench,
    /// One closed-loop soak phase under load.
    Soak,
}

/// A fully parsed `rc` invocation: the subcommand plus global flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand to run.
    pub command: Command,
    /// `--trace`: print the span tree on exit.
    pub trace: bool,
    /// `--scale`: overrides `RIGHTCROWD_SCALE` for this run.
    pub scale: Option<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage string printed by `rc help`.
pub const USAGE: &str = "\
rc — expert finding in (simulated) social networks

USAGE:
  rc query \"<expertise need>\" [--top N] [--platform all|fb|tw|li] [--distance 0|1|2]
  rc explain \"<expertise need>\" [--candidate NAME] [--top K] [--json] [--snapshot FILE.rcs]
                               [--platform all|fb|tw|li] [--distance 0|1|2]
  rc eval [--platform all|fb|tw|li] [--distance 0|1|2]
  rc bench [--out DIR] [--snapshot PATH] [--shards N]
  rc save --snapshot PATH [--shards N] [--threads N] [--layout streamed|mapped]
  rc load --snapshot PATH [--threads N]
  rc flight [--slowest K] [--capacity N] [--snapshot FILE.rcs] [--platform all|fb|tw|li] [--distance 0|1|2]
  rc soak [--out DIR] [--snapshot PATH] [--connect HOST:PORT] [--duration 30s] [--queries N]
          [--threads N] [--tick-ms MS] [--watch] [--profile]
  rc serve --snapshot PATH [--addr HOST:PORT] [--threads N] [--out DIR]
  rc profile bench|soak [--folded PATH] [--svg PATH] [--hz N] [--out DIR]
             [--snapshot PATH] [--duration 30s] [--threads N]
  rc spans [--json] [--platform all|fb|tw|li] [--distance 0|1|2]
  rc expose [--out FILE.openmetrics] [--check FILE.openmetrics]
  rc trace [--chrome OUT.json] [--check FILE.json]
  rc metrics [--platform all|fb|tw|li] [--distance 0|1|2]
  rc regress <baseline.json> <current.json> [--threshold F] [--warn-only] [--snapshot FILE.rcs]
  rc stats
  rc help

SOAK (closed-loop load):
  rc soak runs N worker threads over one shared corpus with a Zipf-skewed
  query mix, walking a 1/2/4/8 thread ladder (capped by --threads) plus a
  telemetry-off baseline. It writes SOAK_<scale>.json (per-tick series),
  SOAK_<scale>.events.jsonl (the tail-sampled wide-event query log) and
  SOAK_<scale>.openmetrics (validated exposition) into --out, and merges
  qps_t{1,2,4,8}, p50/p99_under_load_t{N}_ms, soak_telemetry_overhead_frac
  and rss_peak_bytes into BENCH_<scale>.json for `rc regress` to gate.
  --duration accepts 500ms / 30s / 2m / plain seconds.

SERVE (resident query daemon):
  rc serve warms the snapshot once and answers over a zero-dependency
  HTTP/1.1 + WebSocket front end until SIGTERM/SIGINT, which drains
  in-flight queries, flushes SERVE_<scale>.events.jsonl into --out, and
  exits 0. `rc soak --connect HOST:PORT` replays the soak ladder against
  a running daemon over real TCP — after checking that served responses
  are byte-identical to in-process ranking — and merges serve_qps_t{N}
  and serve_p50/p99_under_load_t{N}_ms into BENCH_<scale>.json.

PROFILE (in-process sampling profiler):
  rc profile runs the workload with a sampler thread snapshotting every
  instrumented thread's live span stack on a prime ~997 µs interval (no
  ptrace, no perf, no external tools). `bench` mode replays the query
  workload twice — profiler off then on — so it also measures
  profile_overhead_frac; `soak` mode profiles one closed-loop load phase.
  Both write collapsed stacks (--folded, default <out>/profile.folded)
  and a self-contained flamegraph SVG (--svg, default
  <out>/flamegraph.svg), fold per-query CPU estimates into the flight
  recorder (`rc flight` / `rc explain` show cpu_ms), and merge
  profile_samples, profile_overhead_frac and the top-5 self-time spans
  into BENCH_<scale>.json for `rc regress` to gate. `rc soak --profile`
  samples the telemetry-on ladder and stamps cpu_est_us into the
  wide-event log.

SNAPSHOTS (build once, query many):
  --snapshot PATH points at a rightcrowd-store container: a monolithic
  `.rcs` file, or a sharded directory (written by `rc save --shards N`,
  detected by its `manifest.rcm`). `explain` and `flight` serve from
  either layout when it exists (and cold-build + cache it when it does
  not); `bench` measures the save/load round trip against it; `regress`
  additionally verifies its checksums. Sharded snapshots decode with one
  CRC pass per byte (and in parallel under `--threads N`), so they load
  faster than the monolithic container. `rc save --layout mapped` writes
  fixed-layout shards plus `.rcv` validity sidecars: every consumer
  auto-detects them and opens zero-copy via mmap(2) — the first open
  streams one CRC pass to earn the sidecar, every later open verifies
  the sidecar and maps in microseconds, and the page cache shares one
  physical copy of the index across processes.

GLOBAL OPTIONS:
  --scale tiny|small|paper   dataset scale (overrides RIGHTCROWD_SCALE)
  --trace                    print the span tree after the command

ENVIRONMENT:
  RIGHTCROWD_SCALE   dataset scale: tiny | small (default) | paper
";

fn parse_platform(value: &str) -> Result<PlatformMask, ParseError> {
    match value.to_ascii_lowercase().as_str() {
        "all" => Ok(PlatformMask::ALL),
        "fb" | "facebook" => Ok(PlatformMask::only(Platform::Facebook)),
        "tw" | "twitter" => Ok(PlatformMask::only(Platform::Twitter)),
        "li" | "linkedin" => Ok(PlatformMask::only(Platform::LinkedIn)),
        other => Err(ParseError(format!("unknown platform {other:?} (use all|fb|tw|li)"))),
    }
}

fn parse_distance(value: &str) -> Result<Distance, ParseError> {
    value
        .parse::<usize>()
        .ok()
        .and_then(Distance::from_level)
        .ok_or_else(|| ParseError(format!("invalid distance {value:?} (use 0, 1 or 2)")))
}

/// Parses a human duration into milliseconds: `500ms`, `30s`, `2m`, or a
/// bare number of seconds. Zero is rejected — a zero-length soak phase
/// measures nothing.
fn parse_duration_ms(value: &str) -> Result<u64, ParseError> {
    let bad = || ParseError(format!("invalid duration {value:?} (use e.g. 500ms, 30s, 2m)"));
    let (digits, unit_ms) = if let Some(n) = value.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = value.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = value.strip_suffix('m') {
        (n, 60_000)
    } else {
        (value, 1_000)
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    let ms = n.checked_mul(unit_ms).ok_or_else(bad)?;
    if ms == 0 {
        return Err(ParseError("duration must be positive".into()));
    }
    Ok(ms)
}

/// Parses `rc` arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Invocation, ParseError> {
    let mut iter = args.iter();
    let Some(sub) = iter.next() else {
        return Ok(Invocation { command: Command::Help, trace: false, scale: None });
    };

    let mut top = 10usize;
    let mut platforms = PlatformMask::ALL;
    let mut distance = Distance::D2;
    let mut out = std::path::PathBuf::from(".");
    let mut threshold = 0.2f64;
    let mut warn_only = false;
    let mut trace = false;
    let mut scale: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut json = false;
    let mut slowest: Option<usize> = None;
    let mut chrome: Option<std::path::PathBuf> = None;
    let mut check: Option<std::path::PathBuf> = None;
    let mut snapshot: Option<std::path::PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut layout: Option<rightcrowd_store::SnapshotLayout> = None;
    let mut out_given = false;
    let mut duration_ms = 30_000u64;
    let mut queries: Option<u64> = None;
    let mut tick_ms = 1_000u64;
    let mut watch = false;
    let mut capacity: Option<usize> = None;
    let mut folded: Option<std::path::PathBuf> = None;
    let mut svg: Option<std::path::PathBuf> = None;
    let mut hz: Option<u32> = None;
    let mut profile = false;
    let mut addr: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--warn-only" => warn_only = true,
            "--json" => json = true,
            "--candidate" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--candidate needs a name".into()))?;
                candidate = Some(value.clone());
            }
            "--slowest" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--slowest needs a number".into()))?;
                let k: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --slowest value {value:?}")))?;
                if k == 0 {
                    return Err(ParseError("--slowest must be at least 1".into()));
                }
                slowest = Some(k);
            }
            "--chrome" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--chrome needs a path".into()))?;
                chrome = Some(std::path::PathBuf::from(value));
            }
            "--check" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--check needs a path".into()))?;
                check = Some(std::path::PathBuf::from(value));
            }
            "--snapshot" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--snapshot needs a path".into()))?;
                snapshot = Some(std::path::PathBuf::from(value));
            }
            "--shards" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--shards needs a number".into()))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --shards value {value:?}")))?;
                if n == 0 {
                    return Err(ParseError("--shards must be at least 1".into()));
                }
                shards = Some(n);
            }
            "--layout" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--layout needs streamed|mapped".into()))?;
                layout = Some(match value.as_str() {
                    "streamed" => rightcrowd_store::SnapshotLayout::Streamed,
                    "mapped" => rightcrowd_store::SnapshotLayout::Mapped,
                    other => {
                        return Err(ParseError(format!(
                            "unknown layout {other:?} (use streamed|mapped)"
                        )))
                    }
                });
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--threads needs a number".into()))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --threads value {value:?}")))?;
                if n == 0 {
                    return Err(ParseError("--threads must be at least 1".into()));
                }
                threads = Some(n);
            }
            "--scale" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--scale needs a value".into()))?;
                match value.as_str() {
                    "tiny" | "small" | "paper" => scale = Some(value.clone()),
                    other => {
                        return Err(ParseError(format!(
                            "unknown scale {other:?} (use tiny|small|paper)"
                        )))
                    }
                }
            }
            "--threshold" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--threshold needs a number".into()))?;
                threshold = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --threshold value {value:?}")))?;
                if !(threshold > 0.0 && threshold.is_finite()) {
                    return Err(ParseError("--threshold must be a positive number".into()));
                }
            }
            "--out" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--out needs a path".into()))?;
                out = std::path::PathBuf::from(value);
                out_given = true;
            }
            "--duration" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--duration needs a value (e.g. 30s)".into()))?;
                duration_ms = parse_duration_ms(value)?;
            }
            "--queries" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--queries needs a number".into()))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --queries value {value:?}")))?;
                if n == 0 {
                    return Err(ParseError("--queries must be at least 1".into()));
                }
                queries = Some(n);
            }
            "--tick-ms" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--tick-ms needs a number".into()))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --tick-ms value {value:?}")))?;
                if n == 0 {
                    return Err(ParseError("--tick-ms must be at least 1".into()));
                }
                tick_ms = n;
            }
            "--watch" => watch = true,
            "--profile" => profile = true,
            "--addr" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--addr needs host:port".into()))?;
                addr = Some(value.clone());
            }
            "--connect" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--connect needs host:port".into()))?;
                connect = Some(value.clone());
            }
            "--folded" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--folded needs a path".into()))?;
                folded = Some(std::path::PathBuf::from(value));
            }
            "--svg" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--svg needs a path".into()))?;
                svg = Some(std::path::PathBuf::from(value));
            }
            "--hz" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--hz needs a number".into()))?;
                let n: u32 = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --hz value {value:?}")))?;
                if n == 0 || n > 10_000 {
                    return Err(ParseError("--hz must be between 1 and 10000".into()));
                }
                hz = Some(n);
            }
            "--capacity" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--capacity needs a number".into()))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --capacity value {value:?}")))?;
                if n == 0 {
                    return Err(ParseError("--capacity must be at least 1".into()));
                }
                capacity = Some(n);
            }
            "--top" => {
                let value = iter.next().ok_or_else(|| ParseError("--top needs a number".into()))?;
                top = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --top value {value:?}")))?;
                if top == 0 {
                    return Err(ParseError("--top must be at least 1".into()));
                }
            }
            "--platform" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--platform needs a value".into()))?;
                platforms = parse_platform(value)?;
            }
            "--distance" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--distance needs a value".into()))?;
                distance = parse_distance(value)?;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown option {other:?}")));
            }
            _ => positional.push(arg),
        }
    }

    let command = match sub.as_str() {
        "query" => {
            let text = positional
                .first()
                .ok_or_else(|| ParseError("query needs the expertise need text".into()))?;
            Command::Query { text: (*text).clone(), top, platforms, distance }
        }
        "stats" => Command::Stats,
        "eval" => Command::Eval { platforms, distance },
        "bench" => Command::Bench { out, snapshot, shards },
        "save" => {
            let layout = layout.unwrap_or_default();
            // The mapped layout only exists sharded: without an explicit
            // count it gets the same default the bench harness measures.
            let shards = match (layout, shards) {
                (rightcrowd_store::SnapshotLayout::Mapped, None) => Some(4),
                (_, shards) => shards,
            };
            Command::Save {
                snapshot: snapshot
                    .ok_or_else(|| ParseError("save needs --snapshot <path>".into()))?,
                shards,
                threads,
                layout,
            }
        }
        "load" => Command::Load {
            snapshot: snapshot
                .ok_or_else(|| ParseError("load needs --snapshot <path>".into()))?,
            threads,
        },
        "explain" => {
            let text = positional
                .first()
                .ok_or_else(|| ParseError("explain needs the expertise need text".into()))?;
            Command::Explain {
                text: (*text).clone(),
                candidate,
                top,
                json,
                platforms,
                distance,
                snapshot,
            }
        }
        "flight" => Command::Flight { slowest, capacity, platforms, distance, snapshot },
        "soak" => {
            if connect.is_some() && snapshot.is_some() {
                return Err(ParseError(
                    "soak takes --snapshot (in-process) or --connect (daemon), not both; \
                     the daemon already owns the snapshot"
                        .into(),
                ));
            }
            Command::Soak {
                out,
                snapshot,
                connect,
                duration_ms,
                queries,
                threads,
                tick_ms,
                watch,
                profile,
            }
        }
        "serve" => Command::Serve {
            snapshot: snapshot
                .ok_or_else(|| ParseError("serve needs --snapshot <path>".into()))?,
            addr: addr.unwrap_or_else(|| "127.0.0.1:7700".to_owned()),
            threads,
            out: if out_given { out } else { std::path::PathBuf::from("target/perf") },
        },
        "profile" => {
            let mode = match positional.first().map(|s| s.as_str()) {
                Some("bench") => ProfileMode::Bench,
                Some("soak") => ProfileMode::Soak,
                Some(other) => {
                    return Err(ParseError(format!(
                        "unknown profile mode {other:?} (use bench or soak)"
                    )))
                }
                None => return Err(ParseError("profile needs a mode: bench or soak".into())),
            };
            Command::Profile { mode, out, snapshot, folded, svg, hz, duration_ms, threads }
        }
        "spans" => Command::Spans { json, platforms, distance },
        "expose" => {
            if !out_given && check.is_none() {
                return Err(ParseError(
                    "expose needs --out <file.openmetrics> and/or --check <file.openmetrics>"
                        .into(),
                ));
            }
            Command::Expose { out: out_given.then_some(out), check }
        }
        "trace" => {
            if chrome.is_none() && check.is_none() {
                return Err(ParseError(
                    "trace needs --chrome <out.json> and/or --check <file.json>".into(),
                ));
            }
            Command::Trace { chrome, check, platforms, distance }
        }
        "metrics" => Command::Metrics { platforms, distance },
        "regress" => {
            let [baseline, current] = positional.as_slice() else {
                return Err(ParseError(
                    "regress needs exactly two snapshot paths: <baseline.json> <current.json>"
                        .into(),
                ));
            };
            Command::Regress {
                baseline: std::path::PathBuf::from(baseline),
                current: std::path::PathBuf::from(current),
                threshold,
                warn_only,
                snapshot,
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ParseError(format!("unknown subcommand {other:?}"))),
    };
    Ok(Invocation { command, trace, scale })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The command of a successfully parsed invocation.
    fn cmd(v: &[&str]) -> Command {
        parse(&args(v)).unwrap().command
    }

    #[test]
    fn parses_query_with_defaults() {
        assert_eq!(
            cmd(&["query", "who knows php"]),
            Command::Query {
                text: "who knows php".into(),
                top: 10,
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
            }
        );
    }

    #[test]
    fn parses_query_with_options() {
        assert_eq!(
            cmd(&["query", "swimming", "--top", "3", "--platform", "tw", "--distance", "1"]),
            Command::Query {
                text: "swimming".into(),
                top: 3,
                platforms: PlatformMask::only(Platform::Twitter),
                distance: Distance::D1,
            }
        );
    }

    #[test]
    fn parses_eval_and_stats() {
        assert_eq!(
            cmd(&["eval", "--platform", "li"]),
            Command::Eval {
                platforms: PlatformMask::only(Platform::LinkedIn),
                distance: Distance::D2
            }
        );
        assert_eq!(cmd(&["stats"]), Command::Stats);
        assert_eq!(cmd(&[]), Command::Help);
        assert_eq!(cmd(&["help"]), Command::Help);
    }

    #[test]
    fn parses_bench() {
        assert_eq!(
            cmd(&["bench"]),
            Command::Bench { out: std::path::PathBuf::from("."), snapshot: None, shards: None }
        );
        assert_eq!(
            cmd(&["bench", "--out", "target/perf", "--snapshot", "target/perf/corpus.rcs"]),
            Command::Bench {
                out: std::path::PathBuf::from("target/perf"),
                snapshot: Some(std::path::PathBuf::from("target/perf/corpus.rcs")),
                shards: None,
            }
        );
        assert_eq!(
            cmd(&["bench", "--snapshot", "target/perf/corpus.shards", "--shards", "4"]),
            Command::Bench {
                out: std::path::PathBuf::from("."),
                snapshot: Some(std::path::PathBuf::from("target/perf/corpus.shards")),
                shards: Some(4),
            }
        );
        assert!(parse(&args(&["bench", "--out"])).is_err());
        assert!(parse(&args(&["bench", "--snapshot"])).is_err());
        assert!(parse(&args(&["bench", "--shards", "0"])).is_err());
    }

    #[test]
    fn parses_save_and_load() {
        assert_eq!(
            cmd(&["save", "--snapshot", "corpus.rcs"]),
            Command::Save {
                snapshot: std::path::PathBuf::from("corpus.rcs"),
                shards: None,
                threads: None,
                layout: rightcrowd_store::SnapshotLayout::Streamed,
            }
        );
        assert_eq!(
            cmd(&["save", "--snapshot", "corpus.shards", "--shards", "8", "--threads", "2"]),
            Command::Save {
                snapshot: std::path::PathBuf::from("corpus.shards"),
                shards: Some(8),
                threads: Some(2),
                layout: rightcrowd_store::SnapshotLayout::Streamed,
            }
        );
        // The mapped layout only exists sharded: bare --layout mapped
        // implies the default shard count.
        assert_eq!(
            cmd(&["save", "--snapshot", "corpus.shards", "--layout", "mapped"]),
            Command::Save {
                snapshot: std::path::PathBuf::from("corpus.shards"),
                shards: Some(4),
                threads: None,
                layout: rightcrowd_store::SnapshotLayout::Mapped,
            }
        );
        assert_eq!(
            cmd(&["save", "--snapshot", "c", "--shards", "2", "--layout", "streamed"]),
            Command::Save {
                snapshot: std::path::PathBuf::from("c"),
                shards: Some(2),
                threads: None,
                layout: rightcrowd_store::SnapshotLayout::Streamed,
            }
        );
        assert!(parse(&args(&["save", "--snapshot", "x", "--layout", "zerocopy"])).is_err());
        assert_eq!(
            cmd(&["load", "--snapshot", "corpus.rcs"]),
            Command::Load { snapshot: std::path::PathBuf::from("corpus.rcs"), threads: None }
        );
        assert_eq!(
            cmd(&["load", "--snapshot", "corpus.shards", "--threads", "4"]),
            Command::Load {
                snapshot: std::path::PathBuf::from("corpus.shards"),
                threads: Some(4),
            }
        );
        // The container path is the whole point of these subcommands.
        assert!(parse(&args(&["save"])).is_err());
        assert!(parse(&args(&["load"])).is_err());
        assert!(parse(&args(&["save", "--snapshot", "x", "--shards", "none"])).is_err());
        assert!(parse(&args(&["load", "--snapshot", "x", "--threads", "0"])).is_err());
    }

    #[test]
    fn parses_metrics() {
        assert_eq!(
            cmd(&["metrics"]),
            Command::Metrics { platforms: PlatformMask::ALL, distance: Distance::D2 }
        );
        assert_eq!(
            cmd(&["metrics", "--platform", "fb", "--distance", "0"]),
            Command::Metrics {
                platforms: PlatformMask::only(Platform::Facebook),
                distance: Distance::D0
            }
        );
    }

    #[test]
    fn parses_explain() {
        assert_eq!(
            cmd(&["explain", "who knows php"]),
            Command::Explain {
                text: "who knows php".into(),
                candidate: None,
                top: 10,
                json: false,
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
                snapshot: None,
            }
        );
        assert_eq!(
            cmd(&[
                "explain", "swimming", "--candidate", "Riley", "--top", "2", "--json",
                "--platform", "tw", "--distance", "1", "--snapshot", "c.rcs"
            ]),
            Command::Explain {
                text: "swimming".into(),
                candidate: Some("Riley".into()),
                top: 2,
                json: true,
                platforms: PlatformMask::only(Platform::Twitter),
                distance: Distance::D1,
                snapshot: Some(std::path::PathBuf::from("c.rcs")),
            }
        );
        assert!(parse(&args(&["explain"])).is_err());
        assert!(parse(&args(&["explain", "x", "--candidate"])).is_err());
    }

    #[test]
    fn parses_flight() {
        assert_eq!(
            cmd(&["flight"]),
            Command::Flight {
                slowest: None,
                capacity: None,
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
                snapshot: None,
            }
        );
        assert_eq!(
            cmd(&[
                "flight", "--slowest", "5", "--capacity", "1024", "--platform", "fb",
                "--snapshot", "c.rcs"
            ]),
            Command::Flight {
                slowest: Some(5),
                capacity: Some(1024),
                platforms: PlatformMask::only(Platform::Facebook),
                distance: Distance::D2,
                snapshot: Some(std::path::PathBuf::from("c.rcs")),
            }
        );
        assert!(parse(&args(&["flight", "--slowest", "0"])).is_err());
        assert!(parse(&args(&["flight", "--slowest", "many"])).is_err());
        assert!(parse(&args(&["flight", "--capacity", "0"])).is_err());
        assert!(parse(&args(&["flight", "--capacity", "lots"])).is_err());
    }

    #[test]
    fn parses_soak() {
        assert_eq!(
            cmd(&["soak"]),
            Command::Soak {
                out: std::path::PathBuf::from("."),
                snapshot: None,
                connect: None,
                duration_ms: 30_000,
                queries: None,
                threads: None,
                tick_ms: 1_000,
                watch: false,
                profile: false,
            }
        );
        assert_eq!(
            cmd(&[
                "soak", "--out", "target/perf", "--snapshot", "corpus.shards", "--duration",
                "5s", "--queries", "1000", "--threads", "2", "--tick-ms", "250", "--watch",
                "--profile"
            ]),
            Command::Soak {
                out: std::path::PathBuf::from("target/perf"),
                snapshot: Some(std::path::PathBuf::from("corpus.shards")),
                connect: None,
                duration_ms: 5_000,
                queries: Some(1_000),
                threads: Some(2),
                tick_ms: 250,
                watch: true,
                profile: true,
            }
        );
        assert!(parse(&args(&["soak", "--duration", "0s"])).is_err());
        assert!(parse(&args(&["soak", "--queries", "0"])).is_err());
        assert!(parse(&args(&["soak", "--tick-ms", "0"])).is_err());
        assert!(parse(&args(&["soak", "--threads", "0"])).is_err());
    }

    #[test]
    fn parses_soak_connect() {
        assert_eq!(
            cmd(&["soak", "--connect", "127.0.0.1:7700", "--duration", "3s"]),
            Command::Soak {
                out: std::path::PathBuf::from("."),
                snapshot: None,
                connect: Some("127.0.0.1:7700".into()),
                duration_ms: 3_000,
                queries: None,
                threads: None,
                tick_ms: 1_000,
                watch: false,
                profile: false,
            }
        );
        // The daemon owns the snapshot; pointing the client at another
        // one would measure an incoherent pair.
        assert!(parse(&args(&["soak", "--connect", "h:1", "--snapshot", "c.rcs"])).is_err());
        assert!(parse(&args(&["soak", "--connect"])).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            cmd(&["serve", "--snapshot", "corpus.shards"]),
            Command::Serve {
                snapshot: std::path::PathBuf::from("corpus.shards"),
                addr: "127.0.0.1:7700".into(),
                threads: None,
                out: std::path::PathBuf::from("target/perf"),
            }
        );
        assert_eq!(
            cmd(&[
                "serve", "--snapshot", "c.rcs", "--addr", "0.0.0.0:8080", "--threads", "4",
                "--out", "artifacts"
            ]),
            Command::Serve {
                snapshot: std::path::PathBuf::from("c.rcs"),
                addr: "0.0.0.0:8080".into(),
                threads: Some(4),
                out: std::path::PathBuf::from("artifacts"),
            }
        );
        assert!(parse(&args(&["serve"])).is_err());
        assert!(parse(&args(&["serve", "--snapshot", "c.rcs", "--addr"])).is_err());
        assert!(parse(&args(&["serve", "--snapshot", "c.rcs", "--threads", "0"])).is_err());
    }

    #[test]
    fn parses_profile() {
        assert_eq!(
            cmd(&["profile", "bench"]),
            Command::Profile {
                mode: ProfileMode::Bench,
                out: std::path::PathBuf::from("."),
                snapshot: None,
                folded: None,
                svg: None,
                hz: None,
                duration_ms: 30_000,
                threads: None,
            }
        );
        assert_eq!(
            cmd(&[
                "profile", "soak", "--out", "target/perf", "--snapshot", "corpus.shards",
                "--folded", "p.folded", "--svg", "f.svg", "--hz", "500", "--duration", "5s",
                "--threads", "2"
            ]),
            Command::Profile {
                mode: ProfileMode::Soak,
                out: std::path::PathBuf::from("target/perf"),
                snapshot: Some(std::path::PathBuf::from("corpus.shards")),
                folded: Some(std::path::PathBuf::from("p.folded")),
                svg: Some(std::path::PathBuf::from("f.svg")),
                hz: Some(500),
                duration_ms: 5_000,
                threads: Some(2),
            }
        );
        // The mode is required and closed.
        assert!(parse(&args(&["profile"])).is_err());
        assert!(parse(&args(&["profile", "everything"])).is_err());
        assert!(parse(&args(&["profile", "bench", "--hz", "0"])).is_err());
        assert!(parse(&args(&["profile", "bench", "--hz", "20000"])).is_err());
        assert!(parse(&args(&["profile", "bench", "--hz", "fast"])).is_err());
        assert!(parse(&args(&["profile", "bench", "--folded"])).is_err());
        assert!(parse(&args(&["profile", "bench", "--svg"])).is_err());
    }

    #[test]
    fn parses_spans() {
        assert_eq!(
            cmd(&["spans"]),
            Command::Spans { json: false, platforms: PlatformMask::ALL, distance: Distance::D2 }
        );
        assert_eq!(
            cmd(&["spans", "--json", "--platform", "li", "--distance", "1"]),
            Command::Spans {
                json: true,
                platforms: PlatformMask::only(Platform::LinkedIn),
                distance: Distance::D1,
            }
        );
    }

    #[test]
    fn parses_durations() {
        assert_eq!(parse_duration_ms("500ms").unwrap(), 500);
        assert_eq!(parse_duration_ms("30s").unwrap(), 30_000);
        assert_eq!(parse_duration_ms("2m").unwrap(), 120_000);
        assert_eq!(parse_duration_ms("7").unwrap(), 7_000);
        assert!(parse_duration_ms("0").is_err());
        assert!(parse_duration_ms("0ms").is_err());
        assert!(parse_duration_ms("-5s").is_err());
        assert!(parse_duration_ms("5h").is_err());
        assert!(parse_duration_ms("fast").is_err());
        assert!(parse_duration_ms("").is_err());
    }

    #[test]
    fn parses_expose() {
        assert_eq!(
            cmd(&["expose", "--out", "metrics.om"]),
            Command::Expose { out: Some(std::path::PathBuf::from("metrics.om")), check: None }
        );
        assert_eq!(
            cmd(&["expose", "--check", "metrics.om"]),
            Command::Expose { out: None, check: Some(std::path::PathBuf::from("metrics.om")) }
        );
        assert_eq!(
            cmd(&["expose", "--out", "a.om", "--check", "a.om"]),
            Command::Expose {
                out: Some(std::path::PathBuf::from("a.om")),
                check: Some(std::path::PathBuf::from("a.om")),
            }
        );
        // Neither output nor validation target: nothing to do.
        assert!(parse(&args(&["expose"])).is_err());
        assert!(parse(&args(&["expose", "--out"])).is_err());
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            cmd(&["trace", "--chrome", "trace.chrome.json"]),
            Command::Trace {
                chrome: Some(std::path::PathBuf::from("trace.chrome.json")),
                check: None,
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
            }
        );
        assert_eq!(
            cmd(&["trace", "--check", "trace.chrome.json"]),
            Command::Trace {
                chrome: None,
                check: Some(std::path::PathBuf::from("trace.chrome.json")),
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
            }
        );
        assert_eq!(
            cmd(&["trace", "--chrome", "out.json", "--check", "out.json"]),
            Command::Trace {
                chrome: Some(std::path::PathBuf::from("out.json")),
                check: Some(std::path::PathBuf::from("out.json")),
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
            }
        );
        // Neither output nor validation target: nothing to do.
        assert!(parse(&args(&["trace"])).is_err());
        assert!(parse(&args(&["trace", "--chrome"])).is_err());
    }

    #[test]
    fn parses_regress() {
        assert_eq!(
            cmd(&["regress", "BENCH_small.json", "target/BENCH_small.json"]),
            Command::Regress {
                baseline: std::path::PathBuf::from("BENCH_small.json"),
                current: std::path::PathBuf::from("target/BENCH_small.json"),
                threshold: 0.2,
                warn_only: false,
                snapshot: None,
            }
        );
        assert_eq!(
            cmd(&[
                "regress", "a.json", "b.json", "--threshold", "0.5", "--warn-only",
                "--snapshot", "corpus.rcs"
            ]),
            Command::Regress {
                baseline: std::path::PathBuf::from("a.json"),
                current: std::path::PathBuf::from("b.json"),
                threshold: 0.5,
                warn_only: true,
                snapshot: Some(std::path::PathBuf::from("corpus.rcs")),
            }
        );
        assert!(parse(&args(&["regress", "only-one.json"])).is_err());
        assert!(parse(&args(&["regress", "a", "b", "--threshold", "nope"])).is_err());
        assert!(parse(&args(&["regress", "a", "b", "--threshold", "-1"])).is_err());
    }

    #[test]
    fn parses_global_flags() {
        let inv = parse(&args(&["bench", "--trace", "--scale", "tiny"])).unwrap();
        assert!(inv.trace);
        assert_eq!(inv.scale.as_deref(), Some("tiny"));
        let inv = parse(&args(&["eval"])).unwrap();
        assert!(!inv.trace);
        assert_eq!(inv.scale, None);
        assert!(parse(&args(&["bench", "--scale", "galactic"])).is_err());
        assert!(parse(&args(&["bench", "--scale"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&["query"])).is_err());
        assert!(parse(&args(&["query", "x", "--top", "zero"])).is_err());
        assert!(parse(&args(&["query", "x", "--top", "0"])).is_err());
        assert!(parse(&args(&["query", "x", "--platform", "myspace"])).is_err());
        assert!(parse(&args(&["query", "x", "--distance", "9"])).is_err());
        assert!(parse(&args(&["query", "x", "--bogus"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["query", "x", "--top"])).is_err());
    }

    #[test]
    fn platform_aliases() {
        assert_eq!(parse_platform("Facebook").unwrap(), PlatformMask::only(Platform::Facebook));
        assert_eq!(parse_platform("TW").unwrap(), PlatformMask::only(Platform::Twitter));
        assert_eq!(parse_platform("all").unwrap(), PlatformMask::ALL);
    }
}
