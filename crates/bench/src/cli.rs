//! Argument parsing for the `rc` command-line tool.
//!
//! Hand-rolled (the workspace's dependency policy keeps external crates to
//! the algorithmic minimum); supports the three subcommands of
//! `src/bin/rc.rs` with long-flag options.

use rightcrowd_types::{Distance, Platform, PlatformMask};

/// A parsed `rc` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `rc query "<text>" [--top N] [--platform P] [--distance D]`
    Query {
        /// The free-form expertise need.
        text: String,
        /// How many experts to print.
        top: usize,
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc stats` — print dataset statistics.
    Stats,
    /// `rc eval [--platform P] [--distance D]` — run the workload and
    /// print the metric row.
    Eval {
        /// Platform restriction.
        platforms: PlatformMask,
        /// Distance cap.
        distance: Distance,
    },
    /// `rc bench [--out DIR]` — measure the retrieval hot path and write
    /// a `BENCH_<scale>.json` snapshot.
    Bench {
        /// Directory the snapshot is written into.
        out: std::path::PathBuf,
    },
    /// `rc help` or parse failure fallback.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage string printed by `rc help`.
pub const USAGE: &str = "\
rc — expert finding in (simulated) social networks

USAGE:
  rc query \"<expertise need>\" [--top N] [--platform all|fb|tw|li] [--distance 0|1|2]
  rc eval [--platform all|fb|tw|li] [--distance 0|1|2]
  rc bench [--out DIR]
  rc stats
  rc help

ENVIRONMENT:
  RIGHTCROWD_SCALE   dataset scale: tiny | small (default) | paper
";

fn parse_platform(value: &str) -> Result<PlatformMask, ParseError> {
    match value.to_ascii_lowercase().as_str() {
        "all" => Ok(PlatformMask::ALL),
        "fb" | "facebook" => Ok(PlatformMask::only(Platform::Facebook)),
        "tw" | "twitter" => Ok(PlatformMask::only(Platform::Twitter)),
        "li" | "linkedin" => Ok(PlatformMask::only(Platform::LinkedIn)),
        other => Err(ParseError(format!("unknown platform {other:?} (use all|fb|tw|li)"))),
    }
}

fn parse_distance(value: &str) -> Result<Distance, ParseError> {
    value
        .parse::<usize>()
        .ok()
        .and_then(Distance::from_level)
        .ok_or_else(|| ParseError(format!("invalid distance {value:?} (use 0, 1 or 2)")))
}

/// Parses `rc` arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut iter = args.iter();
    let Some(sub) = iter.next() else {
        return Ok(Command::Help);
    };

    let mut top = 10usize;
    let mut platforms = PlatformMask::ALL;
    let mut distance = Distance::D2;
    let mut out = std::path::PathBuf::from(".");
    let mut positional: Vec<&String> = Vec::new();

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let value =
                    iter.next().ok_or_else(|| ParseError("--out needs a directory".into()))?;
                out = std::path::PathBuf::from(value);
            }
            "--top" => {
                let value = iter.next().ok_or_else(|| ParseError("--top needs a number".into()))?;
                top = value
                    .parse()
                    .map_err(|_| ParseError(format!("invalid --top value {value:?}")))?;
                if top == 0 {
                    return Err(ParseError("--top must be at least 1".into()));
                }
            }
            "--platform" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--platform needs a value".into()))?;
                platforms = parse_platform(value)?;
            }
            "--distance" => {
                let value = iter
                    .next()
                    .ok_or_else(|| ParseError("--distance needs a value".into()))?;
                distance = parse_distance(value)?;
            }
            other if other.starts_with("--") => {
                return Err(ParseError(format!("unknown option {other:?}")));
            }
            _ => positional.push(arg),
        }
    }

    match sub.as_str() {
        "query" => {
            let text = positional
                .first()
                .ok_or_else(|| ParseError("query needs the expertise need text".into()))?;
            Ok(Command::Query { text: (*text).clone(), top, platforms, distance })
        }
        "stats" => Ok(Command::Stats),
        "eval" => Ok(Command::Eval { platforms, distance }),
        "bench" => Ok(Command::Bench { out }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_query_with_defaults() {
        let cmd = parse(&args(&["query", "who knows php"])).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                text: "who knows php".into(),
                top: 10,
                platforms: PlatformMask::ALL,
                distance: Distance::D2,
            }
        );
    }

    #[test]
    fn parses_query_with_options() {
        let cmd = parse(&args(&[
            "query", "swimming", "--top", "3", "--platform", "tw", "--distance", "1",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                text: "swimming".into(),
                top: 3,
                platforms: PlatformMask::only(Platform::Twitter),
                distance: Distance::D1,
            }
        );
    }

    #[test]
    fn parses_eval_and_stats() {
        assert_eq!(
            parse(&args(&["eval", "--platform", "li"])).unwrap(),
            Command::Eval {
                platforms: PlatformMask::only(Platform::LinkedIn),
                distance: Distance::D2
            }
        );
        assert_eq!(parse(&args(&["stats"])).unwrap(), Command::Stats);
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_bench() {
        assert_eq!(
            parse(&args(&["bench"])).unwrap(),
            Command::Bench { out: std::path::PathBuf::from(".") }
        );
        assert_eq!(
            parse(&args(&["bench", "--out", "target/perf"])).unwrap(),
            Command::Bench { out: std::path::PathBuf::from("target/perf") }
        );
        assert!(parse(&args(&["bench", "--out"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args(&["query"])).is_err());
        assert!(parse(&args(&["query", "x", "--top", "zero"])).is_err());
        assert!(parse(&args(&["query", "x", "--top", "0"])).is_err());
        assert!(parse(&args(&["query", "x", "--platform", "myspace"])).is_err());
        assert!(parse(&args(&["query", "x", "--distance", "9"])).is_err());
        assert!(parse(&args(&["query", "x", "--bogus"])).is_err());
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["query", "x", "--top"])).is_err());
    }

    #[test]
    fn platform_aliases() {
        assert_eq!(parse_platform("Facebook").unwrap(), PlatformMask::only(Platform::Facebook));
        assert_eq!(parse_platform("TW").unwrap(), PlatformMask::only(Platform::Twitter));
        assert_eq!(parse_platform("all").unwrap(), PlatformMask::ALL);
    }
}
