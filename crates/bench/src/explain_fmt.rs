//! Rendering for `rc explain` and `rc flight`: aligned human tables and a
//! hand-rolled JSON form of the score decomposition.
//!
//! The explain table replays the decomposition it prints: the Σ line is
//! computed from the same [`ResourceContribution`]s shown above it via
//! [`ExplainedExpert::decomposed_score`], so the output is self-checking —
//! and `explain_output_sums_to_ranked_score` (below) enforces the sum
//! against the production ranking on a real corpus.

use rightcrowd_core::explain::{ExplainedExpert, ExplainedRanking};
use rightcrowd_core::FinderConfig;
use rightcrowd_obs::{FlightSummary, QueryRecord};

/// How many contribution rows the human table prints per expert before
/// folding the tail into a summary line.
const MAX_ROWS: usize = 12;

/// Resolves a candidate name, falling back to the raw id.
fn name_of(names: &[&str], person: u32) -> String {
    names
        .get(person as usize)
        .map_or_else(|| format!("person#{person}"), |n| (*n).to_string())
}

/// Clips a label for table cells (ASCII-safe ellipsis).
fn clip(label: &str, max: usize) -> String {
    if label.chars().count() <= max {
        label.to_string()
    } else {
        let head: String = label.chars().take(max.saturating_sub(3)).collect();
        format!("{head}...")
    }
}

/// The experts an explain invocation covers: the top `top`, optionally
/// filtered to names containing `candidate` (case-insensitive).
fn selected<'a>(
    explained: &'a ExplainedRanking,
    names: &[&str],
    candidate: Option<&str>,
    top: usize,
) -> Vec<(usize, &'a ExplainedExpert)> {
    let needle = candidate.map(str::to_ascii_lowercase);
    explained
        .experts
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            needle.as_deref().is_none_or(|n| {
                name_of(names, e.person.0).to_ascii_lowercase().contains(n)
            })
        })
        .take(top)
        .collect()
}

/// The human-readable decomposition table.
pub fn render_explain(
    explained: &ExplainedRanking,
    config: &FinderConfig,
    names: &[&str],
    candidate: Option<&str>,
    top: usize,
) -> String {
    let mut out = format!(
        "α {:.2} · window {} → {} of {} matching resources in window ({} cut off)\n",
        explained.alpha,
        config.window.label(),
        explained.window,
        explained.matches,
        explained.cutoff(),
    );
    let chosen = selected(explained, names, candidate, top);
    if chosen.is_empty() {
        match candidate {
            Some(c) => out.push_str(&format!("no ranked candidate matches {c:?}\n")),
            None => out.push_str("no candidate shows evidence for this query\n"),
        }
        return out;
    }
    for (position, expert) in chosen {
        let cut = expert.contributions.iter().filter(|c| !c.in_window).count();
        out.push_str(&format!(
            "\n#{} {} — score {:.6} ({} resources in window, {} cut off)\n",
            position + 1,
            name_of(names, expert.person.0),
            expert.score,
            expert.votes,
            cut,
        ));
        out.push_str(&format!(
            "  {:>4} {:>8} {:>4} {:>5} {:>12} {:>12} {:>12} {:>14}\n",
            "rank", "doc", "dist", "wr", "term", "entity", "doc score", "contribution"
        ));
        for c in expert.contributions.iter().take(MAX_ROWS) {
            out.push_str(&format!(
                "  {:>4} {:>8} {:>4} {:>5.2} {:>12.6} {:>12.6} {:>12.6} {:>14.6}{}\n",
                c.rank,
                c.doc.0,
                c.distance.level(),
                c.wr,
                c.term_score,
                c.entity_score,
                c.doc_score,
                c.contribution,
                if c.in_window { "" } else { "  (cut by window)" },
            ));
        }
        if expert.contributions.len() > MAX_ROWS {
            out.push_str(&format!(
                "  ... and {} more contributing resources\n",
                expert.contributions.len() - MAX_ROWS
            ));
        }
        match expert.decomposed_score(config) {
            Some(sum) => out.push_str(&format!(
                "  Σ in-window contributions = {:.6} (= ranked score)\n",
                sum
            )),
            None => out.push_str(
                "  (non-additive aggregation: score is not a sum of contributions)\n",
            ),
        }
    }
    out
}

/// The decomposition as JSON (`--json`): everything the table shows, plus
/// every contribution row and the replayed `decomposed_score`, so tools
/// can re-verify the sum.
pub fn explain_json(
    explained: &ExplainedRanking,
    config: &FinderConfig,
    names: &[&str],
    candidate: Option<&str>,
    top: usize,
) -> String {
    fn esc(v: &str) -> String {
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => " ".chars().collect(),
                c => vec![c],
            })
            .collect();
        format!("\"{escaped}\"")
    }
    fn num(v: f64) -> String {
        if v.is_finite() { format!("{v:.9}") } else { "null".to_owned() }
    }
    let mut out = format!(
        "{{\n  \"alpha\": {},\n  \"window\": {},\n  \"matches\": {},\n  \
         \"window_size\": {},\n  \"cutoff\": {},\n  \"experts\": [",
        num(explained.alpha),
        esc(&config.window.label()),
        explained.matches,
        explained.window,
        explained.cutoff(),
    );
    let chosen = selected(explained, names, candidate, top);
    for (i, (position, expert)) in chosen.iter().enumerate() {
        let comma = if i + 1 < chosen.len() { "," } else { "" };
        let decomposed = expert
            .decomposed_score(config)
            .map_or("null".to_owned(), num);
        let mut rows = String::new();
        for (j, c) in expert.contributions.iter().enumerate() {
            let comma = if j + 1 < expert.contributions.len() { "," } else { "" };
            rows.push_str(&format!(
                "\n        {{\"doc\": {}, \"rank\": {}, \"distance\": {}, \"wr\": {}, \
                 \"term_score\": {}, \"entity_score\": {}, \"doc_score\": {}, \
                 \"contribution\": {}, \"in_window\": {}}}{comma}",
                c.doc.0,
                c.rank,
                c.distance.level(),
                num(c.wr),
                num(c.term_score),
                num(c.entity_score),
                num(c.doc_score),
                num(c.contribution),
                c.in_window,
            ));
        }
        out.push_str(&format!(
            "\n    {{\n      \"position\": {},\n      \"person\": {},\n      \
             \"name\": {},\n      \"score\": {},\n      \"votes\": {},\n      \
             \"decomposed_score\": {},\n      \"contributions\": [{}\n      ]\n    }}{comma}",
            position + 1,
            expert.person.0,
            esc(&name_of(names, expert.person.0)),
            num(expert.score),
            expert.votes,
            decomposed,
            rows,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The `rc flight` table: one row per retained record, newest (or
/// slowest) first, with the counter deltas and the head of the ranking.
pub fn render_flight(
    summary: &FlightSummary,
    records: &[QueryRecord],
    names: &[&str],
) -> String {
    let mut out = format!(
        "flight: {} recorded · {} retained · mean {:.3} ms · slowest {:.3} ms ({:?})\n",
        summary.recorded,
        summary.retained,
        summary.mean_ms,
        summary.slowest_ms,
        clip(&summary.slowest_label, 40),
    );
    if records.is_empty() {
        out.push_str("no records retained (recorder disabled or obs-off build)\n");
        return out;
    }
    out.push_str(&format!(
        "{:>5} {:>10} {:>8} {:>9} {:>7} {:>7} {:>5} {:>2} {:>8}  {:<28} {}\n",
        "query", "latency_ms", "cpu_ms", "postings", "admit", "prune", "α", "d", "window", "top candidate", "text"
    ));
    for r in records {
        let top = r
            .top_candidates
            .first()
            .map_or_else(String::new, |&(p, s)| format!("{} ({s:.2})", name_of(names, p)));
        // Estimated CPU only exists when a sampling profiler ran over
        // the workload; "-" keeps unprofiled runs honest.
        let cpu = if r.cpu_est_us == 0 {
            "-".to_string()
        } else {
            format!("{:.3}", r.cpu_est_ms())
        };
        out.push_str(&format!(
            "{:>5} {:>10.3} {:>8} {:>9} {:>7} {:>7} {:>5.2} {:>2} {:>8}  {:<28} {}\n",
            r.query_id,
            r.latency_ms(),
            cpu,
            r.postings_traversed,
            r.maxscore_admitted,
            r.maxscore_pruned,
            r.alpha,
            r.max_distance,
            clip(&r.window, 8),
            clip(&top, 28),
            clip(&r.label, 44),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::{parse_json, Json};
    use rightcrowd_core::EvalContext;

    fn explained_fixture() -> (ExplainedRanking, FinderConfig, Vec<String>) {
        let (ds, corpus) = rightcrowd_core::testkit::tiny();
        let ctx = EvalContext::new(ds, corpus);
        let config = FinderConfig::default();
        let explained = ctx.explain_text(&config, &ds.queries()[0].text);
        let names: Vec<String> =
            ds.candidates().iter().map(|p| p.name.clone()).collect();
        (explained, config, names)
    }

    /// The acceptance check: the printed decomposition sums to the ranked
    /// score, on a real corpus, through both output forms.
    #[test]
    fn explain_output_sums_to_ranked_score() {
        let (explained, config, names) = explained_fixture();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        assert!(!explained.experts.is_empty(), "fixture query must rank someone");

        // Human table: the Σ line replays the contributions exactly.
        let table = render_explain(&explained, &config, &names, None, 3);
        assert!(table.contains("(= ranked score)"), "missing Σ line:\n{table}");
        for (i, e) in explained.experts.iter().take(3).enumerate() {
            assert!(table.contains(&format!("#{} ", i + 1)));
            assert_eq!(
                e.decomposed_score(&config),
                Some(e.score),
                "decomposition must replay the ranked score bit-for-bit"
            );
        }

        // JSON: parse it back and re-verify the sum independently.
        let json = explain_json(&explained, &config, &names, None, 3);
        let doc = parse_json(&json).expect("explain --json must be well-formed");
        let Some(Json::Arr(experts)) = doc.get("experts").cloned() else {
            panic!("experts array missing");
        };
        assert!(!experts.is_empty());
        for expert in &experts {
            let score = expert.get("score").and_then(Json::as_f64).unwrap();
            let Some(Json::Arr(rows)) = expert.get("contributions").cloned() else {
                panic!("contributions missing");
            };
            let sum: f64 = rows
                .iter()
                .filter(|r| r.get("in_window") == Some(&Json::Bool(true)))
                .map(|r| r.get("contribution").and_then(Json::as_f64).unwrap())
                .sum();
            assert!(
                (sum - score).abs() <= 1e-9 * score.abs().max(1.0),
                "JSON contributions sum {sum} != score {score}"
            );
        }
    }

    #[test]
    fn candidate_filter_narrows_the_table() {
        let (explained, config, names) = explained_fixture();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let first = name_of(&names, explained.experts[0].person.0);
        let needle = first.split_whitespace().next().unwrap();
        let table =
            render_explain(&explained, &config, &names, Some(&needle.to_ascii_lowercase()), 50);
        assert!(table.contains(&first));
        let miss = render_explain(&explained, &config, &names, Some("zzz-no-such-person"), 50);
        assert!(miss.contains("no ranked candidate matches"));
    }

    #[test]
    fn flight_table_lists_records_and_counters() {
        let summary = FlightSummary {
            recorded: 2,
            retained: 2,
            mean_ms: 1.5,
            slowest_ms: 2.0,
            slowest_label: "slow query".into(),
        };
        let records = vec![QueryRecord {
            query_id: 7,
            label: "who knows php".into(),
            domain: "Technology & computers".into(),
            alpha: 0.6,
            max_distance: 2,
            window: "top-100".into(),
            latency_ns: 2_000_000,
            postings_traversed: 1234,
            maxscore_admitted: 56,
            maxscore_pruned: 78,
            top_candidates: vec![(0, 12.5)],
            cpu_est_us: 1_750,
        }];
        let out = render_flight(&summary, &records, &["Alice Example"]);
        assert!(out.contains("2 recorded"));
        assert!(out.contains("1234"));
        assert!(out.contains("cpu_ms"));
        assert!(out.contains("1.750"), "profiled CPU estimate rendered:\n{out}");
        assert!(out.contains("Alice Example (12.50)"));
        assert!(out.contains("who knows php"));
        let mut unprofiled = records;
        unprofiled[0].cpu_est_us = 0;
        let out = render_flight(&summary, &unprofiled, &["Alice Example"]);
        assert!(out.contains(" - "), "unprofiled records show a dash");
        let empty = render_flight(&FlightSummary::default(), &[], &[]);
        assert!(empty.contains("no records retained"));
    }
}
