//! The experiment bodies, as library functions over a shared [`Bench`].
//!
//! Each submodule reproduces one table/figure of the paper (see the crate
//! docs for the mapping) and exposes `run(&Bench)`. The thin binaries in
//! `src/bin/` prepare a bench and delegate here; `exp_all` prepares **one**
//! bench and runs every experiment against it in-process, so the dataset
//! generation and corpus analysis — the dominant cost at paper scale —
//! happen once instead of once per experiment.

use crate::Bench;

pub mod ablation;
pub mod alpha;
pub mod dataset;
pub mod delta;
pub mod distance;
pub mod domains;
pub mod friends;
pub mod rankers;
pub mod users;
pub mod window;

/// An experiment body: a name and a runner over the shared bench.
pub type Experiment = (&'static str, fn(&Bench));

/// Every experiment, in the paper's presentation order.
pub const ALL: [Experiment; 10] = [
    ("exp_dataset", dataset::run),
    ("exp_window", window::run),
    ("exp_alpha", alpha::run),
    ("exp_friends", friends::run),
    ("exp_distance", distance::run),
    ("exp_domains", domains::run),
    ("exp_users", users::run),
    ("exp_delta", delta::run),
    ("exp_ablation", ablation::run),
    ("exp_rankers", rankers::run),
];
