//! Experiment: per-user reliability — the paper's Fig. 10.
//!
//! For each expert candidate, the F1 of "system retrieved the user" versus
//! "user is a domain expert" over the whole workload, next to the user's
//! available social information (attributed documents). The paper observes
//! a clear correlation between the two, six users above F1 = 0.70, and
//! eight completely unpredictable users (F1 = 0).

use crate::runner::linear_regression;
use crate::table::banner;
use crate::Bench;
use rightcrowd_core::FinderConfig;

/// Prints Fig. 10 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Fig. 10 — users' expertise predictability vs. social footprint");
    let reliability = ctx.user_reliability(&FinderConfig::default());

    println!(
        "{:<6} {:<22} {:>7} {:>7} {:>7} {:>10} {:>8}",
        "user", "name", "F1", "prec", "recall", "resources", "silent"
    );
    for r in &reliability {
        let persona = &bench.ds.personas()[r.person.index()];
        println!(
            "{:<6} {:<22} {:>7.3} {:>7.3} {:>7.3} {:>10} {:>8}",
            r.person.to_string(),
            bench.ds.candidates()[r.person.index()].name,
            r.f1,
            r.precision,
            r.recall,
            r.resources,
            if persona.silent { "yes" } else { "" }
        );
    }

    let mut f1s: Vec<f64> = reliability.iter().map(|r| r.f1).collect();
    f1s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = f1s[f1s.len() / 2];
    let average = f1s.iter().sum::<f64>() / f1s.len() as f64;
    let high = reliability.iter().filter(|r| r.f1 > 0.70).count();
    let zero = reliability.iter().filter(|r| r.f1 == 0.0).count();
    let above_avg = reliability.iter().filter(|r| r.f1 > average).count();

    println!("\nmedian F1 {median:.3}, average F1 {average:.3}");
    println!(
        "{high} users above F1 = 0.70 (paper: 6); {zero} users at F1 = 0 (paper: 8); \
         {above_avg} above average (paper: ~half)"
    );

    let points: Vec<(f64, f64)> = reliability
        .iter()
        .map(|r| (r.resources as f64, r.f1))
        .collect();
    let (slope, intercept, r) = linear_regression(&points);
    println!(
        "\nregression F1 ~ resources: slope {slope:.3e}, intercept {intercept:.3}, pearson r = {r:.3}"
    );
    println!(
        "paper shape: positive correlation — users publishing more resources\n\
         are easier to assess (and silent experts are unassessable)."
    );
}
