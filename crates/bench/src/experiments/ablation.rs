//! Ablations of the design choices DESIGN.md calls out.
//!
//! Not a paper table — these runs justify (or interrogate) choices the
//! paper makes in passing:
//!
//! 1. **Distance weights** — the paper fixes `wr` in `[0.5, 1]`, linear
//!    in distance; compared against uniform, steep, and profile-muted
//!    schedules.
//! 2. **Score normalisation** — Eq. 3 deliberately does not normalise by
//!    evidence volume ("we assume a direct correlation between the number
//!    of resources related to a query and the potential expertise");
//!    the normalised variant shows what that assumption buys.
//! 3. **URL-content enrichment** — the pipeline stage the paper borrows
//!    the Alchemy API for.
//! 4. **Collective-agreement disambiguation** — TAGME's voting versus
//!    commonness-only sense picking.
//! 5. **Location-aware policy** — the paper's own future-work suggestion
//!    (§3.7), applied to the Location domain.

use crate::table::{banner, header4, row4};
use crate::Bench;
use rightcrowd_core::{
    AnalyzedCorpus, CorpusOptions, DomainPolicy, EvalContext, FinderConfig,
};
use rightcrowd_metrics::mean_eval;
use rightcrowd_types::Domain;

/// Prints the five ablations against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();
    let base = FinderConfig::default();

    banner("Ablation 1 — distance weight schedules wr");
    println!("{:<26} {}", "schedule", header4());
    for (label, weights) in [
        ("paper [1, .75, .5]", [1.0, 0.75, 0.5]),
        ("uniform [1, 1, 1]", [1.0, 1.0, 1.0]),
        ("steep [1, .5, .25]", [1.0, 0.5, 0.25]),
        ("no-profile [0, .75, .5]", [0.0, 0.75, 0.5]),
        ("inverted [.5, .75, 1]", [0.5, 0.75, 1.0]),
    ] {
        let config = FinderConfig { distance_weights: weights, ..base.clone() };
        let outcome = ctx.run(&config);
        println!("{:<26} {}", label, row4(&outcome.mean));
    }

    banner("Ablation 2 — Eq. 3 score normalisation");
    println!("{:<26} {}", "aggregation", header4());
    for (label, normalize) in [("sum (paper)", false), ("mean per candidate", true)] {
        let config = FinderConfig { normalize_by_evidence: normalize, ..base.clone() };
        let outcome = ctx.run(&config);
        println!("{:<26} {}", label, row4(&outcome.mean));
    }

    banner("Ablation 3 — URL-content enrichment");
    println!("{:<26} {}", "pipeline", header4());
    let enriched = ctx.run(&base);
    println!("{:<26} {}", "with enrichment (paper)", row4(&enriched.mean));
    {
        let stripped = AnalyzedCorpus::build_with(&bench.ds, &CorpusOptions::without_enrichment());
        let ctx2 = EvalContext::new(&bench.ds, &stripped);
        let outcome = ctx2.run(&base);
        println!("{:<26} {}", "without enrichment", row4(&outcome.mean));
    }

    banner("Ablation 4 — entity disambiguation strategy");
    println!("{:<26} {}", "disambiguation", header4());
    println!("{:<26} {}", "TAGME voting (paper)", row4(&enriched.mean));
    {
        let commonness =
            AnalyzedCorpus::build_with(&bench.ds, &CorpusOptions::commonness_only());
        let ctx2 = EvalContext::new(&bench.ds, &commonness);
        let outcome = ctx2.run(&base);
        println!("{:<26} {}", "commonness only", row4(&outcome.mean));
    }

    banner("Ablation 5 — location-aware domain policy (paper §3.7 future work)");
    let location_queries = |outcome: &rightcrowd_core::ConfigOutcome| {
        let evals: Vec<_> = bench
            .ds
            .queries()
            .iter()
            .zip(&outcome.per_query)
            .filter(|(q, _)| q.domain == Domain::Location)
            .map(|(_, e)| e.clone())
            .collect();
        mean_eval(&evals)
    };
    let uniform = ctx.run_policy(&DomainPolicy::uniform(&base));
    let aware = ctx.run_policy(&DomainPolicy::location_aware(&base));
    println!("{:<26} {}   <- all domains", "uniform policy", row4(&uniform.mean));
    println!("{:<26} {}   <- all domains", "location-aware", row4(&aware.mean));
    println!(
        "{:<26} {}   <- Location queries only",
        "uniform policy",
        row4(&location_queries(&uniform))
    );
    println!(
        "{:<26} {}   <- Location queries only",
        "location-aware",
        row4(&location_queries(&aware))
    );
}
