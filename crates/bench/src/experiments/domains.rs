//! Experiment: per-domain breakdown — the paper's Table 4.
//!
//! For each of the seven expertise domains, evaluates the domain's queries
//! under every (network, distance) combination and reports MAP, MRR and
//! NDCG@10 (the three metrics Table 4 carries). The paper's All-network
//! reference values are printed alongside.

use crate::table::banner;
use crate::{paper, Bench};
use rightcrowd_core::{ConfigOutcome, FinderConfig};
use rightcrowd_metrics::mean_eval;
use rightcrowd_types::{Distance, Domain, Platform, PlatformMask};

const MASKS: [(&str, PlatformMask); 4] = [
    ("All", PlatformMask::ALL),
    ("FB", PlatformMask::only(Platform::Facebook)),
    ("TW", PlatformMask::only(Platform::Twitter)),
    ("LI", PlatformMask::only(Platform::LinkedIn)),
];

/// Prints Table 4 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Table 4 — per-domain metrics (window = 100, α = 0.6)");
    println!(
        "columns: MAP / MRR / NDCG@10 for All, FB, TW, LI; (paper) = the\n\
         paper's All-network values.\n"
    );

    // One full-workload run per (mask, distance); domains then slice the
    // per-query evaluations.
    let mut outcomes: Vec<Vec<ConfigOutcome>> = Vec::new();
    for (_, mask) in MASKS {
        let mut per_distance = Vec::new();
        for distance in Distance::ALL {
            let config = FinderConfig::default()
                .with_platforms(mask)
                .with_distance(distance);
            per_distance.push(ctx.run(&config));
        }
        outcomes.push(per_distance);
    }

    for domain in Domain::ALL {
        println!("--- {} ---", domain.label());
        println!(
            "{:<6} {:>24} {:>24} {:>24} {:>24}   (paper All)",
            "dist", "All", "FB", "TW", "LI"
        );
        for distance in Distance::ALL {
            let mut cells = Vec::new();
            for (mi, _) in MASKS.iter().enumerate() {
                let outcome = &outcomes[mi][distance.level()];
                let evals: Vec<_> = bench
                    .ds
                    .queries()
                    .iter()
                    .zip(&outcome.per_query)
                    .filter(|(q, _)| q.domain == domain)
                    .map(|(_, e)| e.clone())
                    .collect();
                let mean = mean_eval(&evals);
                cells.push(format!(
                    "{:>7.4} {:>7.4} {:>8.4}",
                    mean.map, mean.mrr, mean.ndcg10
                ));
            }
            let reference = paper::table4_all(domain.slug(), distance.level()).unwrap();
            println!(
                "{:<6} {:>24} {:>24} {:>24} {:>24}   {:>6.4} {:>6.4} {:>6.4}",
                distance.level(),
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                reference.0,
                reference.1,
                reference.2
            );
        }
    }
    println!(
        "\npaper shape: TW leads computer engineering, science, sport and\n\
         technology; FB is strong on location, music, sport and movies & tv;\n\
         LI trails everywhere except computer engineering at distance 0."
    );
}
