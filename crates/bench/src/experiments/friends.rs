//! Experiment: do friends' resources help? — the paper's Table 2 and
//! Fig. 8.
//!
//! Runs Twitter-only configurations at distances 1 and 2, with and without
//! friends (bidirectional ties), window = 100 and α = 0.6. The paper found
//! a ~1% improvement at distance 1 and a slight *degradation* of MAP/NDCG
//! at distance 2 — evidence that real-world bonds do not imply shared
//! expertise.

use crate::table::{banner, dcg_curve, header4, p11, paper_row4, row4};
use crate::{paper, Bench};
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::FinderConfig;
use rightcrowd_types::{Distance, Platform, PlatformMask};

/// Prints Table 2 and Fig. 8 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Table 2 — Twitter with and without Friend relationships");
    let random = random_baseline(&bench.ds, 0xF21E9D);
    println!("{:<18} {}   (paper)", "config", header4());
    println!(
        "{:<18} {}   {}",
        "random",
        row4(&random),
        paper_row4(paper::RANDOM)
    );

    let mut curves = Vec::new();
    for distance in [Distance::D1, Distance::D2] {
        for friends in [false, true] {
            let config = FinderConfig::default()
                .with_platforms(PlatformMask::only(Platform::Twitter))
                .with_distance(distance)
                .with_friends(friends);
            let attribution = ctx.attribution(&config);
            let outcome = ctx.run_with_attribution(&config, &attribution);
            let label = format!(
                "dist {} {}",
                distance.level(),
                if friends { "friends" } else { "no-frnd" }
            );
            let reference = paper::TABLE2
                .iter()
                .find(|((d, f), _)| *d == distance.level() && *f == friends)
                .map(|&(_, r)| r)
                .unwrap();
            println!(
                "{:<18} {}   {}",
                label,
                row4(&outcome.mean),
                paper_row4(reference)
            );
            curves.push((label, outcome.mean.p11, outcome.mean.dcg_curve, attribution));
        }
    }

    // Additional resources pulled in by friends (paper: ~60k on Twitter).
    let extra = curves[1].3.attributed_docs() as i64 - curves[0].3.attributed_docs() as i64;
    println!(
        "\nadditional documents attributed with friends at distance 1: {extra} \
         (paper: ~{} at distance 2)",
        paper::PAPER_FRIEND_RESOURCES
    );
    let extra2 = curves[3].3.attributed_docs() as i64 - curves[2].3.attributed_docs() as i64;
    println!("additional documents attributed with friends at distance 2: {extra2}");

    banner("Fig. 8a — 11-point interpolated precision/recall");
    for (label, curve, _, _) in &curves {
        println!("{:<18} {}", label, p11(curve));
    }

    banner("Fig. 8b — DCG at 5/10/15/20 retrieved users");
    for (label, _, curve, _) in &curves {
        println!("{:<18} {}", label, dcg_curve(curve));
    }
    println!(
        "\npaper shape: the friend curves sit on top of the no-friend curves —\n\
         friends' resources add volume, not signal."
    );
}
