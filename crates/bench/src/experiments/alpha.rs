//! Experiment: α sensitivity — the paper's Fig. 7.
//!
//! Sweeps the Eq. 1 term/entity mixing weight α from 0 (entities only) to
//! 1 (terms only) at distances 0, 1 and 2 with window = 100, reporting the
//! four headline metrics.
//!
//! The sweep runs on the factored scorer
//! ([`EvalContext::run_alpha_sweep`]): every query is analysed and its
//! postings traversed **once per distance**, and the eleven α points
//! recombine the precomputed term/entity component sums — instead of the
//! naive one-traversal-per-(query, distance, α), an 11× reduction in
//! retrieval work.
//!
//! [`EvalContext::run_alpha_sweep`]: rightcrowd_core::EvalContext::run_alpha_sweep

use crate::table::{banner, header4, row4};
use crate::Bench;
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::FinderConfig;
use rightcrowd_types::Distance;

/// The α grid of Fig. 7: 0.0, 0.1, …, 1.0.
pub fn alpha_grid() -> Vec<f64> {
    (0..=10).map(|step| step as f64 / 10.0).collect()
}

/// Prints Fig. 7 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Fig. 7 — sensitivity to the α parameter (window = 100)");
    println!(
        "paper shape: α = 0 (entities only) collapses at distance 0 (profiles\n\
         are too sparse to annotate); metrics are stable for α ∈ [0.3, 0.8];\n\
         the paper fixes α = 0.6.\n"
    );
    let random = random_baseline(&bench.ds, 0xA1FA);
    println!("{:<16} {}", "config", header4());
    println!("{:<16} {}", "random", row4(&random));

    let alphas = alpha_grid();
    for distance in Distance::ALL {
        let base = FinderConfig::default().with_distance(distance);
        let outcomes = ctx.run_alpha_sweep(&base, &alphas);
        for (alpha, outcome) in alphas.iter().zip(&outcomes) {
            println!(
                "{:<16} {}",
                format!("dist {} α={alpha:.1}", distance.level()),
                row4(&outcome.mean)
            );
        }
    }
}
