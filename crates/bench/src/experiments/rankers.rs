//! Comparative baselines: retrieval and fusion models from the
//! expert-search literature the paper builds on.
//!
//! The paper scores documents with a tf·irf² vector-space model (Eq. 1)
//! and fuses them with a weighted sum (Eq. 3). The literature it cites
//! offers alternatives at both layers:
//!
//! - retrieval: Okapi **BM25** instead of the VSM;
//! - fusion: the voting techniques of Macdonald & Ounis (the paper’s reference 18) —
//!   **Votes**, **CombMNZ**, **reciprocal rank**, **CombMAX** — instead of
//!   the Eq. 3 sum.
//!
//! All combinations run on identical evidence (same pipeline, same
//! attribution, window = 100, α = 0.6, distance 2, all networks).

use crate::table::{banner, header4, row4};
use crate::Bench;
use rightcrowd_core::aggregation::Aggregation;
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::{FinderConfig, Retrieval};

/// Prints the retrieval × fusion comparison against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();
    let base = FinderConfig::default();
    let attribution = ctx.attribution(&base);

    banner("Retrieval × fusion model comparison (All networks, distance 2)");
    let random = random_baseline(&bench.ds, 0x0BA5E);
    println!("{:<44} {}", "model", header4());
    println!("{:<44} {}", "random baseline", row4(&random));

    for (retrieval_label, retrieval) in [
        ("VSM tf·irf² (paper Eq. 1)", Retrieval::PaperVsm),
        ("BM25", Retrieval::Bm25(Default::default())),
    ] {
        for aggregation in Aggregation::ALL {
            let config = FinderConfig { retrieval, aggregation, ..base.clone() };
            let outcome = ctx.run_with_attribution(&config, &attribution);
            println!(
                "{:<44} {}",
                format!("{retrieval_label} + {aggregation}"),
                row4(&outcome.mean)
            );
        }
    }
    println!(
        "\nreading: the paper's weighted sum behaves like CombMNZ/Votes (all\n\
         reward evidence volume); CombMAX — best single document — is the\n\
         outlier, showing how much of the signal is volume rather than any\n\
         single resource. BM25 vs VSM mostly reshuffles within a few points."
    );
}
