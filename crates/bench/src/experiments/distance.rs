//! Experiment: contribution of resource distance and of each social
//! network — the paper's Table 3 and Fig. 9.
//!
//! Runs every (network mask, distance cap) combination at the paper's
//! operating point (window = 100, α = 0.6, no friends) and prints the four
//! headline metrics next to the paper's Table 3, plus the 11-point
//! precision/recall and DCG curves for the All configuration (Fig. 9).

use crate::table::{banner, dcg_curve, header4, p11, paper_row4, row4};
use crate::{paper, Bench};
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::FinderConfig;
use rightcrowd_types::{Distance, Platform, PlatformMask};

/// Prints Table 3 and Fig. 9 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Table 3 — networks × distances (window = 100, α = 0.6)");
    let random = random_baseline(&bench.ds, 0xD157);
    println!("{:<12} {}   (paper)", "config", header4());
    println!(
        "{:<12} {}   {}",
        "random",
        row4(&random),
        paper_row4(paper::RANDOM)
    );

    let masks = [
        ("All", PlatformMask::ALL),
        ("FB", PlatformMask::only(Platform::Facebook)),
        ("TW", PlatformMask::only(Platform::Twitter)),
        ("LI", PlatformMask::only(Platform::LinkedIn)),
    ];
    let mut all_curves = Vec::new();
    for (label, mask) in masks {
        for distance in Distance::ALL {
            let config = FinderConfig::default()
                .with_platforms(mask)
                .with_distance(distance);
            let outcome = ctx.run(&config);
            let reference = paper::table3(label, distance.level()).unwrap();
            println!(
                "{:<12} {}   {}",
                format!("{label} d{}", distance.level()),
                row4(&outcome.mean),
                paper_row4(reference)
            );
            if label == "All" {
                all_curves.push((distance, outcome.mean.p11, outcome.mean.dcg_curve));
            }
        }
    }
    println!(
        "\npaper shape: distance 0 is *below* random; adding distance 1 then 2\n\
         lifts every metric; TW@2 wins MAP/NDCG/NDCG@10 outright; LI trails."
    );

    banner("Fig. 9a — 11-point interpolated P/R, All networks");
    println!("{:<10} {}", "random", p11(&random.p11));
    for (distance, curve, _) in &all_curves {
        println!("{:<10} {}", format!("dist {}", distance.level()), p11(curve));
    }

    banner("Fig. 9b — DCG at 5/10/15/20 retrieved users, All networks");
    println!("{:<10} {}", "random", dcg_curve(&random.dcg_curve));
    for (distance, _, curve) in &all_curves {
        println!("{:<10} {}", format!("dist {}", distance.level()), dcg_curve(curve));
    }
}
