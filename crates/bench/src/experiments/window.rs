//! Experiment: window-size sensitivity — the paper's Fig. 6.
//!
//! Sweeps the fraction of matching resources fed to the expert ranker
//! (0.5%–10%) at distances 1 and 2 with α = 0.5, reporting MAP, MRR, NDCG
//! and NDCG@10; the fixed window of 100 resources (the paper's chosen
//! operating point, dashed lines in the figure) is printed alongside.

use crate::table::{banner, header4, row4};
use crate::Bench;
use rightcrowd_core::baseline::random_baseline;
use rightcrowd_core::{FinderConfig, WindowSize};
use rightcrowd_types::Distance;

/// Window fractions swept (the figure's x-axis, 0%–10%).
const FRACTIONS: [f64; 8] = [0.005, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.10];

/// Prints Fig. 6 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Fig. 6 — evaluation metrics at different window sizes (α = 0.5)");
    println!(
        "paper shape: MAP and NDCG grow with the window (up to ~+30% at\n\
         distance 2); MRR and NDCG@10 stay flat. The paper fixes window = 100.\n"
    );
    let random = random_baseline(&bench.ds, 0xF166);
    println!("{:<22} {}", "config", header4());
    println!("{:<22} {}", "random", row4(&random));

    for distance in [Distance::D1, Distance::D2] {
        let base = FinderConfig::default()
            .with_alpha(0.5)
            .with_distance(distance);
        // One attribution per distance serves the whole sweep (context
        // cache, keyed by traversal shape).
        let attribution = ctx.attribution(&base);
        for fraction in FRACTIONS {
            let config = base.clone().with_window(WindowSize::Fraction(fraction));
            let outcome = ctx.run_with_attribution(&config, &attribution);
            println!(
                "{:<22} {}",
                format!("dist {} @ {:>4.1}%", distance.level(), fraction * 100.0),
                row4(&outcome.mean)
            );
        }
        let fixed = base.clone().with_window(WindowSize::Count(100));
        let outcome = ctx.run_with_attribution(&fixed, &attribution);
        println!(
            "{:<22} {}",
            format!("dist {} @ 100 res", distance.level()),
            row4(&outcome.mean)
        );
    }
}
