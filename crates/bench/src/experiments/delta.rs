//! Experiment: retrieved-expert deltas — the paper's Fig. 11.
//!
//! For every query and every distance cap, the difference Δ between the
//! number of candidates the system retrieves and the number of experts the
//! ground truth expects. The paper reads the tightening of Δ with distance
//! as evidence that more social context → better-calibrated retrieval, but
//! notes that at distance 2 a third of the questions remain
//! under-represented and five are clearly over-represented.

use crate::table::banner;
use crate::Bench;
use rightcrowd_core::FinderConfig;
use rightcrowd_types::Distance;

/// Prints Fig. 11 against the shared bench.
pub fn run(bench: &Bench) {
    let ctx = bench.ctx();

    banner("Fig. 11 — Δ(retrieved − expected experts) per question");
    let mut per_distance = Vec::new();
    for distance in Distance::ALL {
        let config = FinderConfig::default().with_distance(distance);
        per_distance.push(ctx.retrieved_deltas(&config));
    }

    println!(
        "{:<4} {:<24} {:>8} {:>8} {:>8}",
        "q#", "domain", "Δ d0", "Δ d1", "Δ d2"
    );
    for (i, need) in bench.ds.queries().iter().enumerate() {
        println!(
            "{:<4} {:<24} {:>8} {:>8} {:>8}",
            i + 1,
            need.domain.slug(),
            per_distance[0][i],
            per_distance[1][i],
            per_distance[2][i]
        );
    }

    for (d, deltas) in per_distance.iter().enumerate() {
        let avg = deltas.iter().sum::<i64>() as f64 / deltas.len() as f64;
        let under = deltas.iter().filter(|&&x| x < 0).count();
        let over = deltas.iter().filter(|&&x| x > 3).count();
        println!(
            "\ndistance {d}: average Δ {avg:+.1}; {under}/30 under-represented; \
             {over} clearly over-represented (Δ > 3)"
        );
    }
    println!(
        "\npaper shape: at distance 2 about one third of the questions are\n\
         under-represented and ~5 clearly over-represented."
    );
}
