//! Experiment: dataset statistics — the paper's Fig. 5.
//!
//! Fig. 5a: distribution of resources and expert candidates among the
//! social networks, split by graph distance. Fig. 5b: distribution of
//! experts and average expertise per domain.

use crate::table::banner;
use crate::{paper, Bench};
use rightcrowd_synth::DatasetStats;
use rightcrowd_types::{Domain, Platform};

/// Prints Fig. 5a/5b against the shared bench.
pub fn run(bench: &Bench) {
    let stats = DatasetStats::compute(&bench.ds);

    banner("Fig. 5a — resources and candidates per social network");
    println!(
        "paper: {} candidates, ~{} resources (~{} English), {:.0}% with URLs",
        paper::PAPER_CANDIDATES,
        paper::PAPER_RESOURCES,
        paper::PAPER_ENGLISH_RESOURCES,
        paper::PAPER_URL_FRACTION * 100.0
    );
    println!(
        "ours : {} candidates, {} resources ({:.0}% English est.), {:.0}% with URLs\n",
        stats.candidates,
        stats.total_resources,
        stats.english_fraction * 100.0,
        stats.url_fraction * 100.0
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "network", "docs@d0", "docs@d1", "docs@d2", "docs total", "generated"
    );
    for platform in Platform::ALL {
        let p = &stats.platforms[platform.index()];
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
            platform.abbrev(),
            p.docs_at[0],
            p.docs_at[1],
            p.docs_at[2],
            p.total_docs,
            p.resources_generated
        );
    }
    println!(
        "\npaper shape: FB generates the most resources overall; TW has the most\n\
         distance-1 documents; ~95% of LI resources sit at distance 2."
    );

    banner("Fig. 5b — experts and expertise per domain");
    println!(
        "paper: ~{:.0} experts per domain on average, average expertise {:.2}",
        paper::FIG5B_AVG_EXPERTS,
        paper::FIG5B_AVG_EXPERTISE
    );
    println!(
        "ours : {:.1} experts per domain on average, average expertise {:.2}\n",
        bench.ds.ground_truth().mean_experts_per_domain(),
        bench.ds.ground_truth().mean_expertise()
    );
    println!(
        "{:<22} {:>8} {:>14} {:>18}",
        "domain", "experts", "avg expertise", "avg (experts only)"
    );
    for domain in Domain::ALL {
        let d = &stats.domains[domain.index()];
        println!(
            "{:<22} {:>8} {:>14.2} {:>18.2}",
            domain.label(),
            d.experts,
            d.avg_expertise,
            d.avg_expert_expertise
        );
    }
}
