//! `rc profile` — the sampling-profiler run harness.
//!
//! Drives a workload with [`rightcrowd_obs::Profiler`] attached and turns
//! the collected stack samples into artifacts:
//!
//! * `profile.folded` — collapsed stacks in Brendan Gregg's folded
//!   format, re-validated by [`rightcrowd_obs::validate_folded`] before
//!   anything is written (an artifact this binary cannot re-parse is a
//!   bug, not an artifact — same policy as the soak exposition).
//! * `flamegraph.svg` — a self-contained flamegraph rendered by
//!   [`rightcrowd_obs::flamegraph_svg`] and checked by
//!   [`rightcrowd_obs::validate_flamegraph_svg`].
//! * `profile_*` keys merged into `BENCH_<scale>.json` — sample count,
//!   the measured profiler overhead, and the top self-time spans — so
//!   `rc regress` gates the overhead budget
//!   ([`crate::regress::PROFILE_OVERHEAD_MAX`]) alongside the latency
//!   keys.
//!
//! Two modes, matching the CLI:
//!
//! * **bench** replays the per-query workload loop in three passes —
//!   profiler off, on, off again — and reports `profile_overhead_frac`
//!   as the profiled pass total against the mean of its two unprofiled
//!   brackets (totals charge every sampler interruption fairly; the
//!   bracket cancels linear clock-speed drift). The flight recorder is
//!   on in *all* passes (so the comparison isolates the sampler, not the
//!   recorder), and per-query CPU estimates are folded back into the
//!   retained records: `rc flight` / `rc explain` then show `cpu_ms`
//!   next to wall time.
//! * **soak** runs one [`crate::soak::SoakReport`] ladder with
//!   [`crate::soak::SoakOptions::profile`] set, reusing the profile that
//!   run collected (and its wide-event CPU attribution) for the
//!   artifacts. No overhead fraction: the soak harness already measures
//!   its own telemetry tax.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rightcrowd_core::ranker::rank_query;
use rightcrowd_core::FinderConfig;
use rightcrowd_obs::ProfileReport;

use crate::cli::ProfileMode;
use crate::regress::{parse_json, Json};
use crate::runner::Bench;
use crate::soak::{SoakOptions, SoakReport};

/// How many top self-time spans are merged into `BENCH_<scale>.json`
/// (`profile_top{1..N}_span` / `_frac`).
const TOP_SELF_SPANS: usize = 5;

/// Minimum wall clock each bench-mode pass should cover; the profiled
/// pass is additionally stretched to at least [`MIN_TICKS_PER_PASS`]
/// sampler intervals, so coarse single-core sampling still collects a
/// profile dense enough to rank spans by.
const MIN_PASS: Duration = Duration::from_millis(300);

/// Sampler wakeups the profiled pass should at least span.
const MIN_TICKS_PER_PASS: u64 = 96;

/// Rep-count bounds for the bench-mode passes.
const MIN_REPS: usize = 3;
const MAX_REPS: usize = 400;

/// Knobs of one `rc profile` run.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// What to drive while the sampler runs.
    pub mode: ProfileMode,
    /// Sampling frequency override (`None` = the prime ~997 µs default).
    pub hz: Option<u32>,
    /// Wall-clock length of the profiled soak phase (soak mode).
    pub duration: Duration,
    /// Worker-thread cap for the soak ladder (soak mode).
    pub threads: Option<usize>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            mode: ProfileMode::Bench,
            hz: None,
            duration: Duration::from_secs(30),
            threads: None,
        }
    }
}

/// Everything one `rc profile` run produced.
#[derive(Debug, Clone)]
pub struct ProfileRunReport {
    /// Dataset scale label.
    pub scale: String,
    /// The mode the run drove.
    pub mode: ProfileMode,
    /// The raw sampling profile.
    pub profile: ProfileReport,
    /// `(best profiled rep − best unprofiled rep) / best unprofiled rep`,
    /// floored at zero. `None` in soak mode.
    pub overhead_frac: Option<f64>,
    /// Queries the bench-mode workload covered per rep (0 in soak mode).
    pub queries: usize,
}

fn start_profiler(opts: &ProfileOptions) -> rightcrowd_obs::Profiler {
    match opts.hz {
        Some(hz) => rightcrowd_obs::Profiler::start_hz(hz),
        None => rightcrowd_obs::Profiler::start(),
    }
}

/// One rep of the bench-mode workload: the full serving path for every
/// query, flight-recorded, each iteration scoped to its query id.
/// Returns the rep's wall clock.
fn workload_rep(
    bench: &Bench,
    pipeline: &rightcrowd_core::AnalysisPipeline<'_>,
    attribution: &rightcrowd_core::Attribution,
    config: &FinderConfig,
) -> Duration {
    let n = bench.ds.candidates().len();
    let started = Instant::now();
    for need in bench.ds.queries() {
        let _cpu = rightcrowd_obs::prof::query_scope(need.id.index() as u64);
        let one = Instant::now();
        let query = pipeline.analyze_query(&need.text);
        let ranking = rank_query(&bench.corpus, attribution, config, &query, n);
        let elapsed = one.elapsed();
        let stats = rightcrowd_index::take_traversal_stats();
        rightcrowd_obs::flight::record(rightcrowd_obs::QueryRecord {
            query_id: need.id.index() as u64,
            label: need.text.clone(),
            domain: need.domain.label().to_string(),
            alpha: config.alpha,
            max_distance: config.max_distance.level() as u8,
            window: config.window.label(),
            latency_ns: elapsed.as_nanos() as u64,
            postings_traversed: stats.traversed,
            maxscore_admitted: stats.admitted,
            maxscore_pruned: stats.pruned,
            top_candidates: ranking.iter().take(5).map(|r| (r.person.0, r.score)).collect(),
            cpu_est_us: 0,
        });
        std::hint::black_box(ranking);
    }
    started.elapsed()
}

impl ProfileRunReport {
    /// Runs the requested mode under the profiler.
    pub fn run(bench: &Bench, opts: &ProfileOptions) -> ProfileRunReport {
        match opts.mode {
            ProfileMode::Bench => Self::run_bench(bench, opts),
            ProfileMode::Soak => Self::run_soak(bench, opts),
        }
    }

    fn run_bench(bench: &Bench, opts: &ProfileOptions) -> ProfileRunReport {
        let ctx = bench.ctx();
        let config = FinderConfig::default();
        let attribution = ctx.attribution(&config);
        let pipeline = rightcrowd_core::AnalysisPipeline::new(bench.ds.kb());
        rightcrowd_obs::flight::reset_flight();
        rightcrowd_obs::flight::set_flight_enabled(true);

        // Calibration rep (untouched by either measurement) sizes the
        // rep count so every pass covers at least MIN_PASS wall clock
        // and the profiled pass spans enough sampler ticks to be worth
        // folding.
        let interval_ns = match opts.hz {
            Some(hz) => rightcrowd_obs::prof::hz_interval_ns(hz),
            None => rightcrowd_obs::prof::default_interval_ns(),
        };
        let calibration = workload_rep(bench, &pipeline, &attribution, &config);
        let pass = MIN_PASS.max(Duration::from_nanos(MIN_TICKS_PER_PASS * interval_ns));
        let reps = (pass.as_secs_f64() / calibration.as_secs_f64().max(1e-9)).ceil() as usize;
        let reps = reps.clamp(MIN_REPS, MAX_REPS);
        let run_pass = || {
            let started = Instant::now();
            for _ in 0..reps {
                workload_rep(bench, &pipeline, &attribution, &config);
            }
            started.elapsed()
        };

        // The overhead estimate alternates unprofiled and profiled
        // passes (b p b p b p b) and takes the MEDIAN of each profiled
        // pass against the mean of its two unprofiled brackets. Pass
        // totals charge every sampler interruption fairly (minima would
        // let the profiled side win by luck of a rep no tick landed in),
        // each bracket cancels linear clock-speed drift, and the median
        // survives one pass polluted by an unrelated CPU-steal burst —
        // the dominant noise on small shared hosts. Flight recording
        // stays on throughout: the fraction must isolate the sampler, so
        // everything else is identical across the passes.
        const ROUNDS: usize = 3;
        eprintln!(
            "[profile] measuring overhead: {ROUNDS} rounds of bracketed passes, {reps} reps each..."
        );
        let mut profile = rightcrowd_obs::ProfileReport::default();
        let mut bases = Vec::with_capacity(ROUNDS + 1);
        let mut ratios = Vec::with_capacity(ROUNDS);
        bases.push(run_pass());
        for round in 0..ROUNDS {
            let profiler = start_profiler(opts);
            let profiled = run_pass();
            profile.merge(&profiler.stop());
            bases.push(run_pass());
            let base =
                (bases[round].as_secs_f64() + bases[round + 1].as_secs_f64()) / 2.0;
            ratios.push((profiled.as_secs_f64() - base) / base.max(1e-9));
        }
        rightcrowd_obs::flight::set_flight_enabled(false);

        // Per-query CPU estimates land on the retained flight records;
        // every record of a repeated query id carries the id's aggregate
        // cost across the profiled reps (documented on `cpu_est_us`).
        let cpu = profile.query_cpu_us();
        rightcrowd_obs::flight::attribute_cpu(&cpu);

        ratios.sort_by(f64::total_cmp);
        let overhead = ratios[ratios.len() / 2];
        eprintln!(
            "[profile] {} samples over {} ticks; overhead {:+.2}% (budget {:.0}%)",
            profile.samples,
            profile.ticks,
            overhead * 100.0,
            crate::regress::PROFILE_OVERHEAD_MAX * 100.0,
        );
        ProfileRunReport {
            scale: crate::runner::scale_label(),
            mode: ProfileMode::Bench,
            profile,
            overhead_frac: Some(overhead.max(0.0)),
            queries: bench.ds.queries().len(),
        }
    }

    fn run_soak(bench: &Bench, opts: &ProfileOptions) -> ProfileRunReport {
        let soak_opts = SoakOptions {
            duration: opts.duration,
            max_threads: opts.threads,
            profile: true,
            ..SoakOptions::default()
        };
        let report = SoakReport::run(bench, &soak_opts);
        ProfileRunReport {
            scale: crate::runner::scale_label(),
            mode: ProfileMode::Soak,
            profile: report.profile.unwrap_or_default(),
            overhead_frac: None,
            queries: 0,
        }
    }

    /// The folded collapsed-stack text, validated.
    pub fn folded(&self) -> Result<String, String> {
        let text = self.profile.to_folded();
        rightcrowd_obs::validate_folded(&text)
            .map_err(|e| format!("folded output failed validation: {e}"))?;
        Ok(text)
    }

    /// The flamegraph SVG, validated.
    pub fn svg(&self) -> Result<String, String> {
        let svg = rightcrowd_obs::flamegraph_svg(&self.profile.folded);
        rightcrowd_obs::validate_flamegraph_svg(&svg)
            .map_err(|e| format!("flamegraph SVG failed validation: {e}"))?;
        Ok(svg)
    }

    /// The keys merged into `BENCH_<scale>.json`: sample volume, the
    /// measured overhead (bench mode), and the top self-time spans.
    pub fn bench_entries(&self) -> Vec<(String, Json)> {
        let mut entries = vec![
            ("profile_samples".to_owned(), Json::Num(self.profile.samples as f64)),
            (
                "profile_interval_us".to_owned(),
                Json::Num(self.profile.interval_ns as f64 / 1_000.0),
            ),
        ];
        if let Some(frac) = self.overhead_frac {
            entries.push(("profile_overhead_frac".to_owned(), Json::Num(frac)));
        }
        for (i, (span, frac)) in
            self.profile.top_self(TOP_SELF_SPANS).into_iter().enumerate()
        {
            entries.push((format!("profile_top{}_span", i + 1), Json::Str(span)));
            entries.push((format!("profile_top{}_frac", i + 1), Json::Num(frac)));
        }
        entries
    }

    /// Merges [`ProfileRunReport::bench_entries`] into the bench snapshot
    /// at `path` (parse → insert → re-render, like the soak merge). A
    /// missing snapshot becomes a minimal one.
    pub fn merge_into_bench(&self, path: &std::path::Path) -> Result<(), String> {
        let mut doc = match std::fs::read_to_string(path) {
            Ok(text) => parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut m = BTreeMap::new();
                m.insert("scale".to_owned(), Json::Str(self.scale.clone()));
                m.insert("git_rev".to_owned(), Json::Str(crate::report::git_rev()));
                Json::Obj(m)
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        for (key, value) in self.bench_entries() {
            doc.set(&key, value);
        }
        std::fs::write(path, doc.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Writes the folded stacks and the flamegraph SVG (validated first)
    /// and merges the `profile_*` keys into `BENCH_<scale>.json` under
    /// `dir`. `folded_to` / `svg_to` override the default artifact paths
    /// (`<dir>/profile.folded`, `<dir>/flamegraph.svg`). Returns the
    /// paths written.
    pub fn write_to(
        &self,
        dir: &std::path::Path,
        folded_to: Option<&std::path::Path>,
        svg_to: Option<&std::path::Path>,
    ) -> Result<Vec<std::path::PathBuf>, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut written = Vec::new();

        let folded_path =
            folded_to.map_or_else(|| dir.join("profile.folded"), |p| p.to_path_buf());
        if let Some(parent) = folded_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(&folded_path, self.folded()?)
            .map_err(|e| format!("cannot write {}: {e}", folded_path.display()))?;
        written.push(folded_path);

        let svg_path = svg_to.map_or_else(|| dir.join("flamegraph.svg"), |p| p.to_path_buf());
        if let Some(parent) = svg_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(&svg_path, self.svg()?)
            .map_err(|e| format!("cannot write {}: {e}", svg_path.display()))?;
        written.push(svg_path);

        let bench_path = dir.join(format!("BENCH_{}.json", self.scale));
        self.merge_into_bench(&bench_path)?;
        written.push(bench_path);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> Bench {
        let ds = rightcrowd_synth::SyntheticDataset::generate(
            &rightcrowd_synth::DatasetConfig::tiny(),
        );
        let corpus = rightcrowd_core::AnalyzedCorpus::build(&ds);
        Bench { ds, corpus, generate_ms: 1.0, analyze_ms: 1.0 }
    }

    /// The profiler is observation-only: the ranking a query produces
    /// with the sampler attached is bit-identical to the ranking without
    /// it — same order, same float scores.
    #[test]
    fn rankings_are_bit_identical_with_the_profiler_attached() {
        let bench = tiny_bench();
        let ctx = bench.ctx();
        let config = FinderConfig::default();
        let attribution = ctx.attribution(&config);
        let pipeline = rightcrowd_core::AnalysisPipeline::new(bench.ds.kb());
        let n = bench.ds.candidates().len();
        let rank_all = || -> Vec<Vec<(u32, f64)>> {
            bench
                .ds
                .queries()
                .iter()
                .map(|need| {
                    let query = pipeline.analyze_query(&need.text);
                    rank_query(&bench.corpus, &attribution, &config, &query, n)
                        .into_iter()
                        .map(|r| (r.person.0, r.score))
                        .collect()
                })
                .collect()
        };
        let unprofiled = rank_all();
        let profiler = rightcrowd_obs::Profiler::start();
        let profiled = rank_all();
        let _ = profiler.stop();
        assert_eq!(unprofiled, profiled, "sampling must never perturb scores");
    }

    #[test]
    fn bench_mode_produces_valid_artifacts_and_attribution() {
        let bench = tiny_bench();
        let opts = ProfileOptions { hz: Some(4_000), ..ProfileOptions::default() };
        let report = ProfileRunReport::run(&bench, &opts);
        assert_eq!(report.mode, ProfileMode::Bench);
        let overhead = report.overhead_frac.expect("bench mode measures overhead");
        assert!(overhead.is_finite() && overhead >= 0.0);

        // Both artifacts pass their validators (vacuously under obs-off:
        // an empty profile folds to an empty file and a root-only SVG).
        let folded = report.folded().expect("folded must validate");
        let svg = report.svg().expect("svg must validate");
        assert!(svg.contains("</svg>"));

        // The BENCH merge lands next to existing keys without clobbering.
        let dir = std::env::temp_dir().join(format!("rc-profile-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let bench_json = dir.join(format!("BENCH_{}.json", report.scale));
        std::fs::write(&bench_json, "{\n  \"query_p50_ms\": 1.25\n}\n").unwrap();
        let written = report.write_to(&dir, None, None).expect("artifacts must write");
        assert_eq!(written.len(), 3);
        let merged = parse_json(&std::fs::read_to_string(&bench_json).unwrap()).unwrap();
        assert_eq!(merged.get("query_p50_ms").and_then(Json::as_f64), Some(1.25));
        assert!(merged.get("profile_samples").is_some());
        assert!(merged.get("profile_overhead_frac").is_some());
        std::fs::remove_dir_all(&dir).ok();

        if rightcrowd_obs::PROBES_ENABLED {
            assert!(report.profile.samples > 0, "the workload must be sampled");
            assert!(!folded.is_empty());
            // Per-query CPU reached the flight recorder: at least one
            // retained record carries a non-zero estimate.
            let attributed = rightcrowd_obs::flight::recent()
                .iter()
                .chain(rightcrowd_obs::flight::slowest(8).iter())
                .any(|r| r.cpu_est_us > 0);
            assert!(attributed, "flight records must carry cpu_est_us");
        } else {
            assert_eq!(report.profile.samples, 0);
        }
    }

    #[test]
    fn soak_mode_reuses_the_ladder_profile() {
        let bench = tiny_bench();
        let opts = ProfileOptions {
            mode: ProfileMode::Soak,
            duration: Duration::from_millis(250),
            threads: Some(1),
            ..ProfileOptions::default()
        };
        let report = ProfileRunReport::run(&bench, &opts);
        assert_eq!(report.mode, ProfileMode::Soak);
        assert!(report.overhead_frac.is_none(), "soak mode measures no overhead");
        report.folded().expect("folded must validate");
        report.svg().expect("svg must validate");
        if rightcrowd_obs::PROBES_ENABLED {
            assert!(report.profile.samples > 0, "the ladder must be sampled");
        }
        // No overhead key in the merge, but samples and interval are there.
        let entries = report.bench_entries();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"profile_samples"));
        assert!(keys.contains(&"profile_interval_us"));
        assert!(!keys.contains(&"profile_overhead_frac"));
    }
}
