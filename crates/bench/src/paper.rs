//! The paper's published numbers, for side-by-side reporting.
//!
//! Values are transcribed from the paper's Tables 2–4. Rows are
//! `(MAP, MRR, NDCG, NDCG@10)` unless noted. We do not chase absolute
//! equality (the authors measured live 2012 social feeds); the harness
//! prints these next to measured values so the *shape* comparison —
//! orderings, monotonicities, crossovers — is a one-glance check.

/// Metric quadruple `(MAP, MRR, NDCG, NDCG@10)`.
pub type Row4 = (f64, f64, f64, f64);

/// Random baseline (Tables 2–3).
pub const RANDOM: Row4 = (0.2648, 0.6285, 0.3924, 0.3147);

/// Table 2 — Twitter with/without friends. Key: `(distance, friends)`.
pub const TABLE2: [((usize, bool), Row4); 4] = [
    ((1, false), (0.3742, 0.7716, 0.4318, 0.4405)),
    ((1, true), (0.3844, 0.7833, 0.4576, 0.4625)),
    ((2, false), (0.4708, 0.6744, 0.5390, 0.4630)),
    ((2, true), (0.4390, 0.7555, 0.5249, 0.4769)),
];

/// Table 3 — networks × distances. Key: `(network label, distance)`.
#[allow(clippy::approx_constant)] // transcribed paper values, not constants
pub const TABLE3: [((&str, usize), Row4); 12] = [
    (("All", 0), (0.2023, 0.5875, 0.2843, 0.3055)),
    (("All", 1), (0.3488, 0.7816, 0.4580, 0.4310)),
    (("All", 2), (0.3736, 0.8453, 0.5001, 0.4592)),
    (("FB", 0), (0.0478, 0.3444, 0.0733, 0.0893)),
    (("FB", 1), (0.3682, 0.8055, 0.5071, 0.4377)),
    (("FB", 2), (0.2877, 0.8408, 0.4245, 0.4607)),
    (("TW", 0), (0.0600, 0.5777, 0.1257, 0.1529)),
    (("TW", 1), (0.3742, 0.7716, 0.4318, 0.4405)),
    (("TW", 2), (0.4708, 0.6744, 0.5390, 0.4630)),
    (("LI", 0), (0.1623, 0.6638, 0.2519, 0.2787)),
    (("LI", 1), (0.2607, 0.7166, 0.3676, 0.3394)),
    (("LI", 2), (0.3051, 0.7205, 0.4408, 0.3501)),
];

/// Looks up a Table 3 row.
pub fn table3(network: &str, distance: usize) -> Option<Row4> {
    TABLE3
        .iter()
        .find(|((n, d), _)| *n == network && *d == distance)
        .map(|&(_, row)| row)
}

/// Table 4 — per-domain `(MAP, MRR, NDCG@10)` triples for the `All`
/// configuration at each distance (the paper also breaks down per
/// network; the All columns carry the headline reading).
/// Key: `(domain slug, distance)`.
#[allow(clippy::approx_constant)] // transcribed paper values, not constants
#[allow(clippy::type_complexity)] // a flat transcription table, not an API
pub const TABLE4_ALL: [((&str, usize), (f64, f64, f64)); 21] = [
    (("computer", 0), (0.5474, 1.0, 0.6543)),
    (("computer", 1), (0.3681, 1.0, 0.4946)),
    (("computer", 2), (0.5052, 1.0, 0.6387)),
    (("location", 0), (0.2907, 0.5952, 0.4318)),
    (("location", 1), (0.3733, 0.8666, 0.5223)),
    (("location", 2), (0.2695, 0.7222, 0.4282)),
    (("movies", 0), (0.0796, 0.4900, 0.1628)),
    (("movies", 1), (0.2882, 0.7666, 0.3848)),
    (("movies", 2), (0.3541, 0.8000, 0.4198)),
    (("music", 0), (0.1109, 1.0, 0.3649)),
    (("music", 1), (0.2913, 0.4166, 0.3010)),
    (("music", 2), (0.3971, 1.0, 0.4379)),
    (("science", 0), (0.0513, 0.0833, 0.0506)),
    (("science", 1), (0.2524, 0.7500, 0.3552)),
    (("science", 2), (0.3201, 0.7500, 0.3609)),
    (("sport", 0), (0.2249, 0.7222, 0.3741)),
    (("sport", 1), (0.4608, 1.0, 0.5847)),
    (("sport", 2), (0.3061, 0.9167, 0.5430)),
    (("technology", 0), (0.1923, 0.4566, 0.2700)),
    (("technology", 1), (0.3476, 0.5400, 0.3387)),
    (("technology", 2), (0.3670, 0.8000, 0.3571)),
];

/// Looks up a Table 4 (All columns) row.
pub fn table4_all(domain_slug: &str, distance: usize) -> Option<(f64, f64, f64)> {
    TABLE4_ALL
        .iter()
        .find(|((s, d), _)| *s == domain_slug && *d == distance)
        .map(|&(_, row)| row)
}

/// Fig. 5b headline numbers: average experts per domain and average
/// expertise level.
pub const FIG5B_AVG_EXPERTS: f64 = 17.0;
pub const FIG5B_AVG_EXPERTISE: f64 = 3.57;

/// §3.1 headline dataset numbers.
pub const PAPER_CANDIDATES: usize = 40;
pub const PAPER_RESOURCES: usize = 330_000;
pub const PAPER_ENGLISH_RESOURCES: usize = 230_000;
pub const PAPER_URL_FRACTION: f64 = 0.70;

/// §3.3.3: additional resources analysed when Twitter friends are included.
pub const PAPER_FRIEND_RESOURCES: usize = 60_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_work() {
        assert_eq!(table3("TW", 2).unwrap().0, 0.4708);
        assert_eq!(table3("All", 0).unwrap().1, 0.5875);
        assert!(table3("XX", 0).is_none());
        assert_eq!(table4_all("science", 0).unwrap().0, 0.0513);
        assert!(table4_all("science", 3).is_none());
    }

    #[test]
    fn paper_shapes_hold_in_transcription() {
        // The transcription itself must encode the paper's findings.
        // (1) Distance 0 is worse than random on MAP for All.
        assert!(table3("All", 0).unwrap().0 < RANDOM.0);
        // (2) TW@2 is the best single-network MAP/NDCG.
        for n in ["All", "FB", "LI"] {
            assert!(table3("TW", 2).unwrap().0 > table3(n, 2).unwrap().0);
            assert!(table3("TW", 2).unwrap().2 > table3(n, 2).unwrap().2);
        }
        // (3) LI trails both other networks on NDCG@10 at distance 2 (on
        // MAP alone LI@2 actually edges FB@2 in the paper — its weakness
        // shows in the top-of-ranking metrics and in Table 4).
        assert!(table3("LI", 2).unwrap().3 < table3("FB", 2).unwrap().3);
        assert!(table3("LI", 2).unwrap().3 < table3("TW", 2).unwrap().3);
        // (4) Friends at distance 2 hurt MAP and NDCG (Table 2).
        let no = TABLE2[2].1;
        let yes = TABLE2[3].1;
        assert!(yes.0 < no.0 && yes.2 < no.2);
        // (5) LinkedIn distance-0 computer engineering is strong.
        assert!(table4_all("computer", 0).unwrap().0 > 0.5);
    }
}
