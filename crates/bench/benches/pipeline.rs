//! Criterion microbenchmarks for the engineering-critical paths: text
//! processing, entity annotation, corpus indexing, query matching and
//! end-to-end expert ranking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rightcrowd_core::{
    AnalysisPipeline, AnalyzedCorpus, Attribution, ExpertFinder, FinderConfig,
};
use rightcrowd_synth::{DatasetConfig, SyntheticDataset};
use std::hint::black_box;
use std::sync::OnceLock;

fn tiny() -> &'static (SyntheticDataset, AnalyzedCorpus) {
    static CELL: OnceLock<(SyntheticDataset, AnalyzedCorpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let corpus = AnalyzedCorpus::build(&ds);
        (ds, corpus)
    })
}

fn bench_text_processing(c: &mut Criterion) {
    let processor = rightcrowd_text::TextProcessor::default();
    let tweet = "RT @alice: MichaelPhelps is the best! Great freestyle gold medal \
                 at the London 2012 olympics http://t.co/xyz #swimming";
    c.bench_function("text/process_tweet", |b| {
        b.iter(|| black_box(processor.process(black_box(tweet))))
    });
    c.bench_function("text/porter_stem", |b| {
        b.iter(|| black_box(rightcrowd_text::porter_stem(black_box("recommendations"))))
    });
}

fn bench_langid(c: &mut Criterion) {
    let ident = rightcrowd_langid::LanguageIdentifier::new();
    let text = "I just finished a thirty minute training session at the swimming pool";
    c.bench_function("langid/classify", |b| {
        b.iter(|| black_box(ident.classify(black_box(text))))
    });
}

fn bench_annotation(c: &mut Criterion) {
    let kb = rightcrowd_kb::seed::standard();
    let annotator = rightcrowd_annotate::Annotator::new(&kb);
    let text = "milan won the derby against inter in the champions league \
                while michael phelps took freestyle gold at the olympics";
    c.bench_function("annotate/disambiguate", |b| {
        b.iter(|| black_box(annotator.annotate(black_box(text))))
    });
}

fn bench_corpus(c: &mut Criterion) {
    let (ds, _) = tiny();
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("analyze_and_index_tiny", |b| {
        b.iter(|| black_box(AnalyzedCorpus::build(black_box(ds))))
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let (ds, corpus) = tiny();
    let pipeline = AnalysisPipeline::new(ds.kb());
    let config = FinderConfig::default();
    let attribution = Attribution::compute(ds, corpus, &config);
    let query = pipeline.analyze_query("Can you list some famous European football teams?");

    c.bench_function("query/analyze", |b| {
        b.iter(|| {
            black_box(
                pipeline.analyze_query(black_box("famous songs of Michael Jackson please")),
            )
        })
    });
    c.bench_function("query/score_all", |b| {
        b.iter(|| black_box(corpus.index().score_all(black_box(&query), 0.6)))
    });
    c.bench_function("query/score_top_k", |b| {
        b.iter(|| {
            black_box(corpus.index().score_top_k(black_box(&query), 0.6, 100, |d| {
                attribution.is_attributed(d)
            }))
        })
    });
    c.bench_function("query/score_components", |b| {
        b.iter(|| black_box(corpus.index().score_components(black_box(&query))))
    });
    // One recombination = the marginal cost of an extra α point in a
    // factored sweep; compare against score_all (the naive per-α cost).
    let components = corpus.index().score_components(&query);
    c.bench_function("query/recombine", |b| {
        b.iter(|| black_box(rightcrowd_index::recombine(black_box(&components), 0.6)))
    });
    c.bench_function("query/recombine_top_k", |b| {
        b.iter(|| {
            black_box(rightcrowd_index::recombine_top_k(black_box(&components), 0.6, 100, |d| {
                attribution.is_attributed(d)
            }))
        })
    });
    c.bench_function("query/rank_experts", |b| {
        b.iter(|| {
            black_box(rightcrowd_core::ranker::rank_query(
                corpus,
                &attribution,
                &config,
                black_box(&query),
                ds.candidates().len(),
            ))
        })
    });
}

fn bench_attribution(c: &mut Criterion) {
    let (ds, corpus) = tiny();
    let mut group = c.benchmark_group("attribution");
    group.sample_size(20);
    group.bench_function("compute_default", |b| {
        b.iter_batched(
            FinderConfig::default,
            |config| black_box(Attribution::compute(ds, corpus, &config)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_alpha_sweep(c: &mut Criterion) {
    // The whole-workload Fig. 7 sweep at distance 2: the naive path pays
    // one posting traversal per (query, α), the factored path one per
    // query plus a recombination per α.
    let (ds, corpus) = tiny();
    let ctx = rightcrowd_core::EvalContext::new(ds, corpus);
    let config = FinderConfig::default();
    let attribution = ctx.attribution(&config);
    let alphas: Vec<f64> = (0..=10).map(|step| step as f64 / 10.0).collect();

    let mut group = c.benchmark_group("alpha_sweep");
    group.sample_size(10);
    group.bench_function("naive_11_points", |b| {
        b.iter(|| {
            for &alpha in &alphas {
                black_box(
                    ctx.run_with_attribution(&config.clone().with_alpha(alpha), &attribution),
                );
            }
        })
    });
    group.bench_function("factored_11_points", |b| {
        b.iter(|| black_box(ctx.run_alpha_sweep(&config, &alphas)))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let (ds, _) = tiny();
    let finder = ExpertFinder::build(ds, &FinderConfig::default());
    c.bench_function("e2e/rank_text", |b| {
        b.iter(|| black_box(finder.rank_text(black_box("why is copper a good conductor"))))
    });
}

criterion_group!(
    benches,
    bench_text_processing,
    bench_langid,
    bench_annotation,
    bench_corpus,
    bench_query,
    bench_attribution,
    bench_alpha_sweep,
    bench_end_to_end
);
criterion_main!(benches);
