//! End-to-end contract for the resident daemon: the bytes a live
//! `rightcrowd_serve::Server` running [`RankApp`] puts on a real TCP
//! socket are **bit-identical** to the in-process rendering of the same
//! query over the same (deterministically regenerated) tiny dataset.
//! This is the wire-level twin of the in-process identity unit test in
//! `serve_app` — it exercises the full stack: HTTP parsing, routing,
//! keep-alive, chunked metrics, WebSocket framing, and graceful drain.

use rightcrowd_bench::runner::Bench;
use rightcrowd_bench::serve_app::{rank_response, RankApp};
use rightcrowd_bench::soak::SoakClient;
use rightcrowd_core::{AnalyzedCorpus, FinderConfig};
use rightcrowd_serve::http::json_escape;
use rightcrowd_serve::{request_stop, reset_stop, Server, ServerConfig};
use rightcrowd_synth::{DatasetConfig, SyntheticDataset};

/// Builds a fresh tiny bench. Generation is deterministic, so two calls
/// yield identical datasets — one feeds the daemon, one computes the
/// expected responses client-side.
fn tiny_bench() -> Bench {
    let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
    let corpus = AnalyzedCorpus::build(&ds);
    Bench { ds, corpus, generate_ms: 0.0, analyze_ms: 0.0 }
}

/// Requests a drain on drop so a failing assertion inside the scope
/// still stops the server instead of deadlocking the scope join.
struct StopOnDrop;
impl Drop for StopOnDrop {
    fn drop(&mut self) {
        request_stop();
    }
}

#[test]
fn served_rank_is_bit_identical_to_in_process_rank_over_tcp() {
    let client_bench = tiny_bench();
    let config = FinderConfig::default();
    let attribution = client_bench.ctx().attribution(&config);

    let app = RankApp::new(tiny_bench(), "in-memory".to_owned(), None);

    reset_stop();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.local_addr().expect("bound address").to_string();

    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(&app));
        let stopper = StopOnDrop;

        let mut client = SoakClient::connect(&addr).expect("connect");

        // Every query in the tiny workload round-trips bit-identically,
        // all over ONE keep-alive connection.
        let queries: Vec<String> =
            client_bench.ds.queries().iter().map(|q| q.text.clone()).collect();
        for text in &queries {
            let (expected, ranking) =
                rank_response(&client_bench, &attribution, &config, text, 10);
            let body = format!("{{\"query\": {}, \"top\": 10}}", json_escape(text));
            let (status, served) = client.post("/rank", &body).expect("POST /rank");
            assert_eq!(status, 200, "query {text:?}");
            assert_eq!(
                served,
                expected.as_bytes(),
                "served /rank must be bit-identical for {text:?}"
            );
            assert!(!ranking.is_empty(), "tiny corpus ranks at least one expert");
        }

        // /explain smoke: decomposition JSON with the config echo.
        let body = format!("{{\"query\": {}, \"top\": 3}}", json_escape(&queries[0]));
        let (status, explained) = client.post("/explain", &body).expect("POST /explain");
        assert_eq!(status, 200);
        let explained = String::from_utf8(explained).expect("explain is UTF-8");
        assert!(explained.contains("\"experts\""), "explain carries the ranking");
        assert!(explained.contains("\"alpha\""), "explain echoes the config");

        // /healthz agrees with the app's own identity and served count.
        let (status, health) = client.get("/healthz").expect("GET /healthz");
        assert_eq!(status, 200);
        let health = String::from_utf8(health).expect("healthz is UTF-8");
        assert!(health.contains(app.fingerprint()), "fingerprint surfaces in /healthz");
        assert!(health.contains("\"status\": \"ok\""));

        // /metrics is valid OpenMetrics even when served chunked.
        let (status, metrics) = client.get("/metrics").expect("GET /metrics");
        assert_eq!(status, 200);
        let metrics = String::from_utf8(metrics).expect("metrics is UTF-8");
        if rightcrowd_obs::PROBES_ENABLED {
            let families = rightcrowd_obs::validate_openmetrics(&metrics)
                .expect("served exposition must validate");
            assert!(families > 0, "live registry exposes at least one family");
        } else {
            assert!(metrics.ends_with("# EOF\n"), "obs-off exposition still terminates");
        }

        assert_eq!(app.served(), queries.len() as u64 + 1, "rank + explain count as served");

        drop(stopper);
        run.join().expect("server thread");
    });
    reset_stop();
}
