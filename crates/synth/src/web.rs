//! The synthetic web — the stand-in for URL content extraction.
//!
//! The paper enriches resources with the text of linked web pages (fetched
//! through the Alchemy API). Here every generated URL resolves to a page in
//! this corpus; the analysis pipeline appends the page text to the linking
//! resource exactly as the paper's enrichment stage does.

use rightcrowd_types::PageId;

/// An in-memory corpus of generated web pages.
#[derive(Debug, Clone, Default)]
pub struct WebCorpus {
    pages: Vec<String>,
}

impl WebCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a page and returns its id (which doubles as its URL slug).
    pub fn add_page(&mut self, text: String) -> PageId {
        let id = PageId::new(self.pages.len() as u32);
        self.pages.push(text);
        id
    }

    /// The extracted text content of a page.
    pub fn text(&self, id: PageId) -> &str {
        &self.pages[id.index()]
    }

    /// The synthetic URL of a page, embeddable in resource text.
    pub fn url(id: PageId) -> String {
        format!("http://web.example/{}", id)
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut web = WebCorpus::new();
        let a = web.add_page("copper conducts electricity".into());
        let b = web.add_page("freestyle training plan".into());
        assert_eq!(web.text(a), "copper conducts electricity");
        assert_eq!(web.text(b), "freestyle training plan");
        assert_eq!(web.len(), 2);
    }

    #[test]
    fn urls_are_unique_per_page() {
        assert_ne!(WebCorpus::url(PageId::new(0)), WebCorpus::url(PageId::new(1)));
        assert!(WebCorpus::url(PageId::new(5)).starts_with("http://"));
    }
}
