//! Name pools for generated people and accounts.

/// First names for candidates and friend accounts (the paper's running
/// example characters lead the list).
pub const FIRST_NAMES: &[&str] = &[
    "Anna", "Alice", "Bob", "Charlie", "Chuck", "Peggy", "Marco", "Stefano", "Giulia", "Matteo",
    "Laura", "Paolo", "Francesca", "Luca", "Elena", "Davide", "Sara", "Andrea", "Chiara",
    "Simone", "Martina", "Federico", "Valentina", "Riccardo", "Silvia", "Tommaso", "Ilaria",
    "Nicola", "Beatrice", "Giorgio", "Elisa", "Filippo", "Camilla", "Pietro", "Sofia",
    "Lorenzo", "Aurora", "Gabriele", "Greta", "Edoardo",
];

/// Family names.
pub const LAST_NAMES: &[&str] = &[
    "Rossi", "Bianchi", "Ferrari", "Esposito", "Romano", "Colombo", "Ricci", "Marino", "Greco",
    "Bruno", "Gallo", "Conti", "DeLuca", "Costa", "Giordano", "Mancini", "Rizzo", "Lombardi",
    "Moretti", "Barbieri", "Fontana", "Santoro", "Mariani", "Rinaldi", "Caruso", "Ferrara",
    "Galli", "Martini", "Leone", "Longo", "Gentile", "Martinelli", "Vitale", "Lombardo",
    "Serra", "Coppola", "DeSantis", "Marchetti", "Parisi", "Villa",
];

/// Deterministically builds the `i`-th person name (unique for any `i`).
pub fn person_name(i: usize) -> String {
    let first = FIRST_NAMES[i % FIRST_NAMES.len()];
    let last = LAST_NAMES[(i / FIRST_NAMES.len() + i) % LAST_NAMES.len()];
    if i < FIRST_NAMES.len() * LAST_NAMES.len() {
        format!("{first} {last}")
    } else {
        format!("{first} {last} {}", i)
    }
}

/// Handle (account name) for a person name on a platform, e.g.
/// `"anna.rossi.tw"`.
pub fn handle(name: &str, platform_tag: &str) -> String {
    let mut h = name.to_lowercase().replace(' ', ".");
    h.push('.');
    h.push_str(platform_tag);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_unique_for_study_sizes() {
        let mut seen = HashSet::new();
        for i in 0..2000 {
            assert!(seen.insert(person_name(i)), "duplicate at {i}");
        }
    }

    #[test]
    fn paper_characters_lead() {
        assert!(person_name(0).starts_with("Anna"));
        assert!(person_name(1).starts_with("Alice"));
    }

    #[test]
    fn handle_format() {
        assert_eq!(handle("Anna Rossi", "tw"), "anna.rossi.tw");
    }
}
