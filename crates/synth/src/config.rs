//! Generator configuration.
//!
//! Every lever called out in DESIGN.md §6 lives here. The
//! [`DatasetConfig::paper`] preset reproduces the paper's scale (~330k
//! resources); [`DatasetConfig::small`] and [`DatasetConfig::tiny`] shrink
//! volumes for tests while keeping all structural properties.

use rightcrowd_types::{Domain, Platform};

/// Default RNG seed — every run with the same config is bit-identical.
pub const DEFAULT_SEED: u64 = 0xEDB7_2015;

/// Per-candidate volume knobs for one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformVolume {
    /// Own posts (created & owned) per candidate.
    pub own_posts: usize,
    /// Posts written by others but owned by the candidate (wall posts).
    pub foreign_wall_posts: usize,
    /// Resources the candidate annotates (likes / favourites).
    pub annotations: usize,
    /// Containers (groups / pages) the candidate relates to.
    pub memberships: usize,
    /// Followed (one-directional) external accounts per candidate.
    pub followed_accounts: usize,
    /// Friend (bidirectional) accounts per candidate.
    pub friends: usize,
}

/// Global (not per-candidate) volume knobs for one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformPools {
    /// Topical containers available per domain.
    pub containers_per_domain: usize,
    /// Recent posts retrieved per container.
    pub posts_per_container: usize,
    /// Followable topical accounts (celebrities / brands) per domain.
    pub celebrities_per_domain: usize,
    /// Posts per followable account.
    pub posts_per_celebrity: usize,
    /// Posts per friend account.
    pub posts_per_friend: usize,
}

/// The complete generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// RNG seed; same seed + same config ⇒ identical dataset.
    pub seed: u64,
    /// Number of candidate experts (the paper recruited 40).
    pub candidates: usize,
    /// Per-platform per-candidate volumes, indexed by [`Platform::index`].
    pub volumes: [PlatformVolume; Platform::COUNT],
    /// Per-platform global pools, indexed by [`Platform::index`].
    pub pools: [PlatformPools; Platform::COUNT],
    /// Probability that a resource is English (paper: ~230k of 330k).
    pub english_rate: f64,
    /// Probability that a resource links an external web page (paper: 70%).
    pub url_rate: f64,
    /// Fraction of candidates who are "silent" — their posting volume is
    /// slashed regardless of self-assessed expertise (§3.7 trust analysis).
    pub silent_rate: f64,
    /// Fraction of candidates posting mostly off-topic chatter
    /// ("flagship/promotional accounts" in the paper's terms).
    pub flagship_rate: f64,
    /// Probability that a candidate profile leaks location information
    /// (city names) regardless of Location expertise — the confound the
    /// paper blames for weak Location results.
    pub profile_location_leak: f64,
}

/// Platform–domain affinity: how likely content of `domain` is on
/// `platform`, before user interest is mixed in. Rows follow the paper's
/// qualitative reading (§3.5–3.7): Facebook skews to entertainment
/// (location, movies, music, sport); Twitter covers everything with a
/// tech/science/sport lean; LinkedIn is work-only.
pub fn platform_domain_affinity(platform: Platform, domain: Domain) -> f64 {
    use Domain::*;
    match platform {
        Platform::Facebook => match domain {
            ComputerEngineering => 0.3,
            Location => 1.2,
            MoviesTv => 1.4,
            Music => 1.3,
            Science => 0.25,
            Sport => 1.2,
            TechnologyGames => 0.7,
        },
        Platform::Twitter => match domain {
            ComputerEngineering => 1.3,
            Location => 0.7,
            MoviesTv => 0.9,
            Music => 0.9,
            Science => 1.1,
            Sport => 1.2,
            TechnologyGames => 1.3,
        },
        Platform::LinkedIn => match domain {
            ComputerEngineering => 1.6,
            Location => 0.15,
            MoviesTv => 0.1,
            Music => 0.1,
            Science => 0.8,
            Sport => 0.15,
            TechnologyGames => 0.6,
        },
    }
}

/// Probability that a resource on `platform` is generic chatter rather
/// than domain content.
pub fn platform_chatter_rate(platform: Platform) -> f64 {
    match platform {
        Platform::Facebook => 0.45,
        Platform::Twitter => 0.30,
        Platform::LinkedIn => 0.15,
    }
}

impl DatasetConfig {
    /// The paper-scale preset (~300k+ resources, 40 candidates).
    pub fn paper() -> Self {
        DatasetConfig {
            seed: DEFAULT_SEED,
            candidates: 40,
            volumes: [
                // Facebook: the most resources overall; rich walls; pages
                // and groups; friends exist but are privacy-walled (the
                // generator still creates them — traversal excludes them
                // because all FB ties are friendships).
                PlatformVolume {
                    own_posts: 600,
                    foreign_wall_posts: 90,
                    annotations: 150,
                    memberships: 10,
                    followed_accounts: 0,
                    friends: 25,
                },
                // Twitter: many own tweets and many followed accounts —
                // the paper's "highest number of resources at distance 1".
                PlatformVolume {
                    own_posts: 700,
                    foreign_wall_posts: 30,
                    annotations: 120,
                    memberships: 0,
                    followed_accounts: 80,
                    friends: 25,
                },
                // LinkedIn: almost everything is in groups.
                PlatformVolume {
                    own_posts: 12,
                    foreign_wall_posts: 2,
                    annotations: 8,
                    memberships: 6,
                    followed_accounts: 0,
                    friends: 0,
                },
            ],
            pools: [
                PlatformPools {
                    containers_per_domain: 9,
                    posts_per_container: 1400,
                    celebrities_per_domain: 0,
                    posts_per_celebrity: 0,
                    // Facebook friends are privacy-walled (the paper could
                    // read only 0.6% of them): their posts are never
                    // collected, so none are generated.
                    posts_per_friend: 0,
                },
                PlatformPools {
                    containers_per_domain: 0,
                    posts_per_container: 0,
                    celebrities_per_domain: 28,
                    posts_per_celebrity: 420,
                    posts_per_friend: 60,
                },
                PlatformPools {
                    containers_per_domain: 5,
                    posts_per_container: 550,
                    celebrities_per_domain: 0,
                    posts_per_celebrity: 0,
                    posts_per_friend: 0,
                },
            ],
            english_rate: 0.70,
            url_rate: 0.70,
            silent_rate: 0.15,
            flagship_rate: 0.08,
            profile_location_leak: 0.6,
        }
    }

    /// A mid-size preset (~10× smaller than paper scale) for fast
    /// experiment iterations and integration tests.
    pub fn small() -> Self {
        Self::paper().scaled(0.1)
    }

    /// A miniature preset for unit tests and doctests (a few thousand
    /// documents). Keeps the paper's 40 candidates so that the random
    /// baseline (20 of 40 users) and the ground-truth statistics stay in
    /// the paper's regime; only volumes shrink.
    pub fn tiny() -> Self {
        Self::paper().scaled(0.02)
    }

    /// Returns a copy with all volume knobs multiplied by `factor`
    /// (minimum 1 where the original was non-zero, so structure survives).
    pub fn scaled(&self, factor: f64) -> Self {
        fn scale(v: usize, factor: f64) -> usize {
            if v == 0 {
                0
            } else {
                ((v as f64 * factor).round() as usize).max(1)
            }
        }
        let mut out = self.clone();
        for vol in out.volumes.iter_mut() {
            vol.own_posts = scale(vol.own_posts, factor);
            vol.foreign_wall_posts = scale(vol.foreign_wall_posts, factor);
            vol.annotations = scale(vol.annotations, factor);
            vol.memberships = scale(vol.memberships, factor.sqrt());
            vol.followed_accounts = scale(vol.followed_accounts, factor.sqrt());
            vol.friends = scale(vol.friends, factor.sqrt());
        }
        for pool in out.pools.iter_mut() {
            pool.containers_per_domain = scale(pool.containers_per_domain, factor.sqrt());
            pool.posts_per_container = scale(pool.posts_per_container, factor.sqrt());
            pool.celebrities_per_domain = scale(pool.celebrities_per_domain, factor.sqrt());
            pool.posts_per_celebrity = scale(pool.posts_per_celebrity, factor.sqrt());
            pool.posts_per_friend = scale(pool.posts_per_friend, factor.sqrt());
        }
        out
    }

    /// Volume knobs for `platform`.
    pub fn volume(&self, platform: Platform) -> &PlatformVolume {
        &self.volumes[platform.index()]
    }

    /// Pool knobs for `platform`.
    pub fn pools(&self, platform: Platform) -> &PlatformPools {
        &self.pools[platform.index()]
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_study_shape() {
        let cfg = DatasetConfig::paper();
        assert_eq!(cfg.candidates, 40);
        assert!((cfg.english_rate - 0.70).abs() < 1e-12);
        assert!((cfg.url_rate - 0.70).abs() < 1e-12);
        // FB generates the most own+container volume; LI the least.
        let fb = cfg.volume(Platform::Facebook);
        let li = cfg.volume(Platform::LinkedIn);
        assert!(fb.own_posts > 10 * li.own_posts);
        // Twitter is the only platform with followed accounts.
        assert!(cfg.volume(Platform::Twitter).followed_accounts > 0);
        assert_eq!(cfg.volume(Platform::Facebook).followed_accounts, 0);
    }

    #[test]
    fn affinity_encodes_platform_character() {
        use Domain::*;
        // LinkedIn loves work topics, shuns entertainment.
        assert!(
            platform_domain_affinity(Platform::LinkedIn, ComputerEngineering)
                > platform_domain_affinity(Platform::LinkedIn, Music) * 5.0
        );
        // Facebook prefers entertainment over science.
        assert!(
            platform_domain_affinity(Platform::Facebook, MoviesTv)
                > platform_domain_affinity(Platform::Facebook, Science) * 3.0
        );
        // Twitter is comparatively balanced and strong on tech.
        assert!(platform_domain_affinity(Platform::Twitter, ComputerEngineering) > 1.0);
    }

    #[test]
    fn scaled_preserves_structure() {
        let tiny = DatasetConfig::tiny();
        assert!(tiny.volume(Platform::Twitter).followed_accounts >= 1);
        assert_eq!(tiny.volume(Platform::Facebook).followed_accounts, 0);
        assert!(tiny.volume(Platform::Facebook).own_posts >= 1);
        assert!(
            tiny.volume(Platform::Facebook).own_posts
                < DatasetConfig::paper().volume(Platform::Facebook).own_posts
        );
    }

    #[test]
    fn chatter_rates_ordered_fb_tw_li() {
        assert!(platform_chatter_rate(Platform::Facebook) > platform_chatter_rate(Platform::Twitter));
        assert!(platform_chatter_rate(Platform::Twitter) > platform_chatter_rate(Platform::LinkedIn));
    }
}
