//! Dataset statistics — the numbers behind the paper's Fig. 5.
//!
//! Fig. 5a plots, per social network, the number of expert candidates and
//! the number of resources at each distance; Fig. 5b plots the number of
//! experts and the average expertise per domain. [`DatasetStats::compute`]
//! derives both from a generated dataset.

use crate::dataset::SyntheticDataset;
use rightcrowd_graph::CollectOptions;
use rightcrowd_langid::LanguageIdentifier;
use rightcrowd_types::{Distance, Domain, Platform, PlatformMask};

/// Per-platform, per-distance document counts (union over candidates, each
/// document counted at its minimum distance for each candidate and
/// deduplicated globally per distance level).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformStats {
    /// Documents reachable at each distance (0, 1, 2) for ≥ 1 candidate.
    pub docs_at: [usize; Distance::COUNT],
    /// Total unique documents reachable within distance 2.
    pub total_docs: usize,
    /// Raw resource count generated on this platform (reachable or not).
    pub resources_generated: usize,
}

/// Per-domain ground-truth statistics (Fig. 5b).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DomainStats {
    /// Number of domain experts (above-average rule).
    pub experts: usize,
    /// Average derived expertise over the whole population.
    pub avg_expertise: f64,
    /// Average derived expertise of the domain's experts only.
    pub avg_expert_expertise: f64,
}

/// The full statistics bundle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetStats {
    /// Per-platform stats, indexed by [`Platform::index`].
    pub platforms: [PlatformStats; Platform::COUNT],
    /// Per-domain stats, indexed by [`Domain::index`].
    pub domains: [DomainStats; Domain::COUNT],
    /// Number of candidate experts.
    pub candidates: usize,
    /// Total resources generated across platforms.
    pub total_resources: usize,
    /// Fraction of resources carrying at least one URL.
    pub url_fraction: f64,
    /// Estimated fraction of English resources (langid over a sample).
    pub english_fraction: f64,
}

/// Sample size for the language-fraction estimate.
const LANG_SAMPLE: usize = 2000;

impl DatasetStats {
    /// Computes all statistics for `ds`.
    pub fn compute(ds: &SyntheticDataset) -> Self {
        let mut stats = DatasetStats {
            candidates: ds.candidates().len(),
            total_resources: ds.graph().resources().len(),
            ..Default::default()
        };

        // Fig. 5a: per-platform reachable documents by distance.
        for platform in Platform::ALL {
            let mut at: [std::collections::BTreeSet<rightcrowd_graph::DocId>; Distance::COUNT] =
                Default::default();
            for person in ds.candidates() {
                let items = ds.graph().collect_evidence(
                    person.id,
                    &CollectOptions {
                        platforms: PlatformMask::only(platform),
                        ..Default::default()
                    },
                );
                for item in items {
                    at[item.distance.level()].insert(item.doc);
                }
            }
            let slot = &mut stats.platforms[platform.index()];
            let mut union = std::collections::BTreeSet::new();
            for (level, set) in at.iter().enumerate() {
                slot.docs_at[level] = set.len();
                union.extend(set.iter().copied());
            }
            slot.total_docs = union.len();
            slot.resources_generated = ds
                .graph()
                .resources()
                .iter()
                .filter(|r| r.platform == platform)
                .count();
        }

        // Fig. 5b: per-domain expert statistics.
        let gt = ds.ground_truth();
        for domain in Domain::ALL {
            let experts = gt.experts(domain);
            let slot = &mut stats.domains[domain.index()];
            slot.experts = experts.len();
            slot.avg_expertise = gt.domain_average(domain);
            slot.avg_expert_expertise = if experts.is_empty() {
                0.0
            } else {
                experts.iter().map(|&p| gt.expertise(p, domain)).sum::<f64>()
                    / experts.len() as f64
            };
        }

        // URL fraction.
        let with_url = ds
            .graph()
            .resources()
            .iter()
            .filter(|r| !r.links.is_empty())
            .count();
        stats.url_fraction = if stats.total_resources == 0 {
            0.0
        } else {
            with_url as f64 / stats.total_resources as f64
        };

        // English fraction over a deterministic sample.
        let ident = LanguageIdentifier::new();
        let resources = ds.graph().resources();
        if !resources.is_empty() {
            let step = (resources.len() / LANG_SAMPLE).max(1);
            let mut english = 0usize;
            let mut sampled = 0usize;
            for r in resources.iter().step_by(step) {
                sampled += 1;
                if ident.retains(&r.text) {
                    english += 1;
                }
            }
            stats.english_fraction = english as f64 / sampled as f64;
        }

        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    #[test]
    fn stats_reflect_paper_marginals_in_tiny_dataset() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let stats = DatasetStats::compute(&ds);

        assert_eq!(stats.candidates, DatasetConfig::tiny().candidates);
        assert!(stats.total_resources > 500);

        // URL rate near the configured 70%.
        assert!((0.5..=0.9).contains(&stats.url_fraction), "{}", stats.url_fraction);

        // English fraction near the configured 70%. Langid mislabels some
        // very short chatter, so accept a broad band.
        assert!(
            (0.5..=0.95).contains(&stats.english_fraction),
            "{}",
            stats.english_fraction
        );

        // LinkedIn's reachable documents concentrate at distance 2.
        let li = &stats.platforms[Platform::LinkedIn.index()];
        assert!(li.docs_at[2] > li.docs_at[1]);

        // Every domain has experts and a positive average.
        for d in Domain::ALL {
            let ds = &stats.domains[d.index()];
            assert!(ds.experts > 0);
            assert!(ds.avg_expertise > 1.0);
            assert!(ds.avg_expert_expertise > ds.avg_expertise);
        }
    }

    #[test]
    fn distance_counts_are_cumulative_in_reach() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let stats = DatasetStats::compute(&ds);
        for platform in Platform::ALL {
            let p = &stats.platforms[platform.index()];
            // d0 docs = candidate profiles on that platform.
            assert_eq!(p.docs_at[0], stats.candidates);
            assert!(p.total_docs <= p.docs_at.iter().sum::<usize>());
        }
    }
}
