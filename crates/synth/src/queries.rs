//! The evaluation workload: 30 expertise needs over 7 domains.
//!
//! The paper (§3.1) devised 30 textual queries spanning its seven domains
//! and gives one example per domain; those seven are reproduced verbatim
//! and the remaining 23 are written in the same register, each anchored to
//! at least one knowledge-base entity so that entity matching has teeth.

use rightcrowd_types::{Domain, QueryId};

/// One expertise need of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpertiseNeed {
    /// Stable query id (position in the workload).
    pub id: QueryId,
    /// The natural-language question.
    pub text: String,
    /// The domain the need refers to.
    pub domain: Domain,
}

/// The raw (text, domain) workload. The first seven entries are the
/// paper's own examples.
const WORKLOAD: &[(&str, Domain)] = &[
    // --- the paper's verbatim examples -------------------------------
    ("Which PHP function can I use in order to obtain the length of a string?", Domain::ComputerEngineering),
    ("Can you list some restaurants in Milan?", Domain::Location),
    ("Can you list some famous actors in how I met your mother?", Domain::MoviesTv),
    ("Can you list some famous songs of Michael Jackson?", Domain::Music),
    ("Why is copper a good conductor?", Domain::Science),
    ("Can you list some famous European football teams?", Domain::Sport),
    ("I am looking for a graphic card to play Diablo 3 but I don't want to spend too much. What do you suggest?", Domain::TechnologyGames),
    // --- computer engineering -----------------------------------------
    ("How do I write a regular expression that matches an email address in Python?", Domain::ComputerEngineering),
    ("What is the best way to index a large MySQL database table?", Domain::ComputerEngineering),
    ("Can someone explain recursion with a simple Java example?", Domain::ComputerEngineering),
    // --- location -------------------------------------------------------
    ("What should I visit in Rome in two days, beyond the Colosseum?", Domain::Location),
    ("Is the Navigli area of Milan nice for an evening walk?", Domain::Location),
    ("Which museums in Paris are worth the ticket besides the Eiffel Tower area?", Domain::Location),
    ("Any hotel recommendations near Central Park in New York?", Domain::Location),
    // --- movies & tv ----------------------------------------------------
    ("Is Breaking Bad worth watching after the first season?", Domain::MoviesTv),
    ("Who directed Inception and what else did he make?", Domain::MoviesTv),
    ("Which episodes of Game of Thrones are the best ones?", Domain::MoviesTv),
    ("Can you suggest a sitcom similar to Friends?", Domain::MoviesTv),
    // --- music ----------------------------------------------------------
    ("What are the greatest songs by Queen to start with?", Domain::Music),
    ("Which album of The Beatles should I listen to first?", Domain::Music),
    ("Is the Thriller album really the best selling record ever?", Domain::Music),
    ("Can you recommend a good live concert recording of U2?", Domain::Music),
    // --- science --------------------------------------------------------
    ("How does DNA store genetic information?", Domain::Science),
    ("What exactly did the discovery of the Higgs boson at CERN prove?", Domain::Science),
    ("Why does gravity bend light according to relativity?", Domain::Science),
    // --- sport ----------------------------------------------------------
    ("How many gold medals did Michael Phelps win at the Olympics?", Domain::Sport),
    ("Who will win the derby between AC Milan and Inter this year?", Domain::Sport),
    ("What is a good freestyle swimming training plan for beginners?", Domain::Sport),
    // --- technology & games ----------------------------------------------
    ("Should I buy a Nvidia or an AMD graphics card for gaming?", Domain::TechnologyGames),
    ("Is the new iPhone better than the top Android phones?", Domain::TechnologyGames),
];

/// Builds the 30-query workload with stable ids.
pub fn workload() -> Vec<ExpertiseNeed> {
    WORKLOAD
        .iter()
        .enumerate()
        .map(|(i, &(text, domain))| ExpertiseNeed {
            id: QueryId::new(i as u32),
            text: text.to_owned(),
            domain,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_queries() {
        // The table above has 31 entries? Count exactly — the workload
        // must be 30, like the paper's.
        assert_eq!(workload().len(), 30);
    }

    #[test]
    fn every_domain_covered_by_at_least_three() {
        let w = workload();
        for d in Domain::ALL {
            let n = w.iter().filter(|q| q.domain == d).count();
            assert!(n >= 3, "{d}: only {n} queries");
        }
    }

    #[test]
    fn paper_examples_lead_the_workload() {
        let w = workload();
        assert!(w[0].text.contains("PHP function"));
        assert_eq!(w[0].domain, Domain::ComputerEngineering);
        assert!(w[4].text.contains("copper"));
        assert_eq!(w[6].domain, Domain::TechnologyGames);
    }

    #[test]
    fn ids_are_positional() {
        for (i, q) in workload().iter().enumerate() {
            assert_eq!(q.id.index(), i);
        }
    }
}
