//! Text generation: domain sentences, chatter, multilingual noise.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rightcrowd_kb::{vocab, KnowledgeBase};
use rightcrowd_types::{Domain, EntityId, Language};

/// Generates resource / profile / page text flavoured by domain topic
/// models tied to the knowledge base (so that every entity mention is
/// annotatable).
#[derive(Debug, Clone, Copy)]
pub struct ContentGenerator<'kb> {
    kb: &'kb KnowledgeBase,
}

impl<'kb> ContentGenerator<'kb> {
    /// Binds a generator to a knowledge base.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        ContentGenerator { kb }
    }

    /// Picks an entity of `domain`, biased towards the hand-written core
    /// (the first entities of each domain) — core entities are the
    /// "famous" ones real users actually mention.
    pub fn pick_entity(&self, rng: &mut StdRng, domain: Domain) -> EntityId {
        let ids = self.kb.entities_in_domain(domain);
        debug_assert!(!ids.is_empty());
        let core = (ids.len() / 4).max(1);
        if rng.gen_bool(0.7) {
            ids[rng.gen_range(0..core)]
        } else {
            ids[rng.gen_range(0..ids.len())]
        }
    }

    /// A short domain-flavoured text with `words` vocabulary words and
    /// `entities` entity mentions, in natural lower-case prose order.
    pub fn domain_text(
        &self,
        rng: &mut StdRng,
        domain: Domain,
        words: usize,
        entities: usize,
    ) -> String {
        let pool = vocab::domain_words(domain);
        let mut parts: Vec<String> = Vec::with_capacity(words + entities);
        for _ in 0..words {
            parts.push((*pool.choose(rng).expect("non-empty vocab")).to_owned());
        }
        for _ in 0..entities {
            let id = self.pick_entity(rng, domain);
            parts.push(self.kb.entity(id).title.to_lowercase());
        }
        parts.shuffle(rng);
        // Sprinkle a couple of function words for naturalness.
        let glue = ["the", "a", "my", "this", "really", "about", "with"];
        let mut out = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                out.push(' ');
                if rng.gen_bool(0.25) {
                    out.push_str(glue.choose(rng).unwrap());
                    out.push(' ');
                }
            }
            out.push_str(p);
        }
        out
    }

    /// Generic domain-free chatter ("great coffee with the friends today").
    /// Function words are mixed in so that language identification sees
    /// natural English (real chatter is full of them).
    pub fn chatter(&self, rng: &mut StdRng, words: usize) -> String {
        const GLUE: [&str; 8] = ["the", "with", "and", "at", "for", "was", "so", "a"];
        let mut out = String::new();
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            if rng.gen_bool(0.35) {
                out.push_str(GLUE.choose(rng).unwrap());
                out.push(' ');
            }
            out.push_str(vocab::GENERIC.choose(rng).unwrap());
        }
        out
    }

    /// A non-English snippet in a random supported language, sampled from
    /// the language-identification seed corpora (so langid reliably
    /// filters it out).
    pub fn non_english(&self, rng: &mut StdRng, words: usize) -> (Language, String) {
        use rightcrowd_langid::corpora;
        let (lang, corpus) = *[
            (Language::Italian, corpora::ITALIAN),
            (Language::French, corpora::FRENCH),
            (Language::German, corpora::GERMAN),
            (Language::Spanish, corpora::SPANISH),
        ]
        .choose(rng)
        .unwrap();
        let tokens: Vec<&str> = corpus.split_whitespace().collect();
        let take = words.min(tokens.len()).max(1);
        let start = rng.gen_range(0..=tokens.len() - take);
        (lang, tokens[start..start + take].join(" "))
    }

    /// Long-form text for a generated web page about `domain`.
    pub fn page_text(&self, rng: &mut StdRng, domain: Domain) -> String {
        let words = rng.gen_range(25..45);
        let entities = rng.gen_range(2..5);
        self.domain_text(rng, domain, words, entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rightcrowd_kb::seed;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn domain_text_contains_domain_vocabulary() {
        let kb = seed::standard();
        let g = ContentGenerator::new(&kb);
        let text = g.domain_text(&mut rng(), Domain::Sport, 8, 1);
        let pool: std::collections::HashSet<&str> = vocab::SPORT.iter().copied().collect();
        let hits = text.split_whitespace().filter(|w| pool.contains(w)).count();
        assert!(hits >= 4, "sporty words in: {text}");
    }

    #[test]
    fn entity_mentions_are_annotatable() {
        let kb = seed::standard();
        let g = ContentGenerator::new(&kb);
        let mut r = rng();
        for _ in 0..20 {
            let e = g.pick_entity(&mut r, Domain::Music);
            let title = kb.entity(e).title.to_lowercase();
            assert!(
                !kb.anchor_candidates(&title).is_empty(),
                "title {title} must be an anchor"
            );
        }
    }

    #[test]
    fn chatter_is_generic() {
        let kb = seed::standard();
        let g = ContentGenerator::new(&kb);
        let text = g.chatter(&mut rng(), 6);
        assert!(text.split_whitespace().count() >= 6); // glue words may be added
    }

    #[test]
    fn non_english_is_filtered_by_langid() {
        let kb = seed::standard();
        let g = ContentGenerator::new(&kb);
        let ident = rightcrowd_langid::LanguageIdentifier::new();
        let mut r = rng();
        let mut non_english_hits = 0;
        for _ in 0..20 {
            let (lang, text) = g.non_english(&mut r, 12);
            assert_ne!(lang, Language::English);
            if !ident.retains(&text) {
                non_english_hits += 1;
            }
        }
        // Language ID is statistical; the overwhelming majority must be
        // recognised as non-English.
        assert!(non_english_hits >= 18, "{non_english_hits}/20");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let kb = seed::standard();
        let g = ContentGenerator::new(&kb);
        let a = g.domain_text(&mut StdRng::seed_from_u64(3), Domain::Science, 10, 2);
        let b = g.domain_text(&mut StdRng::seed_from_u64(3), Domain::Science, 10, 2);
        assert_eq!(a, b);
    }
}
