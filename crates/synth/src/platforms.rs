//! Per-platform social-graph generation.
//!
//! Each platform generator reproduces the structural character the paper
//! observed (§3.1, Fig. 5a):
//!
//! - **Facebook** — bidirectional friendships only; walls with own and
//!   foreign posts; topical groups/pages with large post volumes
//!   (distance 2); friends exist but are privacy-walled (no posts).
//! - **Twitter** — directed follows towards topical "celebrity" accounts
//!   whose profiles are distance-1 evidence and whose tweets are
//!   distance-2 evidence; mutual-follow friends with their *own*
//!   (uncorrelated) interests; favourites as annotations.
//! - **LinkedIn** — rich work profiles (strong distance-0 signal for
//!   work domains), very few status updates, almost all resources in
//!   groups (the paper's "95% of LinkedIn resources were group posts").

use crate::config::{platform_chatter_rate, platform_domain_affinity, DatasetConfig};
use crate::content::ContentGenerator;
use crate::ground_truth::LatentExpertise;
use crate::names;
use crate::web::WebCorpus;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rightcrowd_graph::SocialGraph;
use rightcrowd_kb::vocab;
use rightcrowd_types::{ContainerId, Domain, PageId, PersonId, Platform, ResourceId, UserId};

/// Per-candidate behavioural profile, fixed for the whole dataset.
#[derive(Debug, Clone)]
pub struct Persona {
    /// The candidate.
    pub person: PersonId,
    /// Activity multiplier (log-normal-ish spread; silent users ≈ 0).
    pub activity: f64,
    /// Silent: declares expertise but barely posts (§3.7).
    pub silent: bool,
    /// Flagship/promotional account: posts mostly generic chatter.
    pub flagship: bool,
    /// Per-domain *expression*: how much of the candidate's interest in a
    /// domain actually shows up in their feed. Real people are not their
    /// questionnaires (§3.7): reticent experts (low expression) barely
    /// mention their specialty; enthusiasts (high expression) flood their
    /// feeds with a domain they are no expert of.
    pub expression: [f64; Domain::COUNT],
}

impl Persona {
    /// Samples the behavioural profile of every candidate.
    pub fn sample_all(rng: &mut StdRng, cfg: &DatasetConfig, n: usize) -> Vec<Persona> {
        (0..n)
            .map(|i| {
                let silent = rng.gen_bool(cfg.silent_rate);
                let flagship = !silent && rng.gen_bool(cfg.flagship_rate);
                let base: f64 = rng.gen_range(0.35f64..1.8);
                let mut expression = [1.0f64; Domain::COUNT];
                for slot in expression.iter_mut() {
                    let roll: f64 = rng.gen();
                    *slot = if roll < 0.12 {
                        // An enthusiast: posts heavily about the domain
                        // whatever their actual competence.
                        rng.gen_range(2.0..3.5)
                    } else if roll < 0.30 {
                        // A mute domain: whatever the competence, it never
                        // reaches the feed ("if a user claims to be a
                        // super-expert in music but none of her social
                        // actions include music…", §3.7).
                        rng.gen_range(0.0..0.08)
                    } else {
                        rng.gen_range(0.25..1.0)
                    };
                }
                Persona {
                    person: PersonId::new(i as u32),
                    activity: if silent { rng.gen_range(0.01..0.06) } else { base * base.sqrt() },
                    silent,
                    flagship,
                    expression,
                }
            })
            .collect()
    }
}

/// Shared state threaded through the platform generators.
pub struct GenContext<'a> {
    /// The generator configuration.
    pub cfg: &'a DatasetConfig,
    /// Topic-model content source.
    pub content: ContentGenerator<'a>,
    /// The graph under construction.
    pub graph: SocialGraph,
    /// The synthetic web under construction.
    pub web: WebCorpus,
    /// Latent expertise driving posting behaviour.
    pub latent: &'a LatentExpertise,
    /// Behavioural personas (index = person index).
    pub personas: &'a [Persona],
}

impl<'a> GenContext<'a> {
    /// How interested `person` is in `domain`, in `(0, ~2]`: experts
    /// post about their domains far more than non-experts.
    fn interest(&self, person: PersonId, domain: Domain) -> f64 {
        let u = self.latent.level(person, domain).unit();
        let expression = self.personas[person.index()].expression[domain.index()];
        // The floor keeps non-experts posting about every domain now and
        // then (real feeds are noisy); the quadratic term lets experts
        // dominate their own domains; expression decouples what people
        // *are* from what they *post* (§3.7).
        (0.25 + 1.8 * u * u) * expression
    }

    /// Picks a posting topic for `person` on `platform`:
    /// `None` = generic chatter.
    fn pick_topic(&self, rng: &mut StdRng, person: PersonId, platform: Platform) -> Option<Domain> {
        let persona = &self.personas[person.index()];
        // Flagship accounts post announcements; silent users' rare posts
        // are likewise non-topical (§3.7: accounts kept "for flagship or
        // promotional reasons" expose nothing about expertise) — together
        // they produce the paper's unassessable, near-zero-F1 users.
        let chatter = if persona.flagship || persona.silent {
            0.95
        } else {
            platform_chatter_rate(platform)
        };
        if rng.gen_bool(chatter) {
            return None;
        }
        Some(self.pick_domain(rng, person, platform))
    }

    /// Weighted domain choice: platform affinity × personal interest.
    fn pick_domain(&self, rng: &mut StdRng, person: PersonId, platform: Platform) -> Domain {
        let weights: Vec<f64> = Domain::ALL
            .iter()
            .map(|&d| platform_domain_affinity(platform, d) * self.interest(person, d))
            .collect();
        weighted_choice(rng, &weights).map(Domain::from_index).unwrap_or(Domain::Sport)
    }

    /// Generates resource text (and possibly a linked page) about `topic`.
    /// Returns `(text, links)`.
    fn resource_text(&mut self, rng: &mut StdRng, topic: Option<Domain>) -> (String, Vec<PageId>) {
        let mut text = if !rng.gen_bool(self.cfg.english_rate) {
            let words = rng.gen_range(8..18);
            self.content.non_english(rng, words).1
        } else {
            match topic {
                Some(domain) => {
                    let words = rng.gen_range(4..10);
                    let entities = rng.gen_range(0..=2);
                    self.content.domain_text(rng, domain, words, entities)
                }
                None => {
                    let words = rng.gen_range(3..9);
                    self.content.chatter(rng, words)
                }
            }
        };
        let mut links = Vec::new();
        if rng.gen_bool(self.cfg.url_rate) {
            // The linked page elaborates the same topic (or a random
            // domain for chatter posts — people share arbitrary links).
            let page_domain = topic.unwrap_or_else(|| Domain::from_index(rng.gen_range(0..Domain::COUNT)));
            let page = self.web.add_page(self.content.page_text(rng, page_domain));
            text.push(' ');
            text.push_str(&WebCorpus::url(page));
            links.push(page);
        }
        (text, links)
    }

    /// The candidate's strongest domain (for profile hobby hints).
    fn top_domain(&self, person: PersonId) -> Domain {
        Domain::ALL
            .into_iter()
            .max_by_key(|&d| self.latent.level(person, d).value())
            .expect("domains are non-empty")
    }
}

/// Weighted index choice; `None` on all-zero weights.
fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut roll = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if roll < *w {
            return Some(i);
        }
        roll -= w;
    }
    Some(weights.len() - 1)
}

/// A generated pool of topical containers for one platform.
pub struct ContainerPool {
    /// `(container, domain)` pairs.
    pub containers: Vec<(ContainerId, Domain)>,
    /// Posts inside each container (parallel to `containers`).
    pub posts: Vec<Vec<ResourceId>>,
}

/// A generated pool of followable topical accounts (Twitter celebrities).
pub struct CelebrityPool {
    /// `(account, domain)` pairs.
    pub accounts: Vec<(UserId, Domain)>,
    /// Tweets of each account (parallel to `accounts`).
    pub tweets: Vec<Vec<ResourceId>>,
}

/// Builds the topical container pool of `platform` with its posts.
pub fn generate_containers(
    ctx: &mut GenContext<'_>,
    rng: &mut StdRng,
    platform: Platform,
) -> ContainerPool {
    let pools = *ctx.cfg.pools(platform);
    let mut containers = Vec::new();
    let mut posts = Vec::new();
    for domain in Domain::ALL {
        for _ in 0..pools.containers_per_domain {
            let description = {
                let words = rng.gen_range(4..8);
                let mut d = ctx.content.domain_text(rng, domain, words, 1);
                d.push_str(&format!(" {} community", domain.slug()));
                d
            };
            let c = ctx.graph.add_container(platform, &description, Vec::new());
            let mut contained = Vec::with_capacity(pools.posts_per_container);
            for _ in 0..pools.posts_per_container {
                // Container posts are written by external authors the
                // study never profiles (creator unknown); they stay firmly
                // on-topic with occasional chatter.
                let topic = if rng.gen_bool(0.8) { Some(domain) } else { None };
                let (text, links) = ctx.resource_text(rng, topic);
                contained.push(ctx.graph.add_resource(platform, &text, None, None, Some(c), links));
            }
            containers.push((c, domain));
            posts.push(contained);
        }
    }
    ContainerPool { containers, posts }
}

/// Builds the Twitter celebrity pool with profiles and tweets.
pub fn generate_celebrities(ctx: &mut GenContext<'_>, rng: &mut StdRng) -> CelebrityPool {
    let pools = *ctx.cfg.pools(Platform::Twitter);
    let mut accounts = Vec::new();
    let mut tweets = Vec::new();
    let mut serial = 0usize;
    for domain in Domain::ALL {
        for _ in 0..pools.celebrities_per_domain {
            serial += 1;
            // Celebrity profiles are thematically focused, like Facebook
            // pages (paper §2.2): rich domain text with entity mentions.
            let bio = {
                let words = rng.gen_range(10..18);
                { let ents = rng.gen_range(2..4); ctx.content.domain_text(rng, domain, words, ents) }
            };
            let name = format!("{} voice {}", domain.slug(), serial);
            let u = ctx.graph.add_profile(Platform::Twitter, &name, &bio, None, Vec::new());
            let mut own = Vec::with_capacity(pools.posts_per_celebrity);
            for _ in 0..pools.posts_per_celebrity {
                let topic = if rng.gen_bool(0.85) { Some(domain) } else { None };
                let (text, links) = ctx.resource_text(rng, topic);
                own.push(ctx.graph.add_resource(Platform::Twitter, &text, Some(u), Some(u), None, links));
            }
            accounts.push((u, domain));
            tweets.push(own);
        }
    }
    CelebrityPool { accounts, tweets }
}

/// Scales a per-candidate volume by the candidate's activity level.
fn scaled(count: usize, activity: f64) -> usize {
    (count as f64 * activity).round() as usize
}

/// Generates the Facebook subgraph for every candidate.
pub fn generate_facebook(
    ctx: &mut GenContext<'_>,
    rng: &mut StdRng,
    candidate_accounts: &[UserId],
    containers: &ContainerPool,
) {
    let vol = *ctx.cfg.volume(Platform::Facebook);
    let mut friend_serial = 0usize;
    for (p, &u) in candidate_accounts.iter().enumerate() {
        let person = PersonId::new(p as u32);
        let persona = ctx.personas[p].clone();

        // Own wall posts.
        for _ in 0..scaled(vol.own_posts, persona.activity) {
            let topic = ctx.pick_topic(rng, person, Platform::Facebook);
            let (text, links) = ctx.resource_text(rng, topic);
            ctx.graph.add_resource(Platform::Facebook, &text, Some(u), Some(u), None, links);
        }

        // Friends: privacy-walled profiles; a share of them write on the
        // candidate's wall (foreign posts, owned by the candidate).
        let mut friend_ids = Vec::new();
        for _ in 0..vol.friends {
            friend_serial += 1;
            let name = names::person_name(1000 + friend_serial);
            let bio = { let w = rng.gen_range(1..4); ctx.content.chatter(rng, w) };
            let f = ctx.graph.add_profile(Platform::Facebook, &name, &bio, None, Vec::new());
            ctx.graph.add_friendship(u, f);
            friend_ids.push(f);
        }
        for _ in 0..scaled(vol.foreign_wall_posts, persona.activity) {
            let Some(&author) = friend_ids.choose(rng) else { break };
            // Wall posts from friends mix chatter with the *owner's*
            // interests ("saw this and thought of you" dynamics).
            let topic = if rng.gen_bool(0.5) {
                None
            } else {
                Some(ctx.pick_domain(rng, person, Platform::Facebook))
            };
            let (text, links) = ctx.resource_text(rng, topic);
            ctx.graph.add_resource(Platform::Facebook, &text, Some(author), Some(u), None, links);
        }

        // Group/page memberships follow interests; likes land on posts of
        // joined containers (pulling them from distance 2 to distance 1).
        // Silent users' social activity is unreadable (privacy settings —
        // the paper could access only 0.6% of friend profiles, and its
        // eight F1=0 volunteers exposed nothing): no memberships, no likes.
        let memberships = if persona.silent { Vec::new() } else { pick_memberships(
            ctx,
            rng,
            person,
            Platform::Facebook,
            containers,
            scaled(vol.memberships, persona.activity.min(1.5)),
        ) };
        for &ci in &memberships {
            ctx.graph.add_membership(u, containers.containers[ci].0);
        }
        for _ in 0..scaled(vol.annotations, persona.activity) {
            let Some(&ci) = memberships.choose(rng) else { break };
            if let Some(&post) = containers.posts[ci].choose(rng) {
                ctx.graph.add_annotation(u, post);
            }
        }
    }
}

/// Generates the Twitter subgraph for every candidate.
pub fn generate_twitter(
    ctx: &mut GenContext<'_>,
    rng: &mut StdRng,
    candidate_accounts: &[UserId],
    celebrities: &CelebrityPool,
) {
    let vol = *ctx.cfg.volume(Platform::Twitter);
    let pools = *ctx.cfg.pools(Platform::Twitter);
    let mut friend_serial = 0usize;
    for (p, &u) in candidate_accounts.iter().enumerate() {
        let person = PersonId::new(p as u32);
        let persona = ctx.personas[p].clone();

        // Own tweets.
        for _ in 0..scaled(vol.own_posts, persona.activity) {
            let topic = ctx.pick_topic(rng, person, Platform::Twitter);
            let (text, links) = ctx.resource_text(rng, topic);
            ctx.graph.add_resource(Platform::Twitter, &text, Some(u), Some(u), None, links);
        }

        // Follows: interest-weighted celebrity picks (with a noise tail).
        // Silent users' follow lists are privacy-walled (see Facebook).
        let followed = if persona.silent { Vec::new() } else { pick_celebrities(
            ctx,
            rng,
            person,
            celebrities,
            scaled(vol.followed_accounts, persona.activity.min(1.5)),
        ) };
        for &ci in &followed {
            ctx.graph.add_follow(u, celebrities.accounts[ci].0);
        }

        // Favourites: annotations on tweets of followed accounts.
        for _ in 0..scaled(vol.annotations, persona.activity) {
            let Some(&ci) = followed.choose(rng) else { break };
            if let Some(&tweet) = celebrities.tweets[ci].choose(rng) {
                ctx.graph.add_annotation(u, tweet);
            }
        }

        // Friends: mutual follows. A friendship is a real-world bond,
        // not shared expertise (paper §2.2): friend feeds are mostly
        // chatter, and their occasional topical posts scatter across
        // domains instead of concentrating on one — volume, not signal.
        for _ in 0..vol.friends {
            friend_serial += 1;
            let name = names::person_name(5000 + friend_serial);
            let bio = {
                let w = rng.gen_range(1..4);
                ctx.content.chatter(rng, w)
            };
            let f = ctx.graph.add_profile(Platform::Twitter, &name, &bio, None, Vec::new());
            ctx.graph.add_friendship(u, f);
            for _ in 0..pools.posts_per_friend {
                // No URL enrichment on friend posts: a friend's shared
                // links elaborate the *friend's* world, and modelling them
                // as topical pages would hand every candidate a stream of
                // strong cross-domain evidence — exactly the signal the
                // paper shows friends do NOT provide.
                let text = if rng.gen_bool(0.92) {
                    let w = rng.gen_range(3..9);
                    ctx.content.chatter(rng, w)
                } else {
                    let d = Domain::from_index(rng.gen_range(0..Domain::COUNT));
                    let w = rng.gen_range(4..9);
                    ctx.content.domain_text(rng, d, w, 0)
                };
                ctx.graph.add_resource(Platform::Twitter, &text, Some(f), Some(f), None, Vec::new());
            }
        }

        // Mentions/retweets that land on the candidate's stream.
        for _ in 0..scaled(vol.foreign_wall_posts, persona.activity) {
            let Some(&ci) = followed.choose(rng) else { break };
            let author = celebrities.accounts[ci].0;
            let domain = celebrities.accounts[ci].1;
            let (text, links) = ctx.resource_text(rng, Some(domain));
            ctx.graph.add_resource(Platform::Twitter, &text, Some(author), Some(u), None, links);
        }
    }
}

/// Generates the LinkedIn subgraph for every candidate.
pub fn generate_linkedin(
    ctx: &mut GenContext<'_>,
    rng: &mut StdRng,
    candidate_accounts: &[UserId],
    containers: &ContainerPool,
) {
    let vol = *ctx.cfg.volume(Platform::LinkedIn);
    for (p, &u) in candidate_accounts.iter().enumerate() {
        let person = PersonId::new(p as u32);
        let persona = ctx.personas[p].clone();

        // A few status updates.
        for _ in 0..scaled(vol.own_posts, persona.activity) {
            let topic = ctx.pick_topic(rng, person, Platform::LinkedIn);
            let (text, links) = ctx.resource_text(rng, topic);
            ctx.graph.add_resource(Platform::LinkedIn, &text, Some(u), Some(u), None, links);
        }

        // Group memberships (work-dominated by LinkedIn's affinity).
        // Silent users' groups are privacy-walled (see Facebook).
        let memberships = if persona.silent { Vec::new() } else { pick_memberships(
            ctx,
            rng,
            person,
            Platform::LinkedIn,
            containers,
            scaled(vol.memberships, persona.activity.min(1.5)),
        ) };
        for &ci in &memberships {
            ctx.graph.add_membership(u, containers.containers[ci].0);
        }
        for _ in 0..scaled(vol.annotations, persona.activity) {
            let Some(&ci) = memberships.choose(rng) else { break };
            if let Some(&post) = containers.posts[ci].choose(rng) {
                ctx.graph.add_annotation(u, post);
            }
        }
    }
}

/// Picks `count` container indices weighted by interest × affinity.
fn pick_memberships(
    ctx: &GenContext<'_>,
    rng: &mut StdRng,
    person: PersonId,
    platform: Platform,
    containers: &ContainerPool,
    count: usize,
) -> Vec<usize> {
    if containers.containers.is_empty() {
        return Vec::new();
    }
    let weights: Vec<f64> = containers
        .containers
        .iter()
        .map(|&(_, d)| platform_domain_affinity(platform, d) * ctx.interest(person, d))
        .collect();
    pick_distinct_weighted(rng, &weights, count)
}

/// Picks `count` celebrity indices weighted by interest (with a flat noise
/// floor so everyone follows a few off-interest accounts).
fn pick_celebrities(
    ctx: &GenContext<'_>,
    rng: &mut StdRng,
    person: PersonId,
    celebrities: &CelebrityPool,
    count: usize,
) -> Vec<usize> {
    if celebrities.accounts.is_empty() {
        return Vec::new();
    }
    let weights: Vec<f64> = celebrities
        .accounts
        .iter()
        .map(|&(_, d)| 0.15 + ctx.interest(person, d))
        .collect();
    pick_distinct_weighted(rng, &weights, count)
}

/// Samples up to `count` distinct indices with probability proportional to
/// `weights` (weights of picked indices are zeroed).
fn pick_distinct_weighted(rng: &mut StdRng, weights: &[f64], count: usize) -> Vec<usize> {
    let mut remaining = weights.to_vec();
    let mut picked = Vec::with_capacity(count.min(weights.len()));
    for _ in 0..count.min(weights.len()) {
        match weighted_choice(rng, &remaining) {
            Some(i) => {
                picked.push(i);
                remaining[i] = 0.0;
            }
            None => break,
        }
    }
    picked
}

/// Generates the per-platform profiles of all candidates (distance-0
/// evidence) and returns the per-platform account lists.
pub fn generate_candidate_profiles(
    ctx: &mut GenContext<'_>,
    rng: &mut StdRng,
    persons: &[PersonId],
) -> [Vec<UserId>; Platform::COUNT] {
    let mut accounts: [Vec<UserId>; Platform::COUNT] = Default::default();
    for &person in persons {
        let name = ctx.graph.person(person).name.clone();
        let top = ctx.top_domain(person);
        let leak_location = rng.gen_bool(ctx.cfg.profile_location_leak);

        // Facebook: nearly empty — a hometown and maybe one hobby word.
        let fb_bio = {
            let mut parts: Vec<String> = Vec::new();
            if leak_location {
                parts.push("lives in milan italy".to_owned());
            }
            if rng.gen_bool(0.35) {
                let w = vocab::domain_words(top);
                parts.push(format!("hobby {}", w[rng.gen_range(0..w.len())]));
            }
            parts.join(" ")
        };
        let fb = ctx.graph.add_profile(
            Platform::Facebook,
            &names::handle(&name, "fb"),
            &fb_bio,
            Some(person),
            Vec::new(),
        );

        // Twitter: a one-liner, topical for about half the users.
        let tw_bio = if rng.gen_bool(0.5) {
            { let w = rng.gen_range(2..5); ctx.content.domain_text(rng, top, w, 0) }
        } else {
            { let w = rng.gen_range(1..4); ctx.content.chatter(rng, w) }
        };
        let tw = ctx.graph.add_profile(
            Platform::Twitter,
            &names::handle(&name, "tw"),
            &tw_bio,
            Some(person),
            Vec::new(),
        );

        // LinkedIn: a career description — rich and accurate for
        // work-domain experts, generic otherwise, often with a location.
        let li_bio = {
            let mut s = String::new();
            let work_level = ctx
                .latent
                .level(person, Domain::ComputerEngineering)
                .value()
                .max(ctx.latent.level(person, Domain::Science).value())
                .max(ctx.latent.level(person, Domain::TechnologyGames).value());
            if work_level >= 5 {
                let domain = [Domain::ComputerEngineering, Domain::Science, Domain::TechnologyGames]
                    .into_iter()
                    .max_by_key(|&d| ctx.latent.level(person, d).value())
                    .unwrap();
                let (w, ents) = (rng.gen_range(10..18), rng.gen_range(1..3));
                s.push_str(&ctx.content.domain_text(rng, domain, w, ents));
                s.push_str(" professional experience engineer");
            } else {
                s.push_str("professional with experience in business and management");
            }
            if leak_location {
                s.push_str(" milan area italy");
            }
            s
        };
        let li = ctx.graph.add_profile(
            Platform::LinkedIn,
            &names::handle(&name, "li"),
            &li_bio,
            Some(person),
            Vec::new(),
        );

        accounts[Platform::Facebook.index()].push(fb);
        accounts[Platform::Twitter.index()].push(tw);
        accounts[Platform::LinkedIn.index()].push(li);
    }
    accounts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..50 {
            assert_eq!(weighted_choice(&mut rng, &weights), Some(1));
        }
        assert_eq!(weighted_choice(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_choice(&mut rng, &[]), None);
    }

    #[test]
    fn pick_distinct_weighted_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [1.0, 2.0, 3.0, 4.0];
        let picked = pick_distinct_weighted(&mut rng, &weights, 10);
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        let two = pick_distinct_weighted(&mut rng, &weights, 2);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn personas_have_silent_members_at_paper_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DatasetConfig::paper();
        let personas = Persona::sample_all(&mut rng, &cfg, 400);
        let silent = personas.iter().filter(|p| p.silent).count();
        // 15% of 400 ± generous slack.
        assert!((30..=90).contains(&silent), "silent: {silent}");
        for p in &personas {
            if p.silent {
                assert!(p.activity < 0.1);
            } else {
                assert!(p.activity > 0.1);
            }
        }
    }

    #[test]
    fn scaled_volume_rounds() {
        assert_eq!(scaled(100, 0.5), 50);
        assert_eq!(scaled(10, 0.04), 0);
        assert_eq!(scaled(3, 1.5), 5);
    }
}
