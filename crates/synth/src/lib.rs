//! # rightcrowd-synth
//!
//! The synthetic stand-in for the paper's data-collection campaign (§3.1).
//!
//! The paper recruited 40 volunteers active on Facebook, Twitter and
//! LinkedIn and harvested ~330k resources through the platforms' APIs. None
//! of that is reproducible offline, so this crate *generates* an equivalent
//! study population: a seeded, deterministic social world whose structure
//! follows the Fig. 2 meta-model and whose statistics follow the paper's
//! published marginals —
//!
//! - 40 candidate experts, each with accounts on all three platforms;
//! - 7 expertise domains with latent per-person expertise on a 7-point
//!   scale, a self-assessment questionnaire with reporting noise, and the
//!   paper's ground-truth rule (expert ⇔ above domain average);
//! - platform-specific volume and topicality: Facebook has the most
//!   resources overall and an entertainment bias; Twitter has the most
//!   distance-1 resources (own tweets + followed profiles) and the most
//!   topical content; LinkedIn is small, work-oriented, with ~95% of its
//!   resources in groups (distance 2);
//! - ~70% of resources carry URLs to generated web pages; ~70% of
//!   resources are English (the rest it/fr/de/es, filtered by langid);
//! - Twitter friends (mutual follows) whose content is drawn from *their
//!   own* interests, reproducing the paper's friends-don't-help finding;
//! - "silent experts" — self-declared experts with no matching activity —
//!   reproducing the trust analysis of §3.7.

pub mod config;
pub mod content;
pub mod dataset;
pub mod ground_truth;
pub mod names;
pub mod platforms;
pub mod queries;
pub mod stats;
pub mod web;

pub use config::DatasetConfig;
pub use dataset::SyntheticDataset;
pub use ground_truth::{GroundTruth, LatentExpertise};
pub use platforms::Persona;
pub use queries::ExpertiseNeed;
pub use stats::DatasetStats;
pub use web::WebCorpus;
