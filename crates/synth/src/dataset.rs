//! Orchestration: one call builds the whole synthetic study.

use crate::config::DatasetConfig;
use crate::content::ContentGenerator;
use crate::ground_truth::{GroundTruth, LatentExpertise};
use crate::names;
use crate::platforms::{
    generate_candidate_profiles, generate_celebrities, generate_containers, generate_facebook,
    generate_linkedin, generate_twitter, GenContext, Persona,
};
use crate::queries::{workload, ExpertiseNeed};
use crate::web::WebCorpus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rightcrowd_graph::{Person, SocialGraph};
use rightcrowd_kb::{seed, KnowledgeBase};
use rightcrowd_types::Platform;

/// A complete synthetic study: knowledge base, social graph, web corpus,
/// query workload and ground truth — everything the paper's system needs.
#[derive(Debug)]
pub struct SyntheticDataset {
    kb: KnowledgeBase,
    graph: SocialGraph,
    web: WebCorpus,
    queries: Vec<ExpertiseNeed>,
    ground_truth: GroundTruth,
    latent: LatentExpertise,
    personas: Vec<Persona>,
    config: DatasetConfig,
}

impl SyntheticDataset {
    /// Generates a dataset from `config`, deterministically in the seed.
    pub fn generate(config: &DatasetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let kb = seed::standard();
        let queries = workload();

        let latent = LatentExpertise::sample(&mut rng, config.candidates);
        let ground_truth = GroundTruth::from_questionnaire(&mut rng, &latent, &queries);
        let personas = Persona::sample_all(&mut rng, config, config.candidates);

        let mut graph = SocialGraph::new();
        let persons: Vec<_> = (0..config.candidates)
            .map(|i| graph.add_person(&names::person_name(i)))
            .collect();

        let (graph, web) = {
            let mut ctx = GenContext {
                cfg: config,
                content: ContentGenerator::new(&kb),
                graph,
                web: WebCorpus::new(),
                latent: &latent,
                personas: &personas,
            };

            let accounts = generate_candidate_profiles(&mut ctx, &mut rng, &persons);

            let fb_containers = generate_containers(&mut ctx, &mut rng, Platform::Facebook);
            let li_containers = generate_containers(&mut ctx, &mut rng, Platform::LinkedIn);
            let celebrities = generate_celebrities(&mut ctx, &mut rng);

            generate_facebook(
                &mut ctx,
                &mut rng,
                &accounts[Platform::Facebook.index()],
                &fb_containers,
            );
            generate_twitter(
                &mut ctx,
                &mut rng,
                &accounts[Platform::Twitter.index()],
                &celebrities,
            );
            generate_linkedin(
                &mut ctx,
                &mut rng,
                &accounts[Platform::LinkedIn.index()],
                &li_containers,
            );

            ctx.graph.finalize();
            (ctx.graph, ctx.web)
        };

        SyntheticDataset {
            kb,
            graph,
            web,
            queries,
            ground_truth,
            latent,
            personas,
            config: config.clone(),
        }
    }

    /// Reassembles a dataset from snapshot parts (see `rightcrowd-store`).
    ///
    /// Only the *sampled* state travels through a snapshot: graph, web,
    /// latent expertise, questionnaire answers, personas. The knowledge
    /// base and query workload are compiled-in constants and are
    /// regenerated here; the ground truth is re-derived from the answers.
    /// The caller (the store's decoder) must have validated that every
    /// answer row covers the full workload — `GroundTruth::derive`
    /// requires it.
    pub fn from_parts(
        config: DatasetConfig,
        graph: SocialGraph,
        web: WebCorpus,
        latent: LatentExpertise,
        answers: Vec<Vec<rightcrowd_types::Likert>>,
        personas: Vec<Persona>,
    ) -> Self {
        let kb = seed::standard();
        let queries = workload();
        let ground_truth = GroundTruth::derive(answers, &queries);
        SyntheticDataset { kb, graph, web, queries, ground_truth, latent, personas, config }
    }

    /// The knowledge base resources were generated against.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The social graph (finalized).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The synthetic web corpus.
    pub fn web(&self) -> &WebCorpus {
        &self.web
    }

    /// The 30-query evaluation workload.
    pub fn queries(&self) -> &[ExpertiseNeed] {
        &self.queries
    }

    /// The questionnaire-derived ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// The latent expertise that drove generation (not visible to the
    /// finding system; exposed for analysis and tests).
    pub fn latent(&self) -> &LatentExpertise {
        &self.latent
    }

    /// Behavioural personas (silent / flagship flags, activity levels).
    pub fn personas(&self) -> &[Persona] {
        &self.personas
    }

    /// The candidate experts.
    pub fn candidates(&self) -> &[Person] {
        self.graph.persons()
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_graph::CollectOptions;
    use rightcrowd_types::{Distance, PlatformMask};

    fn tiny() -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::tiny())
    }

    #[test]
    fn generates_complete_study() {
        let ds = tiny();
        let (persons, profiles, resources, containers) = ds.graph().counts();
        assert_eq!(persons, DatasetConfig::tiny().candidates);
        assert!(profiles > persons * 3, "profiles: {profiles}");
        assert!(resources > 500, "resources: {resources}");
        assert!(containers > 0);
        assert_eq!(ds.queries().len(), 30);
        assert!(!ds.web().is_empty());
    }

    #[test]
    fn every_candidate_has_three_accounts() {
        let ds = tiny();
        for person in ds.candidates() {
            for platform in Platform::ALL {
                assert!(
                    person.account(platform).is_some(),
                    "{} missing {platform}",
                    person.name
                );
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.graph().counts(), b.graph().counts());
        assert_eq!(a.web().len(), b.web().len());
        let p0 = rightcrowd_types::PersonId::new(0);
        let ia = a.graph().collect_evidence(p0, &CollectOptions::default());
        let ib = b.graph().collect_evidence(p0, &CollectOptions::default());
        assert_eq!(ia, ib);
    }

    #[test]
    fn linkedin_resources_concentrate_at_distance_2() {
        let ds = tiny();
        let mut d1 = 0usize;
        let mut d2 = 0usize;
        for person in ds.candidates() {
            let items = ds.graph().collect_evidence(
                person.id,
                &CollectOptions {
                    platforms: PlatformMask::only(Platform::LinkedIn),
                    ..Default::default()
                },
            );
            for item in items {
                match item.distance {
                    Distance::D1 => d1 += 1,
                    Distance::D2 => d2 += 1,
                    Distance::D0 => {}
                }
            }
        }
        assert!(d2 > 5 * d1, "LinkedIn d1 {d1} vs d2 {d2}");
    }

    #[test]
    fn twitter_has_rich_distance_1() {
        let ds = tiny();
        let count_d1 = |mask: PlatformMask| -> usize {
            ds.candidates()
                .iter()
                .map(|p| {
                    ds.graph()
                        .collect_evidence(
                            p.id,
                            &CollectOptions { platforms: mask, ..Default::default() },
                        )
                        .iter()
                        .filter(|i| i.distance == Distance::D1)
                        .count()
                })
                .sum()
        };
        let tw = count_d1(PlatformMask::only(Platform::Twitter));
        let li = count_d1(PlatformMask::only(Platform::LinkedIn));
        assert!(tw > li * 3, "TW d1 {tw} vs LI d1 {li}");
    }

    #[test]
    fn url_rate_roughly_matches_config() {
        let ds = tiny();
        let with_url = ds
            .graph()
            .resources()
            .iter()
            .filter(|r| !r.links.is_empty())
            .count();
        let rate = with_url as f64 / ds.graph().resources().len() as f64;
        assert!((0.55..=0.85).contains(&rate), "url rate {rate}");
    }
}
