//! Latent expertise, the self-assessment questionnaire, and the derived
//! ground truth (paper §3.1).
//!
//! Each candidate has a *latent* expertise level per domain on the 7-point
//! scale. The questionnaire answer for a query is the latent level of the
//! query's domain plus bounded self-report noise. Per-domain expertise is
//! derived as the mean questionnaire answer over that domain's queries, and
//! the boolean ground truth follows the paper's rule: a candidate is a
//! *domain expert* iff their derived level exceeds the domain average.

use crate::queries::ExpertiseNeed;
use rand::rngs::StdRng;
use rand::Rng;
use rightcrowd_types::{Domain, Likert, PersonId};

/// Latent per-domain expertise of the candidate population.
#[derive(Debug, Clone)]
pub struct LatentExpertise {
    /// `latent[person][domain]` on the 1–7 scale.
    levels: Vec<[Likert; Domain::COUNT]>,
}

impl LatentExpertise {
    /// Samples a population of `n` candidates.
    ///
    /// Levels are drawn from a low-skewed continuous scale (most people
    /// rate themselves middling-low, mean ≈ 3.6 like the paper's 3.57),
    /// and each candidate additionally gets 1–2 guaranteed strong domains.
    /// The continuous spread matters: the paper's above-average expert
    /// rule creates many *marginal* experts barely distinguishable from
    /// marginal non-experts, which is what keeps absolute MAP moderate.
    pub fn sample(rng: &mut StdRng, n: usize) -> Self {
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = [Likert::clamped(1); Domain::COUNT];
            for slot in row.iter_mut() {
                let r: f64 = rng.gen();
                *slot = Likert::clamped((1.0 + 6.0 * r.powf(2.0)).round() as i32);
            }
            let strong = if rng.gen_bool(0.5) { 2 } else { 1 };
            for _ in 0..strong {
                let d = rng.gen_range(0..Domain::COUNT);
                row[d] = Likert::clamped(rng.gen_range(5..=7));
            }
            levels.push(row);
        }
        LatentExpertise { levels }
    }

    /// Rebuilds a population from persisted levels (snapshot load path).
    pub fn from_levels(levels: Vec<[Likert; Domain::COUNT]>) -> Self {
        LatentExpertise { levels }
    }

    /// The raw level matrix, `levels()[person][domain]`.
    pub fn levels(&self) -> &[[Likert; Domain::COUNT]] {
        &self.levels
    }

    /// Latent level of `person` in `domain`.
    pub fn level(&self, person: PersonId, domain: Domain) -> Likert {
        self.levels[person.index()][domain.index()]
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// The questionnaire answers and the ground truth derived from them.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `answers[person][query]` — the 7-point self-assessments.
    answers: Vec<Vec<Likert>>,
    /// Derived per-domain expertise `derived[person][domain]`.
    derived: Vec<[f64; Domain::COUNT]>,
    /// Average derived expertise per domain.
    domain_avg: [f64; Domain::COUNT],
    /// Expert sets per domain (persons above the domain average).
    experts: Vec<Vec<PersonId>>,
}

impl GroundTruth {
    /// Runs the questionnaire: each person answers every query with their
    /// latent domain level ± 1 point of self-report noise, then derives
    /// the boolean ground truth with the paper's above-average rule.
    pub fn from_questionnaire(
        rng: &mut StdRng,
        latent: &LatentExpertise,
        queries: &[ExpertiseNeed],
    ) -> Self {
        let n = latent.len();
        let mut answers = Vec::with_capacity(n);
        for p in 0..n {
            let person = PersonId::new(p as u32);
            let mut row = Vec::with_capacity(queries.len());
            for q in queries {
                let base = latent.level(person, q.domain).value() as i32;
                let noise = rng.gen_range(-1..=1);
                row.push(Likert::clamped(base + noise));
            }
            answers.push(row);
        }
        Self::derive(answers, queries)
    }

    /// Derives per-domain levels, domain averages and expert sets from raw
    /// questionnaire answers.
    pub fn derive(answers: Vec<Vec<Likert>>, queries: &[ExpertiseNeed]) -> Self {
        let n = answers.len();
        let mut derived = vec![[0.0f64; Domain::COUNT]; n];
        for (p, row) in answers.iter().enumerate() {
            assert_eq!(row.len(), queries.len(), "answers must cover all queries");
            let mut sums = [0.0f64; Domain::COUNT];
            let mut counts = [0usize; Domain::COUNT];
            for (q, &a) in queries.iter().zip(row) {
                sums[q.domain.index()] += a.as_f64();
                counts[q.domain.index()] += 1;
            }
            for d in 0..Domain::COUNT {
                derived[p][d] = if counts[d] == 0 { 0.0 } else { sums[d] / counts[d] as f64 };
            }
        }
        let mut domain_avg = [0.0f64; Domain::COUNT];
        if n > 0 {
            for d in 0..Domain::COUNT {
                domain_avg[d] = derived.iter().map(|row| row[d]).sum::<f64>() / n as f64;
            }
        }
        let mut experts: Vec<Vec<PersonId>> = vec![Vec::new(); Domain::COUNT];
        for (p, row) in derived.iter().enumerate() {
            for d in 0..Domain::COUNT {
                if row[d] > domain_avg[d] {
                    experts[d].push(PersonId::new(p as u32));
                }
            }
        }
        GroundTruth { answers, derived, domain_avg, experts }
    }

    /// Number of candidates covered.
    pub fn population(&self) -> usize {
        self.answers.len()
    }

    /// The raw answer matrix, `answers()[person][query]`.
    pub fn answers(&self) -> &[Vec<Likert>] {
        &self.answers
    }

    /// Raw questionnaire answer of `person` for query position `query_idx`.
    pub fn answer(&self, person: PersonId, query_idx: usize) -> Likert {
        self.answers[person.index()][query_idx]
    }

    /// Derived expertise level of `person` in `domain`.
    pub fn expertise(&self, person: PersonId, domain: Domain) -> f64 {
        self.derived[person.index()][domain.index()]
    }

    /// Average derived expertise of `domain` across the population.
    pub fn domain_average(&self, domain: Domain) -> f64 {
        self.domain_avg[domain.index()]
    }

    /// The experts of `domain` (above-average rule), in person order.
    pub fn experts(&self, domain: Domain) -> &[PersonId] {
        &self.experts[domain.index()]
    }

    /// Whether `person` is a domain expert.
    pub fn is_expert(&self, person: PersonId, domain: Domain) -> bool {
        self.experts[domain.index()].contains(&person)
    }

    /// Mean number of experts across domains (the paper reports ~17 for
    /// its 40-person pool).
    pub fn mean_experts_per_domain(&self) -> f64 {
        self.experts.iter().map(Vec::len).sum::<usize>() as f64 / Domain::COUNT as f64
    }

    /// Mean derived expertise across domains and persons (paper: 3.57).
    pub fn mean_expertise(&self) -> f64 {
        if self.population() == 0 {
            return 0.0;
        }
        self.domain_avg.iter().sum::<f64>() / Domain::COUNT as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::workload;
    use rand::SeedableRng;

    fn sample_gt(seed: u64, n: usize) -> GroundTruth {
        let mut rng = StdRng::seed_from_u64(seed);
        let latent = LatentExpertise::sample(&mut rng, n);
        GroundTruth::from_questionnaire(&mut rng, &latent, &workload())
    }

    #[test]
    fn population_statistics_match_paper_regime() {
        let gt = sample_gt(42, 40);
        let mean_experts = gt.mean_experts_per_domain();
        assert!(
            (8.0..=25.0).contains(&mean_experts),
            "experts per domain: {mean_experts}"
        );
        let mean_expertise = gt.mean_expertise();
        assert!(
            (2.5..=4.5).contains(&mean_expertise),
            "mean expertise: {mean_expertise}"
        );
    }

    #[test]
    fn experts_are_exactly_above_average() {
        let gt = sample_gt(1, 40);
        for d in Domain::ALL {
            let avg = gt.domain_average(d);
            for p in 0..40 {
                let person = PersonId::new(p);
                assert_eq!(
                    gt.is_expert(person, d),
                    gt.expertise(person, d) > avg,
                    "person {p} domain {d}"
                );
            }
        }
    }

    #[test]
    fn every_domain_has_experts_and_non_experts() {
        let gt = sample_gt(7, 40);
        for d in Domain::ALL {
            let n = gt.experts(d).len();
            assert!(n > 0, "{d} has no experts");
            assert!(n < 40, "{d}: everyone is an expert");
        }
    }

    #[test]
    fn latent_levels_in_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let latent = LatentExpertise::sample(&mut rng, 10);
        for p in 0..10 {
            for d in Domain::ALL {
                let l = latent.level(PersonId::new(p), d).value();
                assert!((1..=7).contains(&l));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample_gt(99, 20);
        let b = sample_gt(99, 20);
        for d in Domain::ALL {
            assert_eq!(a.experts(d), b.experts(d));
        }
    }

    #[test]
    fn empty_population() {
        let gt = GroundTruth::derive(vec![], &workload());
        assert_eq!(gt.population(), 0);
        assert_eq!(gt.mean_expertise(), 0.0);
        for d in Domain::ALL {
            assert!(gt.experts(d).is_empty());
        }
    }

    #[test]
    fn answers_track_latent_levels() {
        let mut rng = StdRng::seed_from_u64(5);
        let latent = LatentExpertise::sample(&mut rng, 40);
        let queries = workload();
        let gt = GroundTruth::from_questionnaire(&mut rng, &latent, &queries);
        // Answers differ from latent by at most 1 (the noise bound).
        for p in 0..40 {
            let person = PersonId::new(p);
            for (qi, q) in queries.iter().enumerate() {
                let diff = (gt.answer(person, qi).value() as i32
                    - latent.level(person, q.domain).value() as i32)
                    .abs();
                assert!(diff <= 1, "noise bound violated: {diff}");
            }
        }
    }
}
