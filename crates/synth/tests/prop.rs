//! Property tests for the synthetic-study generator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rightcrowd_synth::ground_truth::{GroundTruth, LatentExpertise};
use rightcrowd_synth::queries::workload;
use rightcrowd_synth::DatasetConfig;
use rightcrowd_types::{Domain, Likert, PersonId};

proptest! {
    #[test]
    fn ground_truth_rule_is_exactly_above_average(seed in any::<u64>(), n in 2usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let latent = LatentExpertise::sample(&mut rng, n);
        let queries = workload();
        let gt = GroundTruth::from_questionnaire(&mut rng, &latent, &queries);
        for d in Domain::ALL {
            let avg = gt.domain_average(d);
            let mut expert_count = 0;
            for p in 0..n {
                let person = PersonId::new(p as u32);
                let is_expert = gt.is_expert(person, d);
                prop_assert_eq!(is_expert, gt.expertise(person, d) > avg);
                expert_count += is_expert as usize;
            }
            // "Above average" can never include everyone.
            prop_assert!(expert_count < n);
            prop_assert_eq!(expert_count, gt.experts(d).len());
        }
    }

    #[test]
    fn questionnaire_answers_stay_on_scale(seed in any::<u64>(), n in 1usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let latent = LatentExpertise::sample(&mut rng, n);
        let queries = workload();
        let gt = GroundTruth::from_questionnaire(&mut rng, &latent, &queries);
        for p in 0..n {
            for q in 0..queries.len() {
                let a = gt.answer(PersonId::new(p as u32), q);
                prop_assert!(a >= Likert::MIN && a <= Likert::MAX);
            }
        }
    }

    #[test]
    fn latent_levels_on_scale(seed in any::<u64>(), n in 1usize..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let latent = LatentExpertise::sample(&mut rng, n);
        prop_assert_eq!(latent.len(), n);
        for p in 0..n {
            let mut strongest = 0u8;
            for d in Domain::ALL {
                let v = latent.level(PersonId::new(p as u32), d).value();
                prop_assert!((1..=7).contains(&v));
                strongest = strongest.max(v);
            }
            // Every candidate has at least one guaranteed strong domain.
            prop_assert!(strongest >= 5, "candidate {p} has no strong domain");
        }
    }

    #[test]
    fn scaling_is_monotone(factor in 0.01f64..1.0) {
        let full = DatasetConfig::paper();
        let scaled = full.scaled(factor);
        prop_assert_eq!(scaled.candidates, full.candidates);
        for (a, b) in scaled.volumes.iter().zip(&full.volumes) {
            prop_assert!(a.own_posts <= b.own_posts);
            prop_assert!(a.annotations <= b.annotations);
            prop_assert!(a.friends <= b.friends);
            // Non-zero knobs never scale to zero (structure survives).
            if b.own_posts > 0 {
                prop_assert!(a.own_posts >= 1);
            }
            if b.followed_accounts > 0 {
                prop_assert!(a.followed_accounts >= 1);
            }
        }
    }

    #[test]
    fn scaling_composes_reasonably(f1 in 0.1f64..1.0, f2 in 0.1f64..1.0) {
        // scaled(f1).scaled(f2) stays within the volume envelope of
        // scaled(min(f1·f2 rounded effects considered)) — coarse check:
        // composition never exceeds a single scale by the larger factor.
        let base = DatasetConfig::paper();
        let composed = base.scaled(f1).scaled(f2);
        let single = base.scaled(f1.max(f2));
        for (c, s) in composed.volumes.iter().zip(&single.volumes) {
            prop_assert!(c.own_posts <= s.own_posts + 1);
        }
    }
}
