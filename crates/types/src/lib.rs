//! # rightcrowd-types
//!
//! Shared vocabulary types for the `rightcrowd` workspace: strongly-typed
//! identifiers, the social-platform and expertise-domain enumerations, the
//! 7-point Likert scale used by the paper's self-assessment questionnaire,
//! resource languages, and the graph-distance levels of Table 1.
//!
//! Everything here is deliberately tiny, `Copy` where possible, and free of
//! dependencies so that every other crate can build on a stable base.

pub mod distance;
pub mod domain;
pub mod ids;
pub mod language;
pub mod likert;
pub mod platform;

pub use distance::Distance;
pub use domain::Domain;
pub use ids::{ContainerId, EntityId, PageId, PersonId, QueryId, ResourceId, UserId};
pub use language::Language;
pub use likert::Likert;
pub use platform::{Platform, PlatformMask};
