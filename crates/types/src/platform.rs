//! Social platforms and platform masks.
//!
//! The paper evaluates three networks — Facebook, Twitter, LinkedIn — both
//! cumulatively ("All") and separately (Tables 3–4). [`Platform`] names one
//! network; [`PlatformMask`] selects a subset for an experiment run.

use std::fmt;

/// One of the three social networks studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Platform {
    /// Facebook: bidirectional friendships, walls, groups and pages.
    Facebook,
    /// Twitter: unidirectional `follows`, tweets, favourites; "friends" are
    /// pairs of users who mutually follow each other.
    Twitter,
    /// LinkedIn: job-oriented profiles, groups; sparse general activity.
    LinkedIn,
}

impl Platform {
    /// All platforms, in the paper's presentation order (FB, TW, LI).
    pub const ALL: [Platform; 3] = [Platform::Facebook, Platform::Twitter, Platform::LinkedIn];

    /// Number of platforms.
    pub const COUNT: usize = 3;

    /// Dense index for per-platform arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Platform::Facebook => 0,
            Platform::Twitter => 1,
            Platform::LinkedIn => 2,
        }
    }

    /// Inverse of [`Platform::index`]; panics on out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// The two-letter abbreviation used in the paper's tables.
    pub const fn abbrev(self) -> &'static str {
        match self {
            Platform::Facebook => "FB",
            Platform::Twitter => "TW",
            Platform::LinkedIn => "LI",
        }
    }

    /// Whether social links on this platform are bidirectional by
    /// construction. On Facebook every relationship is a friendship; on
    /// Twitter and LinkedIn-as-modelled links are directed and friendship
    /// is inferred from mutual links (paper §2.2).
    pub const fn bidirectional_links(self) -> bool {
        matches!(self, Platform::Facebook)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Platform::Facebook => "Facebook",
            Platform::Twitter => "Twitter",
            Platform::LinkedIn => "LinkedIn",
        };
        f.write_str(name)
    }
}

/// A set of platforms an experiment draws resources from.
///
/// The paper's Table 3 compares `All` against each single network; a mask
/// generalises that to any subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformMask(u8);

impl PlatformMask {
    /// The empty mask — matches no platform.
    pub const EMPTY: PlatformMask = PlatformMask(0);
    /// All three platforms (the paper's "All" configuration).
    pub const ALL: PlatformMask = PlatformMask(0b111);

    /// Mask selecting a single platform.
    #[inline]
    pub const fn only(p: Platform) -> Self {
        PlatformMask(1 << p.index() as u8)
    }

    /// Returns a mask with `p` added.
    #[inline]
    pub const fn with(self, p: Platform) -> Self {
        PlatformMask(self.0 | 1 << p.index() as u8)
    }

    /// Returns a mask with `p` removed.
    #[inline]
    pub const fn without(self, p: Platform) -> Self {
        PlatformMask(self.0 & !(1 << p.index() as u8))
    }

    /// Whether the mask selects platform `p`.
    #[inline]
    pub const fn contains(self, p: Platform) -> bool {
        self.0 & (1 << p.index() as u8) != 0
    }

    /// Number of selected platforms.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no platform is selected.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterator over the selected platforms in presentation order.
    pub fn iter(self) -> impl Iterator<Item = Platform> {
        Platform::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// The label used in the paper's tables: "All", "FB", "TW", "LI", or a
    /// `+`-joined combination for non-paper subsets.
    pub fn label(self) -> String {
        if self == PlatformMask::ALL {
            return "All".to_owned();
        }
        let parts: Vec<&str> = self.iter().map(Platform::abbrev).collect();
        if parts.is_empty() {
            "None".to_owned()
        } else {
            parts.join("+")
        }
    }
}

impl From<Platform> for PlatformMask {
    fn from(p: Platform) -> Self {
        PlatformMask::only(p)
    }
}

impl FromIterator<Platform> for PlatformMask {
    fn from_iter<T: IntoIterator<Item = Platform>>(iter: T) -> Self {
        iter.into_iter()
            .fold(PlatformMask::EMPTY, PlatformMask::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for p in Platform::ALL {
            assert_eq!(Platform::from_index(p.index()), p);
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Platform::Facebook.abbrev(), "FB");
        assert_eq!(Platform::Twitter.abbrev(), "TW");
        assert_eq!(Platform::LinkedIn.abbrev(), "LI");
    }

    #[test]
    fn only_facebook_is_bidirectional() {
        assert!(Platform::Facebook.bidirectional_links());
        assert!(!Platform::Twitter.bidirectional_links());
        assert!(!Platform::LinkedIn.bidirectional_links());
    }

    #[test]
    fn mask_membership() {
        let m = PlatformMask::only(Platform::Twitter).with(Platform::LinkedIn);
        assert!(m.contains(Platform::Twitter));
        assert!(m.contains(Platform::LinkedIn));
        assert!(!m.contains(Platform::Facebook));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn mask_without_removes() {
        let m = PlatformMask::ALL.without(Platform::Facebook);
        assert!(!m.contains(Platform::Facebook));
        assert_eq!(m.len(), 2);
        assert_eq!(m.without(Platform::Facebook), m);
    }

    #[test]
    fn mask_labels() {
        assert_eq!(PlatformMask::ALL.label(), "All");
        assert_eq!(PlatformMask::only(Platform::Facebook).label(), "FB");
        assert_eq!(
            PlatformMask::only(Platform::Twitter)
                .with(Platform::LinkedIn)
                .label(),
            "TW+LI"
        );
        assert_eq!(PlatformMask::EMPTY.label(), "None");
    }

    #[test]
    fn mask_iter_in_order() {
        let all: Vec<Platform> = PlatformMask::ALL.iter().collect();
        assert_eq!(all, Platform::ALL.to_vec());
    }

    #[test]
    fn mask_from_iterator() {
        let m: PlatformMask = [Platform::Facebook, Platform::Twitter].into_iter().collect();
        assert_eq!(m, PlatformMask::only(Platform::Facebook).with(Platform::Twitter));
    }
}
