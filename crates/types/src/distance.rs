//! Graph-distance levels of Table 1.
//!
//! The paper organises a candidate's resources by their distance from the
//! candidate's profile in the social graph (Fig. 2 meta-model) and caps the
//! exploration at distance 2 for privacy/cost/API reasons (§2.2).

use std::fmt;

/// Distance of a resource from a candidate-expert profile in the social
/// graph. Table 1 of the paper enumerates exactly which meta-model paths
/// produce each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// Distance 0 — the candidate's own profile.
    D0,
    /// Distance 1 — resources the candidate owns/creates/annotates, the
    /// containers the candidate relates to, and the profiles of followed
    /// users.
    D1,
    /// Distance 2 — resources inside related containers; resources
    /// owned/created/annotated by followed users; containers related to
    /// followed users; profiles followed by followed users.
    D2,
}

impl Distance {
    /// All levels in increasing order.
    pub const ALL: [Distance; 3] = [Distance::D0, Distance::D1, Distance::D2];

    /// Number of levels.
    pub const COUNT: usize = 3;

    /// The numeric level (0, 1 or 2).
    #[inline]
    pub const fn level(self) -> usize {
        match self {
            Distance::D0 => 0,
            Distance::D1 => 1,
            Distance::D2 => 2,
        }
    }

    /// Builds from a numeric level; `None` beyond the paper's cap of 2.
    #[inline]
    pub fn from_level(level: usize) -> Option<Self> {
        match level {
            0 => Some(Distance::D0),
            1 => Some(Distance::D1),
            2 => Some(Distance::D2),
            _ => None,
        }
    }

    /// The paper's resource weight `wr` for this distance: fixed in the
    /// interval `[0.5, 1]`, linearly decreasing with distance (§3.3), i.e.
    /// 1.0 at distance 0, 0.75 at distance 1, 0.5 at distance 2.
    #[inline]
    pub fn paper_weight(self) -> f64 {
        1.0 - 0.25 * self.level() as f64
    }

    /// Levels up to and including `self` (a "distance ≤ d" experiment run).
    pub fn up_to(self) -> impl Iterator<Item = Distance> {
        Distance::ALL.into_iter().take(self.level() + 1)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "distance {}", self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_roundtrip() {
        for d in Distance::ALL {
            assert_eq!(Distance::from_level(d.level()), Some(d));
        }
        assert_eq!(Distance::from_level(3), None);
    }

    #[test]
    fn paper_weights_linear_in_unit_interval() {
        assert_eq!(Distance::D0.paper_weight(), 1.0);
        assert_eq!(Distance::D1.paper_weight(), 0.75);
        assert_eq!(Distance::D2.paper_weight(), 0.5);
    }

    #[test]
    fn up_to_is_prefix() {
        let upto1: Vec<Distance> = Distance::D1.up_to().collect();
        assert_eq!(upto1, vec![Distance::D0, Distance::D1]);
        assert_eq!(Distance::D0.up_to().count(), 1);
        assert_eq!(Distance::D2.up_to().count(), 3);
    }

    #[test]
    fn ordering() {
        assert!(Distance::D0 < Distance::D1);
        assert!(Distance::D1 < Distance::D2);
    }
}
