//! The 7-point Likert scale of the self-assessment questionnaire.
//!
//! The paper's ground truth (§3.1) is built from a questionnaire in which
//! each of the 40 candidates rates their expertise for each of the 30 needs
//! on a 7-point Likert scale; per-domain expertise is derived from those
//! answers, and a candidate is a *domain expert* iff their level exceeds the
//! domain's average.

use std::fmt;

/// A self-assessed expertise level on the questionnaire's 1–7 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Likert(u8);

impl Likert {
    /// Lowest expressible expertise.
    pub const MIN: Likert = Likert(1);
    /// Highest expressible expertise.
    pub const MAX: Likert = Likert(7);

    /// Builds a level, clamping into the valid `1..=7` range.
    #[inline]
    pub fn clamped(value: i32) -> Self {
        Likert(value.clamp(1, 7) as u8)
    }

    /// Builds a level, returning `None` when out of range.
    #[inline]
    pub fn new(value: u8) -> Option<Self> {
        (1..=7).contains(&value).then_some(Likert(value))
    }

    /// The raw scale value in `1..=7`.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The level as a floating-point score, for averaging.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Normalised position in `[0, 1]` (1 ↦ 0, 7 ↦ 1); used by the
    /// generator to modulate how much a user posts about a domain.
    #[inline]
    pub fn unit(self) -> f64 {
        (self.0 - 1) as f64 / 6.0
    }

    /// Mean of a set of levels; `None` when empty.
    pub fn mean<I: IntoIterator<Item = Likert>>(levels: I) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for l in levels {
            sum += l.as_f64();
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

impl fmt::Display for Likert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/7", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Likert::new(0).is_none());
        assert!(Likert::new(8).is_none());
        assert_eq!(Likert::new(1), Some(Likert::MIN));
        assert_eq!(Likert::new(7), Some(Likert::MAX));
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Likert::clamped(-3), Likert::MIN);
        assert_eq!(Likert::clamped(100), Likert::MAX);
        assert_eq!(Likert::clamped(4).value(), 4);
    }

    #[test]
    fn unit_maps_endpoints() {
        assert_eq!(Likert::MIN.unit(), 0.0);
        assert_eq!(Likert::MAX.unit(), 1.0);
        assert!((Likert::clamped(4).unit() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_levels() {
        let levels = [Likert::clamped(2), Likert::clamped(4), Likert::clamped(6)];
        assert_eq!(Likert::mean(levels), Some(4.0));
        assert_eq!(Likert::mean([]), None);
    }

    #[test]
    fn ordering_follows_scale() {
        assert!(Likert::clamped(2) < Likert::clamped(5));
    }

    #[test]
    fn display() {
        assert_eq!(Likert::clamped(5).to_string(), "5/7");
    }
}
