//! Strongly-typed identifiers.
//!
//! Every object class of the social-graph meta-model (Fig. 2 of the paper)
//! gets its own id newtype so that a [`ResourceId`] can never be confused
//! with a [`UserId`] at a call site. Ids are dense `u32` handles allocated
//! by the store that owns the objects; they index directly into `Vec`
//! arenas, which keeps the hot ranking loops allocation-free.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index, for use as a `Vec` arena offset.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// A social-network user profile (candidate expert or non-candidate).
    UserId,
    "u"
);
id_type!(
    /// A social resource: post, tweet, status update, group/page post,
    /// comment — any informative item inside a platform.
    ResourceId,
    "r"
);
id_type!(
    /// A resource container: a group, page, or other logical aggregator of
    /// resources, typically focused on one topic or real-world entity.
    ContainerId,
    "c"
);
id_type!(
    /// An external web page reachable through a URL embedded in a profile,
    /// resource, or container.
    PageId,
    "p"
);
id_type!(
    /// A knowledge-base entity (the synthetic stand-in for a Wikipedia URI).
    EntityId,
    "e"
);
id_type!(
    /// One of the expertise needs (queries) of the evaluation workload.
    QueryId,
    "q"
);
id_type!(
    /// A real person — a candidate expert — who may hold one account
    /// ([`UserId`]) on each social platform.
    PersonId,
    "P"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw() {
        let id = ResourceId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(ResourceId::from(42u32), id);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(UserId::new(7).to_string(), "u7");
        assert_eq!(ResourceId::new(0).to_string(), "r0");
        assert_eq!(ContainerId::new(3).to_string(), "c3");
        assert_eq!(PageId::new(9).to_string(), "p9");
        assert_eq!(EntityId::new(1).to_string(), "e1");
        assert_eq!(QueryId::new(29).to_string(), "q29");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(UserId::new(1));
        set.insert(UserId::new(1));
        set.insert(UserId::new(2));
        assert_eq!(set.len(), 2);
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn distinct_types_do_not_unify() {
        // Compile-time property; keep a runtime witness that the raw values
        // can coincide while the types stay distinct.
        let u = UserId::new(5);
        let r = ResourceId::new(5);
        assert_eq!(u.index(), r.index());
        assert_ne!(u.to_string(), r.to_string());
    }
}
