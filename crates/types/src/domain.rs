//! Expertise domains.
//!
//! The paper's evaluation workload spans seven domains (§3.1); every
//! expertise need refers to exactly one of them, and ground truth is defined
//! per domain ("expert in domain d" ⇔ self-assessed expertise above the
//! domain average).

use std::fmt;
use std::str::FromStr;

/// One of the seven expertise domains of the evaluation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Computer engineering (e.g. "Which PHP function returns the length of a string?").
    ComputerEngineering,
    /// Location (e.g. "Can you list some restaurants in Milan?").
    Location,
    /// Movies & TV (e.g. "famous actors in How I Met Your Mother").
    MoviesTv,
    /// Music (e.g. "famous songs of Michael Jackson").
    Music,
    /// Science (e.g. "Why is copper a good conductor?").
    Science,
    /// Sport (e.g. "famous European football teams").
    Sport,
    /// Technology & videogames (e.g. "a graphics card to play Diablo 3").
    TechnologyGames,
}

impl Domain {
    /// All domains in the paper's presentation order (Table 4).
    pub const ALL: [Domain; 7] = [
        Domain::ComputerEngineering,
        Domain::Location,
        Domain::MoviesTv,
        Domain::Music,
        Domain::Science,
        Domain::Sport,
        Domain::TechnologyGames,
    ];

    /// Number of domains.
    pub const COUNT: usize = 7;

    /// Dense index for per-domain arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Domain::ComputerEngineering => 0,
            Domain::Location => 1,
            Domain::MoviesTv => 2,
            Domain::Music => 3,
            Domain::Science => 4,
            Domain::Sport => 5,
            Domain::TechnologyGames => 6,
        }
    }

    /// Inverse of [`Domain::index`]; panics on out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Human-readable label as printed in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            Domain::ComputerEngineering => "Computer engineering",
            Domain::Location => "Location",
            Domain::MoviesTv => "Movies & TV",
            Domain::Music => "Music",
            Domain::Science => "Science",
            Domain::Sport => "Sport",
            Domain::TechnologyGames => "Technology & games",
        }
    }

    /// Compact machine-friendly slug.
    pub const fn slug(self) -> &'static str {
        match self {
            Domain::ComputerEngineering => "computer",
            Domain::Location => "location",
            Domain::MoviesTv => "movies",
            Domain::Music => "music",
            Domain::Science => "science",
            Domain::Sport => "sport",
            Domain::TechnologyGames => "technology",
        }
    }

    /// Whether this domain is "entertainment-leaning"; the paper observes
    /// (§3.7) that Facebook activity concentrates on such topics while
    /// work/science topics concentrate on Twitter and LinkedIn.
    pub const fn entertainment(self) -> bool {
        matches!(
            self,
            Domain::Location | Domain::MoviesTv | Domain::Music | Domain::Sport
        )
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown domain slug or label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDomainError(pub String);

impl fmt::Display for ParseDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown expertise domain: {:?}", self.0)
    }
}

impl std::error::Error for ParseDomainError {}

impl FromStr for Domain {
    type Err = ParseDomainError;

    /// Accepts both slugs (`"music"`) and paper labels (`"Movies & TV"`),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.trim().to_ascii_lowercase();
        Domain::ALL
            .into_iter()
            .find(|d| {
                d.slug() == lowered
                    || d.label().to_ascii_lowercase() == lowered
            })
            .ok_or_else(|| ParseDomainError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for d in Domain::ALL {
            assert_eq!(Domain::from_index(d.index()), d);
        }
    }

    #[test]
    fn seven_domains() {
        assert_eq!(Domain::ALL.len(), Domain::COUNT);
        assert_eq!(Domain::COUNT, 7);
    }

    #[test]
    fn parse_slug_and_label() {
        assert_eq!("music".parse::<Domain>().unwrap(), Domain::Music);
        assert_eq!("Movies & TV".parse::<Domain>().unwrap(), Domain::MoviesTv);
        assert_eq!(
            "COMPUTER ENGINEERING".parse::<Domain>().unwrap(),
            Domain::ComputerEngineering
        );
        assert!("underwater basket weaving".parse::<Domain>().is_err());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Domain::TechnologyGames.label(), "Technology & games");
        assert_eq!(Domain::ComputerEngineering.label(), "Computer engineering");
    }

    #[test]
    fn entertainment_split() {
        let fun: Vec<Domain> = Domain::ALL.into_iter().filter(|d| d.entertainment()).collect();
        assert_eq!(
            fun,
            vec![Domain::Location, Domain::MoviesTv, Domain::Music, Domain::Sport]
        );
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = Domain::ALL.iter().map(|d| d.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Domain::COUNT);
    }
}
