//! Resource languages.
//!
//! The paper (§2.3) runs a language-identification step and keeps only
//! English resources for the downstream pipeline (230k of the 330k collected
//! items). The `rightcrowd-langid` crate classifies into this enumeration.

use std::fmt;

/// A natural language a resource can be written in.
///
/// The set covers English plus the Romance/Germanic languages most common in
/// the paper's Italian-recruited user pool; anything else maps to
/// [`Language::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Language {
    /// English — the only language retained by the paper's pipeline.
    English,
    /// Italian.
    Italian,
    /// French.
    French,
    /// German.
    German,
    /// Spanish.
    Spanish,
    /// Unidentifiable or out-of-inventory text.
    Unknown,
}

impl Language {
    /// The identifiable languages (excludes [`Language::Unknown`]).
    pub const KNOWN: [Language; 5] = [
        Language::English,
        Language::Italian,
        Language::French,
        Language::German,
        Language::Spanish,
    ];

    /// ISO 639-1 code ("en", "it", …); `"und"` for unknown.
    pub const fn code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::Italian => "it",
            Language::French => "fr",
            Language::German => "de",
            Language::Spanish => "es",
            Language::Unknown => "und",
        }
    }

    /// Parses an ISO 639-1 code; unknown codes map to `Unknown`.
    pub fn from_code(code: &str) -> Self {
        match code {
            "en" => Language::English,
            "it" => Language::Italian,
            "fr" => Language::French,
            "de" => Language::German,
            "es" => Language::Spanish,
            _ => Language::Unknown,
        }
    }

    /// Whether the paper's pipeline keeps resources in this language.
    #[inline]
    pub const fn retained(self) -> bool {
        matches!(self, Language::English)
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::English => "English",
            Language::Italian => "Italian",
            Language::French => "French",
            Language::German => "German",
            Language::Spanish => "Spanish",
            Language::Unknown => "Unknown",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for lang in Language::KNOWN {
            assert_eq!(Language::from_code(lang.code()), lang);
        }
        assert_eq!(Language::from_code("zz"), Language::Unknown);
        assert_eq!(Language::Unknown.code(), "und");
    }

    #[test]
    fn only_english_retained() {
        assert!(Language::English.retained());
        for lang in [Language::Italian, Language::French, Language::German, Language::Spanish] {
            assert!(!lang.retained());
        }
    }
}
