//! Property tests for language identification.

use proptest::prelude::*;
use rightcrowd_langid::{LanguageIdentifier, LanguageProfile};
use rightcrowd_types::Language;
use std::sync::OnceLock;

fn ident() -> &'static LanguageIdentifier {
    static CELL: OnceLock<LanguageIdentifier> = OnceLock::new();
    CELL.get_or_init(LanguageIdentifier::new)
}

proptest! {
    #[test]
    fn classification_is_total_and_bounded(text in "\\PC{0,300}") {
        let c = ident().classify(&text);
        prop_assert!((0.0..=1.0).contains(&c.confidence), "confidence {}", c.confidence);
        // Unknown always comes with zero confidence.
        if c.language == Language::Unknown {
            prop_assert_eq!(c.confidence, 0.0);
        }
    }

    #[test]
    fn short_texts_are_always_unknown(text in "\\PC{0,8}") {
        // Fewer than MIN_TEXT_LEN alphabetic chars → inconclusive.
        let alphabetic = text.chars().filter(|c| c.is_alphabetic()).count();
        prop_assume!(alphabetic < rightcrowd_langid::classifier::MIN_TEXT_LEN);
        prop_assert_eq!(ident().detect(&text), Language::Unknown);
    }

    #[test]
    fn classification_is_deterministic(text in "\\PC{0,150}") {
        prop_assert_eq!(ident().classify(&text), ident().classify(&text));
    }

    #[test]
    fn profile_distance_is_zero_to_self(text in "[a-z ]{30,120}") {
        let p = LanguageProfile::from_text(Language::Unknown, &text);
        prop_assert_eq!(p.out_of_place(&p), 0);
    }

    #[test]
    fn out_of_place_is_bounded_by_all_miss(a in "[a-z ]{10,80}", b in "[a-z ]{10,80}") {
        let pa = LanguageProfile::from_text(Language::Unknown, &a);
        let pb = LanguageProfile::from_text(Language::Unknown, &b);
        let d = pa.out_of_place(&pb);
        prop_assert!(d <= pb.len() * rightcrowd_langid::profile::PROFILE_SIZE);
    }
}
