//! Embedded seed corpora for training language profiles.
//!
//! A few hundred words of ordinary prose per language — enough for the
//! rank-order classifier to separate the five languages that occur in the
//! simulated user pool. The texts deliberately mix registers (social chat,
//! news-ish sentences, questions) to resemble social-feed content.

use rightcrowd_types::Language;

/// English seed corpus.
pub const ENGLISH: &str = "\
The quick brown fox jumps over the lazy dog while everyone is watching the game on television. \
I just finished a thirty minute training session at the swimming pool and it felt great. \
Can you list some famous songs or tell me which restaurants are open near the city centre tonight? \
We are looking for a new graphics card to play the latest games but we do not want to spend too much money. \
Why is copper such a good conductor of electricity and what makes the sky look blue in the evening? \
She posted a photo of her holiday with friends and wrote that the weather was wonderful all week. \
The team won the championship after a difficult season and the fans celebrated in the streets. \
There is a new update for the application that fixes several bugs and improves performance on older phones. \
My brother works as a software engineer and he often writes about programming languages on his blog. \
Please remember to bring your ticket because the concert starts early and the doors close at eight. \
This book explains how the human brain learns new skills through practice and constant feedback. \
They travelled across the country by train and stopped in every small town along the river. \
What do you think about the new movie that everyone keeps talking about this week? \
The weather forecast says it will rain tomorrow so take an umbrella when you leave the house. \
Our teacher asked us to read three chapters and write a short summary before the next lesson. \
The market was full of fresh vegetables and the smell of baked bread filled the whole square.";

/// Italian seed corpus.
pub const ITALIAN: &str = "\
Il gatto dorme sul divano mentre fuori piove e il vento muove le foglie degli alberi. \
Ho appena finito trenta minuti di allenamento in piscina e adesso sono davvero stanco ma felice. \
Puoi consigliarmi qualche ristorante buono vicino al centro di Milano per una cena con gli amici? \
Sto cercando una nuova scheda grafica per giocare ma non voglio spendere troppi soldi questo mese. \
Perché il rame è un buon conduttore di elettricità e come funziona davvero la corrente elettrica? \
Ha pubblicato una foto delle vacanze con gli amici e ha scritto che il tempo era bellissimo. \
La squadra ha vinto il campionato dopo una stagione difficile e i tifosi hanno festeggiato in piazza. \
C'è un nuovo aggiornamento per l'applicazione che risolve molti problemi e migliora le prestazioni. \
Mio fratello lavora come ingegnere informatico e scrive spesso di linguaggi di programmazione sul suo blog. \
Ricordati di portare il biglietto perché il concerto comincia presto e le porte chiudono alle otto. \
Questo libro spiega come il cervello umano impara nuove capacità con la pratica e l'esercizio costante. \
Hanno viaggiato per tutto il paese in treno fermandosi in ogni piccolo paese lungo il fiume. \
Cosa ne pensi del nuovo film di cui parlano tutti questa settimana al cinema? \
Le previsioni dicono che domani pioverà quindi prendi l'ombrello quando esci di casa la mattina.";

/// French seed corpus.
pub const FRENCH: &str = "\
Le chat dort sur le canapé pendant que la pluie tombe et que le vent agite les feuilles des arbres. \
Je viens de terminer trente minutes d'entraînement à la piscine et je me sens vraiment très bien. \
Peux-tu me conseiller quelques bons restaurants près du centre-ville pour un dîner entre amis ce soir? \
Je cherche une nouvelle carte graphique pour jouer mais je ne veux pas dépenser trop d'argent ce mois-ci. \
Pourquoi le cuivre est-il un bon conducteur d'électricité et comment fonctionne vraiment le courant? \
Elle a publié une photo de ses vacances avec ses amis et a écrit que le temps était magnifique. \
L'équipe a gagné le championnat après une saison difficile et les supporters ont fêté dans les rues. \
Il y a une nouvelle mise à jour de l'application qui corrige plusieurs problèmes et améliore les performances. \
Mon frère travaille comme ingénieur en informatique et il écrit souvent sur les langages de programmation. \
N'oublie pas d'apporter ton billet parce que le concert commence tôt et les portes ferment à huit heures. \
Ce livre explique comment le cerveau humain apprend de nouvelles compétences par la pratique régulière. \
Ils ont voyagé à travers le pays en train en s'arrêtant dans chaque petite ville le long de la rivière. \
Que penses-tu du nouveau film dont tout le monde parle cette semaine au cinéma? \
La météo annonce de la pluie pour demain alors prends ton parapluie quand tu sors de la maison.";

/// German seed corpus.
pub const GERMAN: &str = "\
Die Katze schläft auf dem Sofa während draußen der Regen fällt und der Wind die Blätter bewegt. \
Ich habe gerade dreißig Minuten Training im Schwimmbad beendet und fühle mich wirklich sehr gut. \
Kannst du mir ein paar gute Restaurants in der Nähe vom Stadtzentrum für ein Abendessen empfehlen? \
Ich suche eine neue Grafikkarte zum Spielen aber ich möchte diesen Monat nicht zu viel Geld ausgeben. \
Warum ist Kupfer ein guter Leiter für Elektrizität und wie funktioniert der elektrische Strom wirklich? \
Sie hat ein Foto vom Urlaub mit ihren Freunden gepostet und geschrieben dass das Wetter wunderbar war. \
Die Mannschaft hat die Meisterschaft nach einer schwierigen Saison gewonnen und die Fans haben gefeiert. \
Es gibt ein neues Update für die Anwendung das mehrere Fehler behebt und die Leistung deutlich verbessert. \
Mein Bruder arbeitet als Softwareentwickler und schreibt oft über Programmiersprachen in seinem Blog. \
Bitte denk daran deine Karte mitzubringen weil das Konzert früh beginnt und die Türen um acht schließen. \
Dieses Buch erklärt wie das menschliche Gehirn neue Fähigkeiten durch Übung und ständiges Lernen erwirbt. \
Sie sind mit dem Zug durch das ganze Land gereist und haben in jeder kleinen Stadt am Fluss angehalten. \
Was denkst du über den neuen Film über den diese Woche alle im Kino sprechen? \
Der Wetterbericht sagt für morgen Regen voraus also nimm einen Schirm mit wenn du das Haus verlässt.";

/// Spanish seed corpus.
pub const SPANISH: &str = "\
El gato duerme en el sofá mientras afuera llueve y el viento mueve las hojas de los árboles. \
Acabo de terminar treinta minutos de entrenamiento en la piscina y me siento realmente muy bien. \
¿Puedes recomendarme algunos buenos restaurantes cerca del centro de la ciudad para cenar con amigos? \
Estoy buscando una nueva tarjeta gráfica para jugar pero no quiero gastar demasiado dinero este mes. \
¿Por qué el cobre es un buen conductor de electricidad y cómo funciona realmente la corriente eléctrica? \
Ella publicó una foto de sus vacaciones con sus amigas y escribió que el tiempo fue maravilloso. \
El equipo ganó el campeonato después de una temporada difícil y los aficionados celebraron en las calles. \
Hay una nueva actualización de la aplicación que corrige varios errores y mejora el rendimiento general. \
Mi hermano trabaja como ingeniero de software y escribe a menudo sobre lenguajes de programación en su blog. \
Recuerda traer tu entrada porque el concierto empieza temprano y las puertas cierran a las ocho en punto. \
Este libro explica cómo el cerebro humano aprende nuevas habilidades con la práctica y el esfuerzo constante. \
Viajaron por todo el país en tren deteniéndose en cada pequeño pueblo a lo largo del río. \
¿Qué piensas de la nueva película de la que todos hablan esta semana en el cine? \
El pronóstico dice que mañana va a llover así que lleva un paraguas cuando salgas de casa.";

/// The (language, corpus) training pairs.
pub fn training_pairs() -> [(Language, &'static str); 5] {
    [
        (Language::English, ENGLISH),
        (Language::Italian, ITALIAN),
        (Language::French, FRENCH),
        (Language::German, GERMAN),
        (Language::Spanish, SPANISH),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_distinct() {
        let pairs = training_pairs();
        assert_eq!(pairs.len(), 5);
        for (lang, text) in &pairs {
            assert!(text.split_whitespace().count() > 150, "{lang} corpus too small");
        }
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                assert_ne!(pairs[i].1, pairs[j].1);
            }
        }
    }

    #[test]
    fn covers_known_languages_exactly() {
        let langs: Vec<Language> = training_pairs().iter().map(|p| p.0).collect();
        assert_eq!(langs, Language::KNOWN.to_vec());
    }
}
