//! Language profiles: ranked n-gram tables.

use rightcrowd_text::ngram::ngram_profile;
use rightcrowd_types::Language;
use std::collections::HashMap;

/// Number of top-ranked n-grams retained per profile (Cavnar–Trenkle used
/// 300; social snippets are short so a slightly larger table is forgiving).
pub const PROFILE_SIZE: usize = 400;

/// N-gram sizes mixed into one profile. Cavnar–Trenkle pool 1..=5-grams;
/// 2- and 3-grams carry nearly all the signal at a fraction of the cost.
pub const NGRAM_SIZES: [usize; 2] = [2, 3];

/// A ranked n-gram profile for one language (or one input document).
#[derive(Debug, Clone)]
pub struct LanguageProfile {
    /// The language this profile describes; `Unknown` for query documents.
    pub language: Language,
    /// Gram → rank (0 = most frequent). At most [`PROFILE_SIZE`] entries.
    ranks: HashMap<String, usize>,
}

impl LanguageProfile {
    /// Builds a profile from training text.
    pub fn from_text(language: Language, text: &str) -> Self {
        let mut merged: Vec<(String, usize)> = Vec::new();
        for n in NGRAM_SIZES {
            merged.extend(ngram_profile(text, n));
        }
        // Re-sort the merged multi-n profile by count desc, gram asc.
        merged.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        merged.truncate(PROFILE_SIZE);
        let ranks = merged
            .into_iter()
            .enumerate()
            .map(|(rank, (gram, _))| (gram, rank))
            .collect();
        LanguageProfile { language, ranks }
    }

    /// Number of grams in the profile.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the profile is empty (built from empty/degenerate text).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Rank of `gram`, if present.
    pub fn rank(&self, gram: &str) -> Option<usize> {
        self.ranks.get(gram).copied()
    }

    /// Cavnar–Trenkle out-of-place distance from a *document* profile to
    /// this *language* profile: for every gram of the document, the absolute
    /// rank difference, with a fixed maximum penalty for grams missing from
    /// the language profile. Lower is closer.
    pub fn out_of_place(&self, document: &LanguageProfile) -> usize {
        let missing_penalty = PROFILE_SIZE;
        let mut distance = 0usize;
        for (gram, &doc_rank) in &document.ranks {
            distance += match self.rank(gram) {
                Some(lang_rank) => lang_rank.abs_diff(doc_rank),
                None => missing_penalty,
            };
        }
        distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_ranks_most_frequent_first() {
        let p = LanguageProfile::from_text(Language::English, "the the the cat sat");
        // "th"/"the" style grams from the repeated word must rank above the
        // single-occurrence grams.
        let the_rank = p.rank("the").expect("trigram 'the' present");
        let cat_rank = p.rank("cat").expect("trigram 'cat' present");
        assert!(the_rank < cat_rank);
    }

    #[test]
    fn identical_profiles_have_small_distance() {
        let text = "the quick brown fox jumps over the lazy dog and runs away";
        let a = LanguageProfile::from_text(Language::English, text);
        let b = LanguageProfile::from_text(Language::Unknown, text);
        assert_eq!(a.out_of_place(&b), 0);
    }

    #[test]
    fn disjoint_profiles_take_max_penalty() {
        let a = LanguageProfile::from_text(Language::English, "aaaa aaaa");
        let b = LanguageProfile::from_text(Language::Unknown, "zzzz zzzz");
        // Every document gram is missing from the language profile.
        assert_eq!(a.out_of_place(&b), b.len() * PROFILE_SIZE);
    }

    #[test]
    fn empty_text_gives_empty_profile() {
        let p = LanguageProfile::from_text(Language::English, "");
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn profile_capped_at_size() {
        // Generate text with many distinct grams.
        let mut text = String::new();
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                text.push(a as char);
                text.push(b as char);
                text.push(a as char);
                text.push(' ');
            }
        }
        let p = LanguageProfile::from_text(Language::English, &text);
        assert_eq!(p.len(), PROFILE_SIZE);
    }
}
