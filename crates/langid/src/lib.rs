//! # rightcrowd-langid
//!
//! Language identification for the "Language Identification" stage of the
//! paper's analysis pipeline (Fig. 4). Social-network users interact in many
//! languages; the paper classifies each resource by its main language and
//! keeps only English items for the (language-dependent) text-processing and
//! entity-annotation stages — of ~330k collected resources, ~230k were
//! English.
//!
//! The classifier is a from-scratch implementation of the Cavnar–Trenkle
//! rank-order ("out-of-place") character n-gram method (*N-Gram-Based Text
//! Categorization*, SDAIR 1994), trained at first use on small embedded
//! seed corpora for English, Italian, French, German and Spanish.

pub mod classifier;
pub mod corpora;
pub mod profile;

pub use classifier::{Classification, LanguageIdentifier};
pub use profile::LanguageProfile;
