//! The rank-order language classifier.

use crate::corpora::training_pairs;
use crate::profile::{LanguageProfile, PROFILE_SIZE};
use rightcrowd_types::Language;

/// Minimum number of characters before a classification is attempted;
/// shorter snippets ("ok!!", "+1") return [`Language::Unknown`].
pub const MIN_TEXT_LEN: usize = 12;

/// Maximum allowed average out-of-place distance per document gram; above
/// this the text matches no trained language well enough and is `Unknown`.
/// Expressed as a fraction of the worst-case (all-miss) distance.
pub const MAX_REL_DISTANCE: f64 = 0.9;

/// The result of classifying one text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Best-matching language ([`Language::Unknown`] when inconclusive).
    pub language: Language,
    /// Confidence in `[0, 1]`: 1 − relative out-of-place distance of the
    /// winner. Higher means a closer profile match.
    pub confidence: f64,
}

impl Classification {
    /// The inconclusive classification.
    pub const UNKNOWN: Classification = Classification { language: Language::Unknown, confidence: 0.0 };
}

/// A trained language identifier.
///
/// Construction trains rank-order profiles from the embedded corpora; the
/// instance is immutable afterwards and cheap to share.
#[derive(Debug, Clone)]
pub struct LanguageIdentifier {
    profiles: Vec<LanguageProfile>,
}

impl Default for LanguageIdentifier {
    fn default() -> Self {
        Self::new()
    }
}

impl LanguageIdentifier {
    /// Trains the identifier on the embedded seed corpora.
    pub fn new() -> Self {
        let profiles = training_pairs()
            .into_iter()
            .map(|(lang, text)| LanguageProfile::from_text(lang, text))
            .collect();
        LanguageIdentifier { profiles }
    }

    /// Classifies `text`, returning the best language and a confidence.
    pub fn classify(&self, text: &str) -> Classification {
        let _span = rightcrowd_obs::span!("langid.classify");
        let informative: usize = text.chars().filter(|c| c.is_alphabetic()).count();
        if informative < MIN_TEXT_LEN {
            return Classification::UNKNOWN;
        }
        let document = LanguageProfile::from_text(Language::Unknown, text);
        if document.is_empty() {
            return Classification::UNKNOWN;
        }
        let worst = document.len() * PROFILE_SIZE;
        let mut best: Option<(Language, usize)> = None;
        for profile in &self.profiles {
            let d = profile.out_of_place(&document);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((profile.language, d));
            }
        }
        let (language, distance) = best.expect("at least one trained profile");
        let rel = distance as f64 / worst as f64;
        if rel > MAX_REL_DISTANCE {
            return Classification::UNKNOWN;
        }
        Classification { language, confidence: 1.0 - rel }
    }

    /// Convenience: the detected language only.
    pub fn detect(&self, text: &str) -> Language {
        self.classify(text).language
    }

    /// Whether the paper's pipeline would retain this text (English).
    pub fn retains(&self, text: &str) -> bool {
        self.detect(text).retained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident() -> LanguageIdentifier {
        LanguageIdentifier::new()
    }

    #[test]
    fn classifies_clear_english() {
        let c = ident().classify("I just finished a great swimming session at the pool with my friends");
        assert_eq!(c.language, Language::English);
        assert!(c.confidence > 0.3, "confidence {}", c.confidence);
    }

    #[test]
    fn classifies_clear_italian() {
        let c = ident().classify("Oggi sono andato in piscina con gli amici e poi abbiamo mangiato una pizza buonissima");
        assert_eq!(c.language, Language::Italian);
    }

    #[test]
    fn classifies_clear_french() {
        assert_eq!(
            ident().detect("Je voudrais savoir quels sont les meilleurs restaurants près de chez moi"),
            Language::French
        );
    }

    #[test]
    fn classifies_clear_german() {
        assert_eq!(
            ident().detect("Ich habe gestern ein sehr interessantes Buch über die Geschichte gelesen"),
            Language::German
        );
    }

    #[test]
    fn classifies_clear_spanish() {
        assert_eq!(
            ident().detect("Me gustaría saber cuáles son las mejores canciones de este año para la fiesta"),
            Language::Spanish
        );
    }

    #[test]
    fn short_snippets_are_unknown() {
        let id = ident();
        assert_eq!(id.classify("ok!"), Classification::UNKNOWN);
        assert_eq!(id.classify("+1"), Classification::UNKNOWN);
        assert_eq!(id.classify(""), Classification::UNKNOWN);
        assert_eq!(id.classify("12345 67890 0001"), Classification::UNKNOWN);
    }

    #[test]
    fn retains_only_english() {
        let id = ident();
        assert!(id.retains("What do you suggest for a cheap graphics card to play new games?"));
        assert!(!id.retains("Quale scheda grafica mi consigliate per giocare senza spendere troppo?"));
    }

    #[test]
    fn paper_example_queries_are_english() {
        let id = ident();
        for q in [
            "Which PHP function can I use in order to obtain the length of a string?",
            "Can you list some restaurants in Milan?",
            "Can you list some famous actors in how I met your mother?",
            "Can you list some famous songs of Michael Jackson?",
            "Why is copper a good conductor?",
            "Can you list some famous European football teams?",
        ] {
            assert_eq!(id.detect(q), Language::English, "misclassified: {q}");
        }
    }

    #[test]
    fn confidence_in_unit_interval() {
        let id = ident();
        for text in [
            "the cat sat on the mat and watched the birds outside",
            "il gatto dorme tutto il giorno sul divano di casa",
            "xqzw vvkk zzzz qqqq wwww",
        ] {
            let c = id.classify(text);
            assert!((0.0..=1.0).contains(&c.confidence), "{text}: {}", c.confidence);
        }
    }
}
