//! Binary confusion counts and the derived precision / recall / F1.
//!
//! Used by the per-user reliability analysis of the paper's Fig. 10, where
//! every (user, query) pair is a binary prediction: "the system retrieved
//! this user for this query" versus "the user is a domain expert for it".

/// Accumulated binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
}

impl Confusion {
    /// Records one prediction/truth pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another confusion table into this one.
    pub fn merge(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total number of recorded pairs.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when nothing is actually positive.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 — harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy `(tp + tn) / total`; 0 on an empty table.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_cells() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn perfect_predictor() {
        let mut c = Confusion::default();
        for _ in 0..5 {
            c.record(true, true);
        }
        for _ in 0..5 {
            c.record(false, false);
        }
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = Confusion::default();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);

        let mut never_predicts = Confusion::default();
        never_predicts.record(false, true);
        assert_eq!(never_predicts.precision(), 0.0);
        assert_eq!(never_predicts.recall(), 0.0);
        assert_eq!(never_predicts.f1(), 0.0);
    }

    #[test]
    fn f1_known_value() {
        // P = 0.5 (1 TP, 1 FP), R = 1/3 (1 TP, 2 FN) → F1 = 0.4.
        let c = Confusion { tp: 1, fp: 1, fn_: 2, tn: 0 };
        assert!((c.f1() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = Confusion { tp: 1, fp: 2, fn_: 3, tn: 4 };
        a.merge(Confusion { tp: 10, fp: 20, fn_: 30, tn: 40 });
        assert_eq!(a, Confusion { tp: 11, fp: 22, fn_: 33, tn: 44 });
    }
}
