//! # rightcrowd-metrics
//!
//! The retrieval-evaluation metrics of the paper's §3.2, implemented from
//! their textbook definitions:
//!
//! - **MAP** — Mean Average Precision;
//! - **11-P** — 11-point interpolated average precision curve;
//! - **MRR** — Mean Reciprocal Rank;
//! - **DCG / NDCG / NDCG\@k** — (Normalised) Discounted Cumulative Gain,
//!   in the original Järvelin–Kekäläinen formulation
//!   (`DCG = g₁ + Σ_{i≥2} gᵢ/log₂ i`), which reproduces the magnitude of
//!   the paper's summed DCG curves (Figs. 8–9);
//! - **precision / recall / F1** — for the per-user analysis of Fig. 10.
//!
//! Rankings are represented as boolean relevance vectors (`rels[i]` = "the
//! item returned at rank *i+1* is a domain expert"), the form the paper's
//! boolean ground truth produces.

pub mod aggregate;
pub mod confusion;
pub mod ranked;

pub use aggregate::{mean_eval, MeanEval, QueryEval};
pub use confusion::Confusion;
pub use ranked::{
    average_precision, dcg, idcg, interpolated_precision_11pt, ndcg, precision_at, recall_at,
    reciprocal_rank,
};
