//! Per-query ranked-retrieval metrics.

/// Average precision of one ranking.
///
/// `rels[i]` states whether the item at rank `i+1` is relevant;
/// `total_relevant` is the number of relevant items in the ground truth
/// (the denominator — unretrieved relevant items count against the score).
/// Returns 0 when the ground truth is empty.
pub fn average_precision(rels: &[bool], total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &rel) in rels.iter().enumerate() {
        if rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Reciprocal rank: `1/rank` of the first relevant item, 0 if none.
pub fn reciprocal_rank(rels: &[bool]) -> f64 {
    rels.iter()
        .position(|&r| r)
        .map_or(0.0, |i| 1.0 / (i + 1) as f64)
}

/// Precision at cutoff `k` (`k ≥ 1`). Items beyond the ranking's length
/// count as non-relevant, matching trec_eval behaviour.
pub fn precision_at(rels: &[bool], k: usize) -> f64 {
    assert!(k >= 1, "cutoff must be at least 1");
    let hits = rels.iter().take(k).filter(|&&r| r).count();
    hits as f64 / k as f64
}

/// Recall at cutoff `k`. Returns 0 when the ground truth is empty.
pub fn recall_at(rels: &[bool], k: usize, total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let hits = rels.iter().take(k).filter(|&&r| r).count();
    hits as f64 / total_relevant as f64
}

/// Discounted cumulative gain over graded gains, original Järvelin
/// formulation: `DCG@k = g₁ + Σ_{i=2..k} gᵢ / log₂(i)`.
///
/// `k = None` means "no cutoff" (use the whole ranking).
pub fn dcg(gains: &[f64], k: Option<usize>) -> f64 {
    let cut = k.unwrap_or(gains.len()).min(gains.len());
    gains
        .iter()
        .take(cut)
        .enumerate()
        .map(|(i, &g)| {
            if i == 0 {
                g
            } else {
                g / ((i + 1) as f64).log2()
            }
        })
        .sum()
}

/// Ideal DCG for a boolean ground truth with `total_relevant` relevant
/// items: the DCG of the ranking that lists all of them first.
pub fn idcg(total_relevant: usize, k: Option<usize>) -> f64 {
    let n = k.map_or(total_relevant, |k| k.min(total_relevant));
    let ones = vec![1.0; n];
    dcg(&ones, None)
}

/// Normalised DCG for a boolean relevance vector. Returns 0 when the
/// ground truth is empty.
pub fn ndcg(rels: &[bool], total_relevant: usize, k: Option<usize>) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let gains: Vec<f64> = rels.iter().map(|&r| if r { 1.0 } else { 0.0 }).collect();
    let ideal = idcg(total_relevant, k);
    if ideal == 0.0 {
        0.0
    } else {
        dcg(&gains, k) / ideal
    }
}

/// The 11-point interpolated precision curve: for each recall level
/// `r ∈ {0.0, 0.1, …, 1.0}`, the maximum precision attained at any point of
/// the ranking whose recall is ≥ r.
pub fn interpolated_precision_11pt(rels: &[bool], total_relevant: usize) -> [f64; 11] {
    let mut curve = [0.0; 11];
    if total_relevant == 0 {
        return curve;
    }
    // (recall, precision) at every rank.
    let mut points = Vec::with_capacity(rels.len());
    let mut hits = 0usize;
    for (i, &rel) in rels.iter().enumerate() {
        if rel {
            hits += 1;
        }
        points.push((
            hits as f64 / total_relevant as f64,
            hits as f64 / (i + 1) as f64,
        ));
    }
    for (level, slot) in curve.iter_mut().enumerate() {
        let r = level as f64 / 10.0;
        *slot = points
            .iter()
            .filter(|(recall, _)| *recall >= r - 1e-12)
            .map(|&(_, p)| p)
            .fold(0.0, f64::max);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: bool = true;
    const F: bool = false;

    #[test]
    fn ap_perfect_ranking() {
        assert_eq!(average_precision(&[T, T, T], 3), 1.0);
    }

    #[test]
    fn ap_textbook_example() {
        // Relevant at ranks 1, 3, 5 out of 3 relevant total:
        // AP = (1/1 + 2/3 + 3/5) / 3
        let ap = average_precision(&[T, F, T, F, T], 3);
        assert!((ap - (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_penalises_unretrieved_relevant() {
        // Same ranking, but ground truth has 6 relevant items.
        let ap = average_precision(&[T, F, T, F, T], 6);
        assert!((ap - (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_empty_cases() {
        assert_eq!(average_precision(&[], 3), 0.0);
        assert_eq!(average_precision(&[F, F], 2), 0.0);
        assert_eq!(average_precision(&[T], 0), 0.0);
    }

    #[test]
    fn rr_positions() {
        assert_eq!(reciprocal_rank(&[T, F]), 1.0);
        assert_eq!(reciprocal_rank(&[F, T]), 0.5);
        assert_eq!(reciprocal_rank(&[F, F, F, T]), 0.25);
        assert_eq!(reciprocal_rank(&[F, F]), 0.0);
        assert_eq!(reciprocal_rank(&[]), 0.0);
    }

    #[test]
    fn precision_recall_at_cutoffs() {
        let rels = [T, F, T, T, F];
        assert_eq!(precision_at(&rels, 1), 1.0);
        assert_eq!(precision_at(&rels, 2), 0.5);
        assert_eq!(precision_at(&rels, 5), 0.6);
        // Cutoff beyond length pads with non-relevant.
        assert_eq!(precision_at(&rels, 10), 0.3);
        assert_eq!(recall_at(&rels, 2, 4), 0.25);
        assert_eq!(recall_at(&rels, 5, 4), 0.75);
        assert_eq!(recall_at(&rels, 5, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn precision_at_zero_panics() {
        precision_at(&[T], 0);
    }

    #[test]
    fn dcg_jarvelin_formulation() {
        // DCG = g1 + g2/log2(2) + g3/log2(3)
        let d = dcg(&[3.0, 2.0, 3.0], None);
        assert!((d - (3.0 + 2.0 / 1.0 + 3.0 / 3.0f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn dcg_cutoff() {
        let gains = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(dcg(&gains, Some(1)), 1.0);
        assert_eq!(dcg(&gains, Some(2)), 2.0);
        assert!(dcg(&gains, Some(4)) > dcg(&gains, Some(3)));
        assert_eq!(dcg(&gains, Some(100)), dcg(&gains, None));
        assert_eq!(dcg(&[], None), 0.0);
    }

    #[test]
    fn ndcg_bounds_and_perfection() {
        assert_eq!(ndcg(&[T, T, F, F], 2, None), 1.0);
        let n = ndcg(&[F, T, F, T], 2, None);
        assert!(n > 0.0 && n < 1.0);
        assert_eq!(ndcg(&[F, F], 2, None), 0.0);
        assert_eq!(ndcg(&[T], 0, None), 0.0);
    }

    #[test]
    fn ndcg_at_10_ignores_tail() {
        let mut rels = vec![F; 15];
        rels[12] = T; // Only relevant item beyond the cutoff.
        assert_eq!(ndcg(&rels, 1, Some(10)), 0.0);
        rels[0] = T;
        assert!(ndcg(&rels, 2, Some(10)) > 0.0);
    }

    #[test]
    fn interp11_monotone_nonincreasing() {
        let rels = [T, F, T, F, F, T, F, F];
        let curve = interpolated_precision_11pt(&rels, 3);
        for w in curve.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "curve must be non-increasing: {curve:?}");
        }
        // Precision at recall 0 is the max precision anywhere: 1.0 here.
        assert_eq!(curve[0], 1.0);
    }

    #[test]
    fn interp11_perfect_and_empty() {
        let perfect = interpolated_precision_11pt(&[T, T], 2);
        assert!(perfect.iter().all(|&p| (p - 1.0).abs() < 1e-12));
        let none = interpolated_precision_11pt(&[F, F], 2);
        assert!(none.iter().all(|&p| p == 0.0));
        let empty_gt = interpolated_precision_11pt(&[T], 0);
        assert!(empty_gt.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn interp11_unreached_recall_levels_are_zero() {
        // Only 1 of 2 relevant retrieved: recall never reaches 1.0.
        let curve = interpolated_precision_11pt(&[T, F], 2);
        assert_eq!(curve[10], 0.0);
        assert!(curve[5] > 0.0); // Recall 0.5 reached at rank 1.
    }
}
