//! Aggregation of per-query metrics into the paper's table rows.
//!
//! Each experiment evaluates 30 queries and reports the across-query means:
//! MAP (mean of APs), MRR (mean of RRs), NDCG, NDCG@10, the averaged
//! 11-point curve, and the *summed* DCG curve at cutoffs 5/10/15/20 used in
//! Figs. 8–9.

use crate::ranked::{
    average_precision, dcg, interpolated_precision_11pt, ndcg, reciprocal_rank,
};

/// DCG curve cutoffs used by the paper's Figs. 8b and 9b.
pub const DCG_CUTOFFS: [usize; 4] = [5, 10, 15, 20];

/// The metrics of a single query's ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEval {
    /// Average precision.
    pub ap: f64,
    /// Reciprocal rank.
    pub rr: f64,
    /// NDCG over the full ranking.
    pub ndcg: f64,
    /// NDCG at cutoff 10.
    pub ndcg10: f64,
    /// 11-point interpolated precision curve.
    pub p11: [f64; 11],
    /// Raw (unnormalised) DCG at each of [`DCG_CUTOFFS`].
    pub dcg_at: [f64; 4],
    /// Number of retrieved items.
    pub retrieved: usize,
    /// Number of relevant items in the ground truth.
    pub relevant: usize,
}

impl QueryEval {
    /// Evaluates one ranking against a boolean ground truth.
    pub fn evaluate(rels: &[bool], total_relevant: usize) -> Self {
        let gains: Vec<f64> = rels.iter().map(|&r| if r { 1.0 } else { 0.0 }).collect();
        let mut dcg_at = [0.0; 4];
        for (slot, &k) in dcg_at.iter_mut().zip(DCG_CUTOFFS.iter()) {
            *slot = dcg(&gains, Some(k));
        }
        QueryEval {
            ap: average_precision(rels, total_relevant),
            rr: reciprocal_rank(rels),
            ndcg: ndcg(rels, total_relevant, None),
            ndcg10: ndcg(rels, total_relevant, Some(10)),
            p11: interpolated_precision_11pt(rels, total_relevant),
            dcg_at,
            retrieved: rels.len(),
            relevant: total_relevant,
        }
    }
}

/// Across-query means (and the summed DCG curve) for one experiment
/// configuration — one row of the paper's Tables 2–4.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeanEval {
    /// Mean average precision.
    pub map: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean NDCG.
    pub ndcg: f64,
    /// Mean NDCG@10.
    pub ndcg10: f64,
    /// Mean 11-point interpolated precision curve.
    pub p11: [f64; 11],
    /// Summed DCG at cutoffs 5/10/15/20 (the paper's Fig. 8b/9b y-axis).
    pub dcg_curve: [f64; 4],
    /// Number of queries aggregated.
    pub queries: usize,
}

/// Averages a set of per-query evaluations. Returns the zero row when
/// `evals` is empty.
pub fn mean_eval(evals: &[QueryEval]) -> MeanEval {
    if evals.is_empty() {
        return MeanEval::default();
    }
    let n = evals.len() as f64;
    let mut out = MeanEval { queries: evals.len(), ..MeanEval::default() };
    for e in evals {
        out.map += e.ap;
        out.mrr += e.rr;
        out.ndcg += e.ndcg;
        out.ndcg10 += e.ndcg10;
        for (slot, v) in out.p11.iter_mut().zip(e.p11.iter()) {
            *slot += v;
        }
        for (slot, v) in out.dcg_curve.iter_mut().zip(e.dcg_at.iter()) {
            *slot += v;
        }
    }
    out.map /= n;
    out.mrr /= n;
    out.ndcg /= n;
    out.ndcg10 /= n;
    for slot in out.p11.iter_mut() {
        *slot /= n;
    }
    // dcg_curve stays summed, matching the figure's magnitude.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: bool = true;
    const F: bool = false;

    #[test]
    fn query_eval_consistency() {
        let rels = [T, F, T, F];
        let e = QueryEval::evaluate(&rels, 3);
        assert_eq!(e.retrieved, 4);
        assert_eq!(e.relevant, 3);
        assert_eq!(e.rr, 1.0);
        assert!(e.ap > 0.0 && e.ap < 1.0);
        assert!(e.ndcg10 >= e.ndcg - 1e-12); // @10 can only help with 3 relevant
        assert_eq!(e.dcg_at.len(), 4);
        // DCG cutoffs are monotone non-decreasing.
        for w in e.dcg_at.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn mean_of_identical_queries_is_identity() {
        let e = QueryEval::evaluate(&[T, F, T], 2);
        let m = mean_eval(&[e.clone(), e.clone()]);
        assert!((m.map - e.ap).abs() < 1e-12);
        assert!((m.mrr - e.rr).abs() < 1e-12);
        assert!((m.ndcg - e.ndcg).abs() < 1e-12);
        // DCG curve is summed, not averaged.
        assert!((m.dcg_curve[0] - 2.0 * e.dcg_at[0]).abs() < 1e-12);
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn mean_of_mixed_queries() {
        let perfect = QueryEval::evaluate(&[T, T], 2);
        let empty = QueryEval::evaluate(&[F, F], 2);
        let m = mean_eval(&[perfect, empty]);
        assert!((m.map - 0.5).abs() < 1e-12);
        assert!((m.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_eval_set_is_zero() {
        let m = mean_eval(&[]);
        assert_eq!(m.map, 0.0);
        assert_eq!(m.queries, 0);
    }
}
