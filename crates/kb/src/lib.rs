//! # rightcrowd-kb
//!
//! The knowledge base behind entity recognition and disambiguation — the
//! synthetic stand-in for Wikipedia/Freebase that the paper's TAGME-based
//! annotator (§2.3) links text snippets against.
//!
//! The KB provides exactly what a TAGME-style annotator needs:
//!
//! - an **entity inventory** — each entity has a title, a type (Person,
//!   City, Sports Team, …) and a domain (tv, sports, education, …), the two
//!   kinds of semantic enrichment the paper names;
//! - an **anchor dictionary** — surface forms with per-anchor *link
//!   probability* and per-target *commonness* P(e | anchor), including
//!   genuinely ambiguous anchors ("milan" the city vs. "milan" the football
//!   club) so that disambiguation is a real decision;
//! - an **entity link graph** — in-link sets powering the Milne–Witten
//!   semantic relatedness used for collective-agreement disambiguation.
//!
//! [`seed::standard()`] builds the default KB: a hand-written core of
//! real-world entities for each of the paper's 7 expertise domains
//! (including every entity mentioned in the paper's own examples — Michael
//! Phelps, Michael Jackson, Diablo 3, PHP, Milan, "How I Met Your Mother"…)
//! expanded programmatically for corpus breadth.

pub mod builder;
pub mod entity;
pub mod kbase;
pub mod relatedness;
pub mod seed;
pub mod vocab;

pub use builder::KbBuilder;
pub use entity::{Entity, EntityKind};
pub use kbase::{AnchorTarget, KnowledgeBase};
