//! The immutable knowledge base.

use crate::entity::Entity;
use crate::relatedness::milne_witten;
use rightcrowd_types::{Domain, EntityId};
use std::collections::HashMap;

/// One candidate meaning of an anchor, with its link statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorTarget {
    /// The entity this anchor can refer to.
    pub entity: EntityId,
    /// How many links with this anchor text point at this entity (in the
    /// simulated link corpus). Drives commonness.
    pub links: u32,
}

/// Per-anchor statistics.
#[derive(Debug, Clone, Default)]
pub(crate) struct AnchorEntry {
    /// Candidate entities, sorted by descending `links`.
    pub targets: Vec<AnchorTarget>,
    /// Fraction of occurrences of this surface text that are links —
    /// TAGME's *link probability* lp(a).
    pub link_probability: f64,
}

/// An immutable, queryable knowledge base.
///
/// Built once via [`crate::KbBuilder`]; all lookups are O(1) hash probes or
/// O(log n) merges over sorted in-link lists.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    pub(crate) entities: Vec<Entity>,
    pub(crate) anchors: HashMap<String, AnchorEntry>,
    /// Out-links per entity (sorted, deduplicated).
    pub(crate) out_links: Vec<Vec<EntityId>>,
    /// In-links per entity (sorted, deduplicated) — the Milne–Witten input.
    pub(crate) in_links: Vec<Vec<EntityId>>,
    /// Entities per domain, for generators and tests.
    pub(crate) by_domain: Vec<Vec<EntityId>>,
}

impl KnowledgeBase {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the KB has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// The entity with id `id`. Panics on a foreign id — ids are only ever
    /// minted by this KB's builder.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// All entities.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Entities belonging to `domain`.
    pub fn entities_in_domain(&self, domain: Domain) -> &[EntityId] {
        &self.by_domain[domain.index()]
    }

    /// Looks up an entity by exact (case-insensitive) title.
    pub fn entity_by_title(&self, title: &str) -> Option<&Entity> {
        let lowered = title.to_lowercase();
        self.entities.iter().find(|e| e.title.to_lowercase() == lowered)
    }

    /// Normalises an anchor surface form: lower-case, whitespace-collapsed.
    pub fn normalize_anchor(surface: &str) -> String {
        surface
            .split_whitespace()
            .map(str::to_lowercase)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Candidate entities for an anchor surface form (empty slice when the
    /// surface is not an anchor). Candidates are sorted by descending link
    /// count, i.e. descending commonness.
    pub fn anchor_candidates(&self, surface: &str) -> &[AnchorTarget] {
        self.anchors
            .get(&Self::normalize_anchor(surface))
            .map_or(&[], |e| e.targets.as_slice())
    }

    /// TAGME link probability lp(a) of a surface form; 0 for non-anchors.
    pub fn link_probability(&self, surface: &str) -> f64 {
        self.anchors
            .get(&Self::normalize_anchor(surface))
            .map_or(0.0, |e| e.link_probability)
    }

    /// Commonness P(e | a): the fraction of `a`'s links that point at `e`.
    pub fn commonness(&self, surface: &str, entity: EntityId) -> f64 {
        let Some(entry) = self.anchors.get(&Self::normalize_anchor(surface)) else {
            return 0.0;
        };
        let total: u32 = entry.targets.iter().map(|t| t.links).sum();
        if total == 0 {
            return 0.0;
        }
        entry
            .targets
            .iter()
            .find(|t| t.entity == entity)
            .map_or(0.0, |t| t.links as f64 / total as f64)
    }

    /// Milne–Witten semantic relatedness of two entities, in `[0, 1]`.
    pub fn relatedness(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        milne_witten(
            &self.in_links[a.index()],
            &self.in_links[b.index()],
            self.len(),
        )
    }

    /// The entities `id` links to.
    pub fn out_links(&self, id: EntityId) -> &[EntityId] {
        &self.out_links[id.index()]
    }

    /// The entities linking to `id`.
    pub fn in_links(&self, id: EntityId) -> &[EntityId] {
        &self.in_links[id.index()]
    }

    /// Number of anchor surface forms.
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// Iterator over all anchor surface forms (arbitrary order).
    pub fn anchor_surfaces(&self) -> impl Iterator<Item = &str> {
        self.anchors.keys().map(String::as_str)
    }

    /// Longest anchor length in *words* — the spotter's window bound.
    pub fn max_anchor_words(&self) -> usize {
        self.anchors
            .keys()
            .map(|a| a.split(' ').count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::entity::EntityKind;

    fn tiny_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let milan_city = b.add_entity("Milan", EntityKind::Place, Domain::Location, "city in Italy");
        let milan_club = b.add_entity("AC Milan", EntityKind::Team, Domain::Sport, "football club");
        let inter = b.add_entity("Inter Milan", EntityKind::Team, Domain::Sport, "football club");
        // Extra entities enlarge N so Milne–Witten has headroom; a KB of 3
        // makes every non-identical pair degenerate.
        b.add_entity("Rome", EntityKind::Place, Domain::Location, "city in Italy");
        b.add_entity("Juventus", EntityKind::Team, Domain::Sport, "football club");
        b.add_anchor("milan", milan_city, 60);
        b.add_anchor("milan", milan_club, 40);
        b.add_anchor("ac milan", milan_club, 100);
        b.add_anchor("inter", inter, 30);
        b.set_link_probability("milan", 0.4);
        b.add_link(milan_club, milan_city);
        b.add_link(inter, milan_city);
        b.add_link(milan_club, inter);
        b.add_link(inter, milan_club);
        // Shared in-link (the city links to both clubs) for relatedness.
        b.add_link(milan_city, milan_club);
        b.add_link(milan_city, inter);
        b.build()
    }

    #[test]
    fn lookup_by_title_and_domain() {
        let kb = tiny_kb();
        assert_eq!(kb.len(), 5);
        assert!(kb.entity_by_title("ac milan").is_some());
        assert!(kb.entity_by_title("madrid").is_none());
        assert_eq!(kb.entities_in_domain(Domain::Sport).len(), 3);
        assert_eq!(kb.entities_in_domain(Domain::Music).len(), 0);
    }

    #[test]
    fn anchor_candidates_sorted_by_commonness() {
        let kb = tiny_kb();
        let c = kb.anchor_candidates("Milan");
        assert_eq!(c.len(), 2);
        assert!(c[0].links >= c[1].links);
        assert_eq!(kb.anchor_candidates("unknown"), &[]);
    }

    #[test]
    fn commonness_is_a_distribution() {
        let kb = tiny_kb();
        let city = kb.entity_by_title("Milan").unwrap().id;
        let club = kb.entity_by_title("AC Milan").unwrap().id;
        let pc = kb.commonness("milan", city);
        let pk = kb.commonness("milan", club);
        assert!((pc + pk - 1.0).abs() < 1e-12);
        assert!(pc > pk);
        assert_eq!(kb.commonness("milan", EntityId::new(2)), 0.0);
    }

    #[test]
    fn link_probability_defaults_and_overrides() {
        let kb = tiny_kb();
        assert!((kb.link_probability("milan") - 0.4).abs() < 1e-12);
        assert!(kb.link_probability("ac milan") > 0.0); // builder default
        assert_eq!(kb.link_probability("nonsense"), 0.0);
    }

    #[test]
    fn relatedness_reflects_shared_inlinks() {
        let kb = tiny_kb();
        let city = kb.entity_by_title("Milan").unwrap().id;
        let club = kb.entity_by_title("AC Milan").unwrap().id;
        let inter = kb.entity_by_title("Inter Milan").unwrap().id;
        // Both clubs link to the city; the clubs link to each other.
        assert_eq!(kb.relatedness(city, city), 1.0);
        assert!(kb.relatedness(club, inter) > 0.0);
        let r = kb.relatedness(club, city);
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn anchor_normalization() {
        assert_eq!(KnowledgeBase::normalize_anchor("  AC   Milan "), "ac milan");
        let kb = tiny_kb();
        assert_eq!(kb.anchor_candidates("AC  MILAN").len(), 1);
    }

    #[test]
    fn max_anchor_words() {
        let kb = tiny_kb();
        assert_eq!(kb.max_anchor_words(), 2);
    }
}
