//! Milne–Witten semantic relatedness.
//!
//! The TAGME annotator disambiguates collectively by letting candidate
//! entities "vote" for each other proportionally to their semantic
//! relatedness; TAGME uses the Milne–Witten measure (*An effective,
//! low-cost measure of semantic relatedness obtained from Wikipedia links*,
//! WIKIAI 2008), computed from the entities' in-link sets:
//!
//! ```text
//! rel(a,b) = 1 − (log max(|A|,|B|) − log |A ∩ B|) / (log N − log min(|A|,|B|))
//! ```
//!
//! where `A`, `B` are the sets of entities linking to `a` and `b` and `N`
//! is the KB size. The value is clamped into `[0, 1]`; disjoint or empty
//! in-link sets give 0.

use rightcrowd_types::EntityId;

/// Size of the intersection of two sorted, deduplicated id slices.
pub fn sorted_intersection_len(a: &[EntityId], b: &[EntityId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Milne–Witten relatedness of two in-link sets within a KB of `n` entities.
///
/// Both slices must be sorted and deduplicated (the KB builder guarantees
/// this). Returns 0 for empty sets or no overlap, and clamps into `[0, 1]`.
pub fn milne_witten(a: &[EntityId], b: &[EntityId], n: usize) -> f64 {
    if a.is_empty() || b.is_empty() || n < 2 {
        return 0.0;
    }
    let overlap = sorted_intersection_len(a, b);
    if overlap == 0 {
        return 0.0;
    }
    let (larger, smaller) = if a.len() >= b.len() {
        (a.len() as f64, b.len() as f64)
    } else {
        (b.len() as f64, a.len() as f64)
    };
    let n = n as f64;
    let denom = n.ln() - smaller.ln();
    if denom <= 0.0 {
        // The smaller set covers (almost) the whole KB — maximal relatedness.
        return 1.0;
    }
    let raw = 1.0 - (larger.ln() - (overlap as f64).ln()) / denom;
    raw.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&x| EntityId::new(x)).collect()
    }

    #[test]
    fn intersection_of_sorted_slices() {
        assert_eq!(sorted_intersection_len(&ids(&[1, 2, 3]), &ids(&[2, 3, 4])), 2);
        assert_eq!(sorted_intersection_len(&ids(&[1]), &ids(&[2])), 0);
        assert_eq!(sorted_intersection_len(&ids(&[]), &ids(&[1])), 0);
        assert_eq!(sorted_intersection_len(&ids(&[5, 9]), &ids(&[5, 9])), 2);
    }

    #[test]
    fn identical_inlink_sets_are_maximally_related() {
        let a = ids(&[1, 2, 3]);
        let r = milne_witten(&a, &a, 100);
        assert!((r - 1.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn disjoint_sets_are_unrelated() {
        assert_eq!(milne_witten(&ids(&[1, 2]), &ids(&[3, 4]), 100), 0.0);
    }

    #[test]
    fn empty_sets_are_unrelated() {
        assert_eq!(milne_witten(&ids(&[]), &ids(&[1]), 100), 0.0);
        assert_eq!(milne_witten(&ids(&[1]), &ids(&[]), 100), 0.0);
    }

    #[test]
    fn more_overlap_means_more_related() {
        let base = ids(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let lo = ids(&[1, 10, 11, 12, 13, 14, 15, 16]);
        let hi = ids(&[1, 2, 3, 4, 5, 6, 20, 21]);
        let r_lo = milne_witten(&base, &lo, 1000);
        let r_hi = milne_witten(&base, &hi, 1000);
        assert!(r_hi > r_lo, "hi {r_hi} vs lo {r_lo}");
    }

    #[test]
    fn result_always_in_unit_interval() {
        let sets = [
            ids(&[1]),
            ids(&[1, 2]),
            ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9]),
            ids(&[2, 4, 6, 8]),
        ];
        for a in &sets {
            for b in &sets {
                let r = milne_witten(a, b, 10);
                assert!((0.0..=1.0).contains(&r), "rel {r}");
            }
        }
    }
}
