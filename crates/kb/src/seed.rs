//! The standard seed knowledge base.
//!
//! A hand-written core of real-world entities for each of the paper's seven
//! expertise domains — including every entity the paper itself mentions
//! (Michael Phelps, freestyle, Michael Jackson, Diablo 3, PHP, Milan, *How I
//! Met Your Mother*, copper, …) — expanded programmatically with synthetic
//! entities for corpus breadth, and wired into an intra-domain link graph
//! with hand-placed cross-domain ambiguities ("milan" the city vs. the
//! football club, "conductor" the physics concept vs. the orchestra role).

use crate::builder::KbBuilder;
use crate::entity::EntityKind;
use crate::vocab;
use rightcrowd_types::{Domain, EntityId};

/// A hand-written seed entity.
struct SeedEntity {
    title: &'static str,
    kind: EntityKind,
    /// Extra surface forms (besides the lower-cased title) with link counts.
    aliases: &'static [(&'static str, u32)],
    /// Link probability of the *title* anchor (None = builder default).
    lp: Option<f64>,
    description: &'static str,
}

const fn e(
    title: &'static str,
    kind: EntityKind,
    description: &'static str,
) -> SeedEntity {
    SeedEntity { title, kind, aliases: &[], lp: None, description }
}

const fn ea(
    title: &'static str,
    kind: EntityKind,
    aliases: &'static [(&'static str, u32)],
    description: &'static str,
) -> SeedEntity {
    SeedEntity { title, kind, aliases, lp: None, description }
}

const fn el(
    title: &'static str,
    kind: EntityKind,
    lp: f64,
    description: &'static str,
) -> SeedEntity {
    SeedEntity { title, kind, aliases: &[], lp: Some(lp), description }
}

use EntityKind::{Concept, Event, Organization, Person, Place, Product, Team, Work};

const COMPUTER: &[SeedEntity] = &[
    ea("PHP", Product, &[("php function", 40)], "server-side scripting language"),
    el("String", Concept, 0.10, "sequence of characters in programming"),
    el("Function", Concept, 0.08, "callable unit of code"),
    e("Java", Product, "object-oriented programming language"),
    e("Python", Product, "general-purpose programming language"),
    e("JavaScript", Product, "scripting language of the web"),
    e("SQL", Product, "structured query language"),
    e("HTML", Product, "markup language of web pages"),
    e("CSS", Product, "stylesheet language"),
    e("Linux", Product, "open-source operating system kernel"),
    e("Git", Product, "distributed version control system"),
    e("MySQL", Product, "relational database management system"),
    ea("Stack Overflow", Organization, &[("stackoverflow", 60)], "programming Q&A site"),
    el("Algorithm", Concept, 0.15, "step-by-step computational procedure"),
    el("Database", Concept, 0.15, "organised collection of data"),
    e("Compiler", Concept, "translator from source code to machine code"),
    ea("Regular Expression", Concept, &[("regex", 80)], "pattern language for text"),
    e("Apache", Product, "open-source web server"),
    e("Unicode", Product, "universal character encoding standard"),
    e("Recursion", Concept, "self-referential computation"),
    e("Hash Table", Concept, "key-value data structure"),
    e("Open Source", Concept, "publicly developed software model"),
];

const LOCATION: &[SeedEntity] = &[
    // "milan" is deliberately ambiguous with AC Milan (Sport).
    ea("Milan", Place, &[("milano", 70)], "city in northern Italy"),
    e("Rome", Place, "capital of Italy"),
    e("Paris", Place, "capital of France"),
    e("London", Place, "capital of the United Kingdom"),
    ea("New York", Place, &[("new york city", 50), ("nyc", 40)], "largest city in the USA"),
    e("Tokyo", Place, "capital of Japan"),
    e("Berlin", Place, "capital of Germany"),
    e("Barcelona", Place, "city in Catalonia, Spain"),
    e("Venice", Place, "canal city in Italy"),
    e("Florence", Place, "Renaissance city in Tuscany"),
    ea("Duomo di Milano", Place, &[("duomo", 50)], "cathedral of Milan"),
    e("Eiffel Tower", Place, "landmark tower in Paris"),
    e("Colosseum", Place, "ancient amphitheatre in Rome"),
    e("Central Park", Place, "urban park in Manhattan"),
    e("Navigli", Place, "canal district of Milan"),
    e("Lake Como", Place, "lake in Lombardy"),
    e("Tuscany", Place, "region of central Italy"),
    e("Times Square", Place, "commercial square in New York"),
    e("Montmartre", Place, "hill district of Paris"),
    e("Brera", Place, "art district of Milan"),
    e("Trastevere", Place, "old quarter of Rome"),
    e("Amalfi Coast", Place, "coastline in southern Italy"),
];

const MOVIES: &[SeedEntity] = &[
    ea(
        "How I Met Your Mother",
        Work,
        &[("himym", 60), ("how i met your mother", 20)],
        "American sitcom (2005-2014)",
    ),
    e("Breaking Bad", Work, "American crime drama series"),
    e("Game of Thrones", Work, "fantasy drama series"),
    e("The Godfather", Work, "1972 crime film"),
    e("Inception", Work, "2010 science-fiction film"),
    e("Neil Patrick Harris", Person, "American actor, Barney in HIMYM"),
    e("Jason Segel", Person, "American actor, Marshall in HIMYM"),
    e("Cobie Smulders", Person, "Canadian actress, Robin in HIMYM"),
    e("Leonardo DiCaprio", Person, "American actor"),
    e("Al Pacino", Person, "American actor"),
    e("Christopher Nolan", Person, "British-American film director"),
    e("Steven Spielberg", Person, "American film director"),
    e("Hollywood", Place, "centre of the US film industry"),
    ea("Academy Awards", Event, &[("oscar", 50), ("oscars", 50)], "annual film awards"),
    e("Netflix", Organization, "streaming service"),
    e("HBO", Organization, "American TV network"),
    e("Pixar", Organization, "animation studio"),
    e("The Dark Knight", Work, "2008 superhero film"),
    e("Pulp Fiction", Work, "1994 crime film"),
    e("Friends", Work, "American sitcom (1994-2004)"),
    e("The Simpsons", Work, "animated sitcom"),
    e("Sherlock", Work, "British mystery series"),
];

const MUSIC: &[SeedEntity] = &[
    ea("Michael Jackson", Person, &[("king of pop", 30), ("mj", 25)], "American singer, King of Pop"),
    ea("Thriller", Work, &[("thriller album", 20)], "1982 Michael Jackson album"),
    e("Billie Jean", Work, "1983 Michael Jackson single"),
    e("Beat It", Work, "1983 Michael Jackson single"),
    e("The Beatles", Organization, "English rock band"),
    ea("Queen", Organization, &[("queen band", 20)], "British rock band"),
    e("Madonna", Person, "American pop singer"),
    e("U2", Organization, "Irish rock band"),
    e("Rolling Stones", Organization, "English rock band"),
    e("Freddie Mercury", Person, "lead singer of Queen"),
    e("David Bowie", Person, "English singer-songwriter"),
    e("Bob Dylan", Person, "American singer-songwriter"),
    e("Mozart", Person, "classical composer"),
    e("Beethoven", Person, "classical composer"),
    e("La Scala", Place, "opera house in Milan"),
    e("Woodstock", Event, "1969 music festival"),
    e("Grammy Awards", Event, "annual music awards"),
    e("Rock Music", Concept, "popular music genre"),
    e("Jazz", Concept, "music genre born in New Orleans"),
    e("Opera", Concept, "classical vocal art form"),
    e("Hip Hop", Concept, "music genre and culture"),
    e("Spotify", Organization, "music streaming service"),
];

const SCIENCE: &[SeedEntity] = &[
    ea("Copper", Concept, &[("cu", 15)], "ductile metal, excellent electrical conductor"),
    // "conductor" is ambiguous with the orchestra role (Music-flavoured).
    el("Electrical Conductor", Concept, 0.12, "material that conducts electric current"),
    e("Electricity", Concept, "set of phenomena from electric charge"),
    e("Electron", Concept, "negatively charged subatomic particle"),
    e("Atom", Concept, "basic unit of matter"),
    e("Albert Einstein", Person, "theoretical physicist, relativity"),
    e("Isaac Newton", Person, "physicist and mathematician"),
    e("Marie Curie", Person, "physicist and chemist, radioactivity"),
    e("Charles Darwin", Person, "naturalist, theory of evolution"),
    e("DNA", Concept, "molecule carrying genetic information"),
    e("Gravity", Concept, "attraction between masses"),
    e("Quantum Mechanics", Concept, "physics of the very small"),
    e("Photosynthesis", Concept, "light-to-energy conversion in plants"),
    e("CERN", Organization, "European particle-physics laboratory"),
    ea("Higgs Boson", Concept, &[("god particle", 20)], "elementary particle found at CERN"),
    e("Periodic Table", Concept, "tabular arrangement of elements"),
    e("Evolution", Concept, "change in heritable characteristics"),
    e("Neuron", Concept, "nerve cell"),
    e("Vaccine", Concept, "biological preparation providing immunity"),
    e("NASA", Organization, "US space agency"),
    e("Mars", Place, "fourth planet of the solar system"),
    e("Relativity", Concept, "Einstein's theory of space-time"),
];

const SPORT: &[SeedEntity] = &[
    ea("Michael Phelps", Person, &[("phelps", 70), ("michaelphelps", 30)], "American swimmer, most decorated Olympian"),
    ea("Freestyle Swimming", Concept, &[("freestyle", 60), ("free style", 20)], "front-crawl swimming discipline"),
    el("Swimming", Concept, 0.2, "water-based sport"),
    ea("Olympic Games", Event, &[("olympics", 80), ("london 2012", 40), ("london2012", 30)], "international multi-sport event"),
    ea("AC Milan", Team, &[("milan", 40), ("rossoneri", 30)], "Italian football club"),
    ea("Inter Milan", Team, &[("inter", 50), ("nerazzurri", 25)], "Italian football club"),
    e("Juventus", Team, "Italian football club"),
    ea("Real Madrid", Team, &[("madrid", 30)], "Spanish football club"),
    ea("FC Barcelona", Team, &[("barca", 40)], "Spanish football club"),
    ea("Manchester United", Team, &[("man united", 35), ("man utd", 30)], "English football club"),
    e("Bayern Munich", Team, "German football club"),
    ea("Champions League", Event, &[("ucl", 20)], "European club football competition"),
    e("World Cup", Event, "international football championship"),
    e("Usain Bolt", Person, "Jamaican sprinter"),
    e("Roger Federer", Person, "Swiss tennis player"),
    e("Rafael Nadal", Person, "Spanish tennis player"),
    e("Lionel Messi", Person, "Argentine footballer"),
    e("Cristiano Ronaldo", Person, "Portuguese footballer"),
    ea("Serie A", Event, &[("serie a", 10)], "Italian football league"),
    e("Premier League", Event, "English football league"),
    e("NBA", Organization, "North American basketball league"),
    e("Wimbledon", Event, "tennis grand slam in London"),
    e("Butterfly Stroke", Concept, "swimming discipline"),
];

const TECHNOLOGY: &[SeedEntity] = &[
    ea("Diablo 3", Work, &[("diablo", 60), ("diablo iii", 25)], "2012 action role-playing game"),
    ea("Graphics Card", Product, &[("gpu", 70), ("video card", 30)], "graphics processing hardware"),
    e("Nvidia", Organization, "GPU manufacturer"),
    ea("AMD", Organization, &[("radeon", 40)], "CPU and GPU manufacturer"),
    e("Intel", Organization, "semiconductor manufacturer"),
    ea("PlayStation", Product, &[("ps3", 40), ("playstation 3", 20)], "Sony game console"),
    ea("Xbox", Product, &[("xbox 360", 40)], "Microsoft game console"),
    e("Nintendo", Organization, "Japanese game company"),
    ea("iPhone", Product, &[("iphone 5", 30)], "Apple smartphone"),
    e("iPad", Product, "Apple tablet"),
    e("Android", Product, "Google mobile operating system"),
    ea("Apple Inc", Organization, &[("apple", 50)], "consumer-electronics company"),
    e("Google", Organization, "search and software company"),
    e("Microsoft", Organization, "software company"),
    e("Samsung", Organization, "electronics company"),
    ea("World of Warcraft", Work, &[("wow", 30)], "massively multiplayer online game"),
    e("StarCraft", Work, "real-time strategy game"),
    e("Skyrim", Work, "2011 open-world role-playing game"),
    ea("Call of Duty", Work, &[("cod", 25)], "first-person shooter series"),
    e("Minecraft", Work, "sandbox building game"),
    e("Kickstarter", Organization, "crowdfunding platform"),
    e("Blizzard", Organization, "game studio behind Diablo"),
    e("Steam", Product, "PC game distribution platform"),
];

/// Hand-written seeds per domain, in [`Domain::ALL`] order.
fn domain_seeds(domain: Domain) -> &'static [SeedEntity] {
    match domain {
        Domain::ComputerEngineering => COMPUTER,
        Domain::Location => LOCATION,
        Domain::MoviesTv => MOVIES,
        Domain::Music => MUSIC,
        Domain::Science => SCIENCE,
        Domain::Sport => SPORT,
        Domain::TechnologyGames => TECHNOLOGY,
    }
}

/// Prefixes used to mint synthetic filler entities.
const FILLER_PREFIXES: &[&str] = &[
    "Nova", "Prime", "Vertex", "Zenith", "Aurora", "Titan", "Echo", "Atlas", "Orion", "Lyra",
    "Delta", "Sigma", "Quantum", "Stellar", "Crimson", "Azure", "Golden", "Silver", "Iron",
    "Crystal",
];

/// Number of synthetic filler entities per domain.
pub const FILLERS_PER_DOMAIN: usize = 60;

/// The filler entity kind used for a domain.
fn filler_kind(domain: Domain) -> EntityKind {
    match domain {
        Domain::ComputerEngineering => Product,
        Domain::Location => Place,
        Domain::MoviesTv => Work,
        Domain::Music => Organization,
        Domain::Science => Concept,
        Domain::Sport => Team,
        Domain::TechnologyGames => Product,
    }
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// Builds the standard seed knowledge base.
///
/// Deterministic: the same KB is produced on every call, so entity ids are
/// stable across processes and test runs.
pub fn standard() -> crate::KnowledgeBase {
    let mut b = KbBuilder::new();
    let mut domain_ids: Vec<Vec<EntityId>> = vec![Vec::new(); Domain::COUNT];

    // 1. Hand-written core.
    for domain in Domain::ALL {
        for seed in domain_seeds(domain) {
            let id = b.add_entity(seed.title, seed.kind, domain, seed.description);
            for (alias, links) in seed.aliases {
                b.add_anchor(alias, id, *links);
            }
            if let Some(lp) = seed.lp {
                b.set_link_probability(seed.title, lp);
            }
            domain_ids[domain.index()].push(id);
        }
    }

    // 2. Hand-placed cross-domain ambiguities. The city reading of "milan"
    //    is the majority sense; the football club is a strong minority.
    //    "conductor" leans towards the science sense in our corpus.
    {
        let milan_city = domain_ids[Domain::Location.index()][0];
        b.add_anchor("milan", milan_city, 90);
        b.set_link_probability("milan", 0.35);

        let conductor = domain_ids[Domain::Science.index()][1];
        b.add_anchor("conductor", conductor, 55);
        let orchestra_conductor =
            b.add_entity("Orchestra Conductor", Person, Domain::Music, "director of an orchestra");
        b.add_anchor("conductor", orchestra_conductor, 25);
        b.set_link_probability("conductor", 0.12);
        domain_ids[Domain::Music.index()].push(orchestra_conductor);

        // "java" the language vs. the island.
        let java_island = b.add_entity("Java Island", Place, Domain::Location, "Indonesian island");
        b.add_anchor("java", java_island, 15);
        domain_ids[Domain::Location.index()].push(java_island);

        // "thriller" the album vs. the film genre.
        let thriller_genre =
            b.add_entity("Thriller Film", Concept, Domain::MoviesTv, "suspense film genre");
        b.add_anchor("thriller", thriller_genre, 30);
        domain_ids[Domain::MoviesTv.index()].push(thriller_genre);
    }

    // 3. Programmatic filler entities for breadth. Titles are made unique
    //    with a numeric suffix whenever the prefix×word walk collides.
    let mut used_titles: std::collections::HashSet<String> = std::collections::HashSet::new();
    for domain in Domain::ALL {
        let words = vocab::domain_words(domain);
        for i in 0..FILLERS_PER_DOMAIN {
            let prefix = FILLER_PREFIXES[i % FILLER_PREFIXES.len()];
            let word = words[(i * 7 + 3) % words.len()];
            let mut title = format!("{} {}", prefix, capitalize(word));
            let mut bump = 2;
            while !used_titles.insert(title.clone()) {
                title = format!("{} {} {}", prefix, capitalize(word), bump);
                bump += 1;
            }
            let description = format!("synthetic {} entity", domain.slug());
            let id = b.add_entity(&title, filler_kind(domain), domain, &description);
            domain_ids[domain.index()].push(id);
        }
    }

    // 4. Intra-domain link structure: every entity links to its domain's
    //    hub entities (the first few hand-written ones), hubs link to a
    //    spread of domain members, plus a local "ring" for in-link overlap.
    const HUBS: usize = 4;
    for domain in Domain::ALL {
        let ids = &domain_ids[domain.index()];
        let hubs = &ids[..HUBS.min(ids.len())];
        for (i, &id) in ids.iter().enumerate() {
            for &hub in hubs {
                if hub != id {
                    b.add_link(id, hub);
                    b.add_link(hub, id);
                }
            }
            // Ring links give neighbouring entities shared in-links.
            let next = ids[(i + 1) % ids.len()];
            let nnext = ids[(i + 2) % ids.len()];
            b.add_link(id, next);
            b.add_link(id, nnext);
        }
    }

    // 5. Hand-placed cross-domain links mirroring real-world relatedness:
    //    the Milan clubs link to the city, La Scala links to Milan, the
    //    Olympics link to London, Diablo 3 links to Blizzard's hardware
    //    ecosystem, "Thriller" links across music and film.
    {
        let loc = &domain_ids[Domain::Location.index()];
        let sport = &domain_ids[Domain::Sport.index()];
        let music = &domain_ids[Domain::Music.index()];
        let milan_city = loc[0]; // "Milan" is the first Location seed.
        let london = loc[3];
        let ac_milan = sport[4];
        let inter = sport[5];
        let olympics = sport[3];
        let la_scala = music[14]; // "La Scala" position in the MUSIC table.
        // Deliberately one-directional (club → city, not city → club):
        // a reverse link would put the city into the clubs' in-link sets
        // and leak Location relatedness into Sport disambiguation.
        for (from, to) in [
            (ac_milan, milan_city),
            (inter, milan_city),
            (la_scala, milan_city),
            (olympics, london),
        ] {
            b.add_link(from, to);
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kb_is_substantial() {
        let kb = standard();
        assert!(kb.len() > 500, "kb has {} entities", kb.len());
        assert!(kb.anchor_count() > kb.len(), "anchors include aliases");
    }

    #[test]
    fn every_domain_is_populated() {
        let kb = standard();
        for d in Domain::ALL {
            assert!(
                kb.entities_in_domain(d).len() >= 20 + FILLERS_PER_DOMAIN,
                "{d}: {}",
                kb.entities_in_domain(d).len()
            );
        }
    }

    #[test]
    fn paper_entities_present() {
        let kb = standard();
        for title in [
            "Michael Phelps",
            "Freestyle Swimming",
            "Michael Jackson",
            "Diablo 3",
            "PHP",
            "Milan",
            "How I Met Your Mother",
            "Copper",
        ] {
            assert!(kb.entity_by_title(title).is_some(), "missing {title}");
        }
    }

    #[test]
    fn milan_is_ambiguous_with_city_majority() {
        let kb = standard();
        let candidates = kb.anchor_candidates("milan");
        assert!(candidates.len() >= 2, "milan should be ambiguous");
        let city = kb.entity_by_title("Milan").unwrap();
        assert_eq!(candidates[0].entity, city.id, "city must be the majority sense");
        let club = kb.entity_by_title("AC Milan").unwrap();
        assert!(candidates.iter().any(|c| c.entity == club.id));
    }

    #[test]
    fn conductor_is_ambiguous() {
        let kb = standard();
        let candidates = kb.anchor_candidates("conductor");
        assert!(candidates.len() >= 2);
        let science = kb.entity_by_title("Electrical Conductor").unwrap();
        let music = kb.entity_by_title("Orchestra Conductor").unwrap();
        let ids: Vec<EntityId> = candidates.iter().map(|c| c.entity).collect();
        assert!(ids.contains(&science.id) && ids.contains(&music.id));
    }

    #[test]
    fn same_domain_entities_are_more_related_than_cross_domain() {
        let kb = standard();
        let phelps = kb.entity_by_title("Michael Phelps").unwrap().id;
        let freestyle = kb.entity_by_title("Freestyle Swimming").unwrap().id;
        let php = kb.entity_by_title("PHP").unwrap().id;
        let same = kb.relatedness(phelps, freestyle);
        let cross = kb.relatedness(phelps, php);
        assert!(same > cross, "same-domain {same} vs cross-domain {cross}");
        assert!(same > 0.3, "same-domain relatedness too weak: {same}");
    }

    #[test]
    fn deterministic_construction() {
        let a = standard();
        let c = standard();
        assert_eq!(a.len(), c.len());
        let pa = a.entity_by_title("Michael Phelps").unwrap().id;
        let pb = c.entity_by_title("Michael Phelps").unwrap().id;
        assert_eq!(pa, pb);
    }

    #[test]
    fn filler_entities_have_unique_titles() {
        let kb = standard();
        let mut titles: Vec<&str> = kb.entities().iter().map(|e| e.title.as_str()).collect();
        let n = titles.len();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), n, "duplicate entity titles");
    }

    #[test]
    fn link_graph_is_connected_within_domains() {
        let kb = standard();
        for d in Domain::ALL {
            for &id in kb.entities_in_domain(d) {
                assert!(!kb.out_links(id).is_empty(), "{} has no out-links", kb.entity(id).title);
                assert!(!kb.in_links(id).is_empty(), "{} has no in-links", kb.entity(id).title);
            }
        }
    }
}
