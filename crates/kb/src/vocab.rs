//! Per-domain context vocabulary.
//!
//! Besides entity mentions, domain-flavoured text contains ordinary content
//! words ("training", "score", "recipe"…). These lists feed both the KB's
//! programmatic entity expansion and the synthetic resource generator's
//! topic models, guaranteeing that everything the generator emits is
//! either a KB anchor or a plain term the index can match.

use rightcrowd_types::Domain;

/// Context words for the Computer Engineering domain.
pub const COMPUTER: &[&str] = &[
    "code", "function", "string", "length", "array", "variable", "compile", "debug", "server",
    "query", "syntax", "library", "framework", "class", "method", "object", "loop", "pointer",
    "thread", "cache", "deploy", "commit", "branch", "merge", "refactor", "test", "bug",
    "release", "version", "script", "module", "interface", "runtime", "memory", "stack",
    "queue", "parser", "token", "index", "database", "schema", "backend", "frontend", "api",
];

/// Context words for the Location domain.
pub const LOCATION: &[&str] = &[
    "restaurant", "city", "travel", "trip", "hotel", "flight", "museum", "square", "street",
    "view", "tour", "guide", "beach", "mountain", "lake", "market", "cafe", "food", "dish",
    "pizza", "wine", "booking", "ticket", "station", "airport", "downtown", "neighborhood",
    "landmark", "cathedral", "bridge", "harbor", "sunset", "vacation", "holiday", "itinerary",
    "local", "cuisine", "reservation", "terrace", "piazza", "gallery", "walking",
];

/// Context words for the Movies & TV domain.
pub const MOVIES: &[&str] = &[
    "movie", "film", "episode", "season", "series", "actor", "actress", "director", "scene",
    "trailer", "premiere", "cinema", "screen", "cast", "plot", "character", "drama", "comedy",
    "thriller", "finale", "sequel", "script", "audience", "award", "festival", "documentary",
    "sitcom", "binge", "streaming", "blockbuster", "review", "rating", "spoiler", "remake",
    "animation", "soundtrack", "dialogue", "performance", "studio",
];

/// Context words for the Music domain.
pub const MUSIC: &[&str] = &[
    "song", "album", "band", "concert", "guitar", "piano", "drums", "bass", "melody", "lyric",
    "chorus", "tour", "stage", "singer", "vocalist", "record", "vinyl", "playlist", "remix",
    "single", "chart", "festival", "gig", "rehearsal", "acoustic", "electric", "tune", "beat",
    "rhythm", "harmony", "orchestra", "symphony", "track", "studio", "producer", "cover",
    "encore", "ballad", "genre", "headphones",
];

/// Context words for the Science domain.
pub const SCIENCE: &[&str] = &[
    "copper", "conductor", "electricity", "electron", "atom", "molecule", "energy", "experiment",
    "theory", "research", "laboratory", "physics", "chemistry", "biology", "cell", "gene",
    "protein", "reaction", "particle", "quantum", "gravity", "orbit", "telescope", "microscope",
    "hypothesis", "evidence", "measurement", "temperature", "pressure", "velocity", "mass",
    "charge", "current", "voltage", "magnetic", "field", "wave", "frequency", "spectrum",
    "paper", "journal", "study",
];

/// Context words for the Sport domain.
pub const SPORT: &[&str] = &[
    "swimming", "freestyle", "pool", "training", "coach", "medal", "gold", "race", "match",
    "goal", "team", "player", "season", "league", "championship", "tournament", "final",
    "stadium", "fans", "score", "defense", "attack", "penalty", "referee", "transfer",
    "fitness", "marathon", "sprint", "record", "lap", "stroke", "butterfly", "backstroke",
    "relay", "workout", "gym", "tactics", "striker", "keeper", "derby", "victory", "defeat",
];

/// Context words for the Technology & games domain.
pub const TECHNOLOGY: &[&str] = &[
    "game", "gaming", "graphics", "card", "gpu", "cpu", "console", "laptop", "smartphone",
    "tablet", "gadget", "device", "screen", "battery", "charger", "upgrade", "driver",
    "settings", "resolution", "frame", "rate", "multiplayer", "quest", "level", "boss",
    "loot", "patch", "dlc", "expansion", "controller", "keyboard", "mouse", "headset",
    "stream", "review", "benchmark", "overclock", "setup", "build", "spec", "hardware",
    "firmware", "wireless",
];

/// Generic chatter words, domain-neutral (used for noise resources).
pub const GENERIC: &[&str] = &[
    "today", "tomorrow", "weekend", "morning", "evening", "coffee", "lunch", "dinner",
    "friends", "family", "birthday", "party", "weather", "rain", "sunny", "happy", "tired",
    "busy", "finally", "amazing", "awesome", "great", "nice", "love", "miss", "thanks",
    "congratulations", "welcome", "photo", "picture", "video", "news", "story", "life",
    "work", "home", "weeklong", "plans", "meeting", "project", "deadline",
];

/// The context vocabulary of `domain`.
pub fn domain_words(domain: Domain) -> &'static [&'static str] {
    match domain {
        Domain::ComputerEngineering => COMPUTER,
        Domain::Location => LOCATION,
        Domain::MoviesTv => MOVIES,
        Domain::Music => MUSIC,
        Domain::Science => SCIENCE,
        Domain::Sport => SPORT,
        Domain::TechnologyGames => TECHNOLOGY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_domain_has_a_rich_vocabulary() {
        for d in Domain::ALL {
            assert!(domain_words(d).len() >= 35, "{d} vocabulary too small");
        }
        assert!(GENERIC.len() >= 35);
    }

    #[test]
    fn words_are_lowercase_single_tokens() {
        for d in Domain::ALL {
            for w in domain_words(d) {
                assert_eq!(*w, w.to_lowercase(), "{w}");
                assert!(!w.contains(' '), "{w}");
            }
        }
    }

    #[test]
    fn no_duplicates_within_a_domain() {
        for d in Domain::ALL {
            let mut v: Vec<&str> = domain_words(d).to_vec();
            let n = v.len();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), n, "duplicates in {d}");
        }
    }
}
