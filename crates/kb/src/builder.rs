//! Mutable construction of a [`KnowledgeBase`].

use crate::entity::{Entity, EntityKind};
use crate::kbase::{AnchorEntry, AnchorTarget, KnowledgeBase};
use rightcrowd_types::{Domain, EntityId};
use std::collections::HashMap;

/// Default link probability assigned to anchors that never received an
/// explicit [`KbBuilder::set_link_probability`]. TAGME prunes anchors with
/// lp below a small threshold, so the default must sit comfortably above it.
pub const DEFAULT_LINK_PROBABILITY: f64 = 0.25;

/// Incremental builder for a [`KnowledgeBase`].
#[derive(Debug, Default)]
pub struct KbBuilder {
    entities: Vec<Entity>,
    anchors: HashMap<String, AnchorEntry>,
    links: Vec<(EntityId, EntityId)>,
}

impl KbBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entity and returns its freshly minted id. The entity's
    /// lower-cased title is automatically registered as an anchor.
    pub fn add_entity(
        &mut self,
        title: &str,
        kind: EntityKind,
        domain: Domain,
        description: &str,
    ) -> EntityId {
        let id = EntityId::new(self.entities.len() as u32);
        self.entities.push(Entity {
            id,
            title: title.to_owned(),
            kind,
            domain,
            description: description.to_owned(),
        });
        self.add_anchor(title, id, 100);
        id
    }

    /// Registers (or reinforces) an anchor: `surface` can refer to `entity`
    /// with the given link count. Repeated calls for the same pair add up.
    pub fn add_anchor(&mut self, surface: &str, entity: EntityId, links: u32) {
        let key = KnowledgeBase::normalize_anchor(surface);
        if key.is_empty() {
            return;
        }
        let entry = self.anchors.entry(key).or_insert_with(|| AnchorEntry {
            targets: Vec::new(),
            link_probability: DEFAULT_LINK_PROBABILITY,
        });
        match entry.targets.iter_mut().find(|t| t.entity == entity) {
            Some(t) => t.links += links,
            None => entry.targets.push(AnchorTarget { entity, links }),
        }
    }

    /// Sets the TAGME link probability of an anchor (clamped to `[0, 1]`).
    /// The anchor must already exist (add an anchor first).
    pub fn set_link_probability(&mut self, surface: &str, lp: f64) {
        let key = KnowledgeBase::normalize_anchor(surface);
        if let Some(entry) = self.anchors.get_mut(&key) {
            entry.link_probability = lp.clamp(0.0, 1.0);
        }
    }

    /// Adds a directed link `from → to` in the entity graph.
    pub fn add_link(&mut self, from: EntityId, to: EntityId) {
        if from != to {
            self.links.push((from, to));
        }
    }

    /// Number of entities added so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Finalises the KB: sorts anchor targets by commonness, builds sorted
    /// deduplicated in/out-link lists and the per-domain index.
    pub fn build(self) -> KnowledgeBase {
        let n = self.entities.len();
        let mut out_links: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        let mut in_links: Vec<Vec<EntityId>> = vec![Vec::new(); n];
        for (from, to) in self.links {
            out_links[from.index()].push(to);
            in_links[to.index()].push(from);
        }
        for list in out_links.iter_mut().chain(in_links.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        let mut anchors = self.anchors;
        for entry in anchors.values_mut() {
            entry.targets.sort_by_key(|t| std::cmp::Reverse(t.links));
        }
        let mut by_domain: Vec<Vec<EntityId>> = vec![Vec::new(); Domain::COUNT];
        for e in &self.entities {
            by_domain[e.domain.index()].push(e.id);
        }
        KnowledgeBase {
            entities: self.entities,
            anchors,
            out_links,
            in_links,
            by_domain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn title_is_auto_anchor() {
        let mut b = KbBuilder::new();
        let id = b.add_entity("Michael Phelps", EntityKind::Person, Domain::Sport, "swimmer");
        let kb = b.build();
        let c = kb.anchor_candidates("michael phelps");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].entity, id);
    }

    #[test]
    fn repeated_anchor_adds_links() {
        let mut b = KbBuilder::new();
        let id = b.add_entity("PHP", EntityKind::Product, Domain::ComputerEngineering, "language");
        b.add_anchor("php", id, 50);
        let kb = b.build();
        // 100 (auto from title) + 50.
        assert_eq!(kb.anchor_candidates("php")[0].links, 150);
    }

    #[test]
    fn self_links_dropped_and_duplicates_deduped() {
        let mut b = KbBuilder::new();
        let a = b.add_entity("A", EntityKind::Concept, Domain::Science, "");
        let c = b.add_entity("B", EntityKind::Concept, Domain::Science, "");
        b.add_link(a, a);
        b.add_link(a, c);
        b.add_link(a, c);
        let kb = b.build();
        assert_eq!(kb.out_links(a), &[c]);
        assert_eq!(kb.in_links(c), &[a]);
        assert!(kb.out_links(c).is_empty());
    }

    #[test]
    fn link_probability_requires_existing_anchor() {
        let mut b = KbBuilder::new();
        let id = b.add_entity("Copper", EntityKind::Concept, Domain::Science, "metal");
        b.set_link_probability("copper", 0.9);
        b.set_link_probability("nonexistent", 0.9); // silently ignored
        b.add_anchor("cu", id, 10);
        let kb = b.build();
        assert!((kb.link_probability("copper") - 0.9).abs() < 1e-12);
        assert!((kb.link_probability("cu") - DEFAULT_LINK_PROBABILITY).abs() < 1e-12);
    }

    #[test]
    fn clamps_link_probability() {
        let mut b = KbBuilder::new();
        b.add_entity("X", EntityKind::Concept, Domain::Science, "");
        b.set_link_probability("x", 7.0);
        let kb = b.build();
        assert_eq!(kb.link_probability("x"), 1.0);
    }

    #[test]
    fn empty_surface_ignored() {
        let mut b = KbBuilder::new();
        let id = b.add_entity("Y", EntityKind::Concept, Domain::Science, "");
        b.add_anchor("   ", id, 10);
        let kb = b.build();
        assert_eq!(kb.anchor_count(), 1); // only the title anchor
    }
}
