//! Knowledge-base entities.

use rightcrowd_types::{Domain, EntityId};
use std::fmt;

/// The semantic type of an entity — the "type (e.g. Person, City, Sports
/// Team, Athlete)" enrichment the paper attaches to recognised entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityKind {
    /// A person (athlete, musician, actor, scientist…).
    Person,
    /// A city, country, landmark or venue.
    Place,
    /// A company, institution, band or other organisation.
    Organization,
    /// A sports team.
    Team,
    /// A creative work: film, series, song, album, videogame.
    Work,
    /// A product or technology (device, language, library).
    Product,
    /// A recurring or one-off event (championship, festival).
    Event,
    /// An abstract concept (electricity, freestyle, algorithm).
    Concept,
}

impl EntityKind {
    /// All kinds.
    pub const ALL: [EntityKind; 8] = [
        EntityKind::Person,
        EntityKind::Place,
        EntityKind::Organization,
        EntityKind::Team,
        EntityKind::Work,
        EntityKind::Product,
        EntityKind::Event,
        EntityKind::Concept,
    ];
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntityKind::Person => "Person",
            EntityKind::Place => "Place",
            EntityKind::Organization => "Organization",
            EntityKind::Team => "Team",
            EntityKind::Work => "Work",
            EntityKind::Product => "Product",
            EntityKind::Event => "Event",
            EntityKind::Concept => "Concept",
        };
        f.write_str(s)
    }
}

/// One knowledge-base entity — the synthetic analogue of a Wikipedia page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Stable identifier (the stand-in for a Wikipedia URI).
    pub id: EntityId,
    /// Canonical title, e.g. `"Michael Phelps"`.
    pub title: String,
    /// Semantic type.
    pub kind: EntityKind,
    /// The expertise domain the entity belongs to.
    pub domain: Domain,
    /// One-line gloss used by the synthetic web-page generator.
    pub description: String,
}

impl Entity {
    /// The synthetic "Wikipedia URI" of the entity.
    pub fn uri(&self) -> String {
        format!("kb://{}/{}", self.domain.slug(), self.title.replace(' ', "_"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_encodes_domain_and_title() {
        let e = Entity {
            id: EntityId::new(0),
            title: "Michael Phelps".into(),
            kind: EntityKind::Person,
            domain: Domain::Sport,
            description: "American swimmer".into(),
        };
        assert_eq!(e.uri(), "kb://sport/Michael_Phelps");
    }

    #[test]
    fn kinds_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for k in EntityKind::ALL {
            assert!(set.insert(k));
            assert!(!k.to_string().is_empty());
        }
    }
}
