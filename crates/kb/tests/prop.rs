//! Property tests over the seed knowledge base.

use proptest::prelude::*;
use rightcrowd_kb::{seed, KnowledgeBase};
use rightcrowd_types::EntityId;
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(seed::standard)
}

proptest! {
    #[test]
    fn relatedness_is_symmetric_and_bounded(a in 0u32..500, b in 0u32..500) {
        let kb = kb();
        let n = kb.len() as u32;
        let (a, b) = (EntityId::new(a % n), EntityId::new(b % n));
        let ab = kb.relatedness(a, b);
        let ba = kb.relatedness(b, a);
        prop_assert!((ab - ba).abs() < 1e-12, "rel must be symmetric");
        prop_assert!((0.0..=1.0).contains(&ab));
        if a == b {
            prop_assert_eq!(ab, 1.0);
        }
    }

    #[test]
    fn commonness_is_a_probability_distribution(idx in 0usize..2000) {
        let kb = kb();
        let surfaces: Vec<&str> = kb.anchor_surfaces().collect();
        let surface = surfaces[idx % surfaces.len()];
        let candidates = kb.anchor_candidates(surface);
        prop_assert!(!candidates.is_empty(), "every surface has candidates");
        let total: f64 = candidates
            .iter()
            .map(|c| kb.commonness(surface, c.entity))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "{surface}: Σ commonness = {total}");
        // Sorted by decreasing commonness.
        for w in candidates.windows(2) {
            prop_assert!(w[0].links >= w[1].links);
        }
    }

    #[test]
    fn link_probabilities_are_probabilities(idx in 0usize..2000) {
        let kb = kb();
        let surfaces: Vec<&str> = kb.anchor_surfaces().collect();
        let surface = surfaces[idx % surfaces.len()];
        let lp = kb.link_probability(surface);
        prop_assert!((0.0..=1.0).contains(&lp), "{surface}: lp {lp}");
    }

    #[test]
    fn link_graph_is_consistent(idx in 0u32..700) {
        let kb = kb();
        let id = EntityId::new(idx % kb.len() as u32);
        for &to in kb.out_links(id) {
            prop_assert!(
                kb.in_links(to).binary_search(&id).is_ok(),
                "out-link {id} -> {to} must appear as an in-link"
            );
        }
        for &from in kb.in_links(id) {
            prop_assert!(
                kb.out_links(from).binary_search(&id).is_ok(),
                "in-link {from} -> {id} must appear as an out-link"
            );
        }
    }

    #[test]
    fn titles_resolve_to_their_own_entity(idx in 0u32..700) {
        let kb = kb();
        let id = EntityId::new(idx % kb.len() as u32);
        let entity = kb.entity(id);
        let candidates = kb.anchor_candidates(&entity.title);
        prop_assert!(
            candidates.iter().any(|c| c.entity == id),
            "title {:?} must be an anchor of its own entity",
            entity.title
        );
    }
}
