//! Distance-based evidence collection (Table 1 of the paper).
//!
//! Given a candidate expert, enumerate the documents (profiles, resources,
//! container descriptions) reachable at graph distance 0, 1 and 2,
//! following exactly the meta-model paths the paper lists:
//!
//! | Distance | Paths |
//! |---|---|
//! | 0 | candidate profile |
//! | 1 | candidate owns/creates/annotates Resource; candidate relatesTo Container; candidate follows User Profile |
//! | 2 | candidate relatesTo Container contains Resource; candidate follows User owns/creates/annotates Resource; candidate follows User relatesTo Container; candidate follows User follows User Profile |
//!
//! A document reachable through several paths is reported once, at its
//! minimum distance. Friend profiles (bidirectional ties) are excluded
//! from the follows expansion unless [`CollectOptions::include_friends`]
//! is set — the configuration behind the paper's Table 2 experiment.

use crate::model::DocId;
use crate::store::SocialGraph;
use rightcrowd_types::{Distance, PersonId, PlatformMask, UserId};
use std::collections::BTreeMap;

/// Options controlling an evidence collection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectOptions {
    /// Maximum distance to explore (the paper caps at [`Distance::D2`]).
    pub max_distance: Distance,
    /// Treat friends (bidirectional ties) like followed users. Off by
    /// default, per the paper's finding that friends add no signal.
    pub include_friends: bool,
    /// Platforms whose subgraphs are explored.
    pub platforms: PlatformMask,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            max_distance: Distance::D2,
            include_friends: false,
            platforms: PlatformMask::ALL,
        }
    }
}

/// One collected evidence document with its (minimum) distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvidenceItem {
    /// The document.
    pub doc: DocId,
    /// Its distance from the candidate profile.
    pub distance: Distance,
}

impl SocialGraph {
    /// Users `u` follows, with friends filtered out unless requested.
    fn followees(&self, u: UserId, include_friends: bool) -> Vec<UserId> {
        self.follows(u)
            .iter()
            .copied()
            .filter(|&f| include_friends || !self.is_friend(u, f))
            .collect()
    }

    /// Collects evidence documents for `person` per Table 1.
    ///
    /// The graph must be [`SocialGraph::finalize`]d; call sites that build
    /// graphs incrementally should finalize once before querying.
    pub fn collect_evidence(&self, person: PersonId, opts: &CollectOptions) -> Vec<EvidenceItem> {
        assert!(self.is_finalized(), "finalize() the graph before traversal");
        // BTreeMap keeps output deterministic; insertion keeps minimum
        // distance because we visit distances in increasing order.
        let mut seen: BTreeMap<DocId, Distance> = BTreeMap::new();
        let add = |seen: &mut BTreeMap<DocId, Distance>, doc: DocId, d: Distance| {
            seen.entry(doc).or_insert(d);
        };

        for (platform, u) in self.person(person).existing_accounts() {
            if !opts.platforms.contains(platform) {
                continue;
            }
            // Distance 0: the candidate's own profile.
            add(&mut seen, DocId::Profile(u), Distance::D0);
            if opts.max_distance < Distance::D1 {
                continue;
            }

            // Distance 1.
            for &r in self
                .created_by(u)
                .iter()
                .chain(self.owned_by(u))
                .chain(self.annotated_by(u))
            {
                add(&mut seen, DocId::Res(r), Distance::D1);
            }
            for &c in self.memberships(u) {
                add(&mut seen, DocId::Cont(c), Distance::D1);
            }
            let followees = self.followees(u, opts.include_friends);
            for &f in &followees {
                add(&mut seen, DocId::Profile(f), Distance::D1);
            }
            if opts.max_distance < Distance::D2 {
                continue;
            }

            // Distance 2.
            for &c in self.memberships(u) {
                for &r in self.contained_in(c) {
                    add(&mut seen, DocId::Res(r), Distance::D2);
                }
            }
            for &f in &followees {
                for &r in self
                    .created_by(f)
                    .iter()
                    .chain(self.owned_by(f))
                    .chain(self.annotated_by(f))
                {
                    add(&mut seen, DocId::Res(r), Distance::D2);
                }
                for &c in self.memberships(f) {
                    add(&mut seen, DocId::Cont(c), Distance::D2);
                }
                for g in self.followees(f, opts.include_friends) {
                    if g != u {
                        add(&mut seen, DocId::Profile(g), Distance::D2);
                    }
                }
            }
        }

        seen.into_iter()
            .map(|(doc, distance)| EvidenceItem { doc, distance })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_types::Platform;

    /// Builds the running example of the paper's Fig. 3 (Twitter side):
    /// Alice follows Charlie (one-directional); Alice and Bob mutually
    /// follow each other (friends); everyone owns some tweets; Bob
    /// favourited one of Charlie's tweets.
    fn fig3_twitter() -> (SocialGraph, PersonId) {
        let mut g = SocialGraph::new();
        let alice = g.add_person("Alice");
        let a = g.add_profile(Platform::Twitter, "alice", "swimmer in milan", Some(alice), vec![]);
        let bob = g.add_person("Bob");
        let b = g.add_profile(Platform::Twitter, "bob", "hobby swimming", Some(bob), vec![]);
        let c = g.add_profile(Platform::Twitter, "charlie", "freestyle coach", None, vec![]);

        // Alice's own tweets.
        g.add_resource(Platform::Twitter, "tweet a1", Some(a), Some(a), None, vec![]);
        g.add_resource(Platform::Twitter, "tweet a2", Some(a), Some(a), None, vec![]);
        // Charlie's tweets.
        let c1 = g.add_resource(Platform::Twitter, "tweet c1", Some(c), Some(c), None, vec![]);
        g.add_resource(Platform::Twitter, "tweet c2", Some(c), Some(c), None, vec![]);
        // Bob's tweet + favourite of Charlie's tweet.
        g.add_resource(Platform::Twitter, "tweet b1", Some(b), Some(b), None, vec![]);
        g.add_annotation(b, c1);

        // Relationships: Alice follows Charlie; Alice ↔ Bob are friends.
        g.add_follow(a, c);
        g.add_friendship(a, b);
        g.finalize();
        (g, alice)
    }

    fn docs_at(items: &[EvidenceItem], d: Distance) -> Vec<DocId> {
        items.iter().filter(|i| i.distance == d).map(|i| i.doc).collect()
    }

    #[test]
    fn distance0_is_own_profile_only() {
        let (g, alice) = fig3_twitter();
        let opts = CollectOptions { max_distance: Distance::D0, ..Default::default() };
        let items = g.collect_evidence(alice, &opts);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].distance, Distance::D0);
        assert!(matches!(items[0].doc, DocId::Profile(_)));
    }

    #[test]
    fn distance1_has_own_tweets_and_followed_profile_but_not_friends() {
        let (g, alice) = fig3_twitter();
        let opts = CollectOptions { max_distance: Distance::D1, ..Default::default() };
        let items = g.collect_evidence(alice, &opts);
        let d1 = docs_at(&items, Distance::D1);
        // Alice's 2 tweets + Charlie's profile. Bob is a friend → excluded.
        assert_eq!(d1.len(), 3, "{d1:?}");
        let profiles: Vec<_> = d1.iter().filter(|d| matches!(d, DocId::Profile(_))).collect();
        assert_eq!(profiles.len(), 1);
    }

    #[test]
    fn distance2_includes_followed_users_resources() {
        let (g, alice) = fig3_twitter();
        let items = g.collect_evidence(alice, &CollectOptions::default());
        let d2 = docs_at(&items, Distance::D2);
        // Charlie's two tweets (created/owned by followed user).
        assert_eq!(d2.len(), 2, "{d2:?}");
        assert!(d2.iter().all(|d| matches!(d, DocId::Res(_))));
    }

    #[test]
    fn include_friends_expands_the_frontier() {
        let (g, alice) = fig3_twitter();
        let without = g.collect_evidence(alice, &CollectOptions::default());
        let with = g.collect_evidence(
            alice,
            &CollectOptions { include_friends: true, ..Default::default() },
        );
        assert!(with.len() > without.len());
        // Bob's profile shows up at distance 1 now.
        let d1 = docs_at(&with, Distance::D1);
        assert_eq!(d1.iter().filter(|d| matches!(d, DocId::Profile(_))).count(), 2);
        // Bob's tweet and his favourite of Charlie's tweet at distance 2...
        let d2 = docs_at(&with, Distance::D2);
        // c1 (favourited by Bob) is already at d2 via Charlie; b1 joins.
        assert!(d2.len() >= 3, "{d2:?}");
    }

    #[test]
    fn platform_mask_restricts_traversal() {
        let (mut g, alice) = {
            let (g, a) = fig3_twitter();
            (g, a)
        };
        // Give Alice a Facebook account with one post.
        let fb = g.add_profile(Platform::Facebook, "alice.fb", "fb bio", Some(alice), vec![]);
        g.add_resource(Platform::Facebook, "fb post", Some(fb), Some(fb), None, vec![]);
        g.finalize();

        let tw_only = g.collect_evidence(
            alice,
            &CollectOptions { platforms: PlatformMask::only(Platform::Twitter), ..Default::default() },
        );
        let fb_only = g.collect_evidence(
            alice,
            &CollectOptions { platforms: PlatformMask::only(Platform::Facebook), ..Default::default() },
        );
        let all = g.collect_evidence(alice, &CollectOptions::default());
        assert_eq!(fb_only.len(), 2); // profile + post
        assert!(tw_only.len() + fb_only.len() == all.len());
    }

    #[test]
    fn container_paths_at_distance_1_and_2() {
        let mut g = SocialGraph::new();
        let p = g.add_person("P");
        let u = g.add_profile(Platform::Facebook, "u", "", Some(p), vec![]);
        let other = g.add_profile(Platform::Facebook, "o", "", None, vec![]);
        let grp = g.add_container(Platform::Facebook, "swimming group", vec![]);
        g.add_membership(u, grp);
        let post = g.add_resource(Platform::Facebook, "group post", Some(other), None, Some(grp), vec![]);
        g.finalize();

        let items = g.collect_evidence(p, &CollectOptions::default());
        assert!(items.contains(&EvidenceItem { doc: DocId::Cont(grp), distance: Distance::D1 }));
        assert!(items.contains(&EvidenceItem { doc: DocId::Res(post), distance: Distance::D2 }));
    }

    #[test]
    fn min_distance_wins_on_multiple_paths() {
        let mut g = SocialGraph::new();
        let p = g.add_person("P");
        let u = g.add_profile(Platform::Twitter, "u", "", Some(p), vec![]);
        let v = g.add_profile(Platform::Twitter, "v", "", None, vec![]);
        g.add_follow(u, v);
        // u annotated v's tweet: the tweet is at distance 1 (annotates)
        // even though it is also reachable at distance 2 (follows-owns).
        let tweet = g.add_resource(Platform::Twitter, "tweet", Some(v), Some(v), None, vec![]);
        g.add_annotation(u, tweet);
        g.finalize();

        let items = g.collect_evidence(p, &CollectOptions::default());
        let found = items.iter().find(|i| i.doc == DocId::Res(tweet)).unwrap();
        assert_eq!(found.distance, Distance::D1);
    }

    #[test]
    fn followed_of_followed_profiles_at_distance_2() {
        let mut g = SocialGraph::new();
        let p = g.add_person("P");
        let u = g.add_profile(Platform::Twitter, "u", "", Some(p), vec![]);
        let v = g.add_profile(Platform::Twitter, "v", "", None, vec![]);
        let w = g.add_profile(Platform::Twitter, "w", "", None, vec![]);
        g.add_follow(u, v);
        g.add_follow(v, w);
        g.add_follow(v, u); // v follows back u — but u→v stays a friendship then!
        g.finalize();

        // u and v are now friends (mutual), so v is excluded entirely
        // without include_friends.
        let strict = g.collect_evidence(p, &CollectOptions::default());
        assert_eq!(strict.len(), 1); // own profile only
        let with = g.collect_evidence(
            p,
            &CollectOptions { include_friends: true, ..Default::default() },
        );
        assert!(with.contains(&EvidenceItem { doc: DocId::Profile(w), distance: Distance::D2 }));
        // The candidate's own profile never reappears at distance 2.
        assert!(!with
            .iter()
            .any(|i| i.doc == DocId::Profile(u) && i.distance != Distance::D0));
    }

    #[test]
    fn empty_person_yields_nothing() {
        let mut g = SocialGraph::new();
        let p = g.add_person("ghost"); // no accounts
        g.finalize();
        assert!(g.collect_evidence(p, &CollectOptions::default()).is_empty());
    }
}
