//! # rightcrowd-graph
//!
//! The social-graph meta-model of the paper's Fig. 2 and the distance-based
//! resource collection of Table 1.
//!
//! The meta-model has four object classes — **User Profile**, **Resource**,
//! **Resource Container**, **URL** — and the relationships *owns*,
//! *creates*, *annotates*, *relatesTo*, *contains*, *links-to* and the
//! social relationship (*follows* / *friendship*). Friendship is a
//! *bidirectional* social relationship (mutual follows); followership is
//! one-directional. The distinction matters: the paper shows (§2.2, §3.3.3)
//! that friends' resources do **not** improve expertise matching, while
//! followed users' resources do.
//!
//! [`SocialGraph`] stores one instance of the meta-model covering all three
//! platforms (every node is tagged with its [`rightcrowd_types::Platform`]); a real person is
//! a [`Person`] holding up to one [`rightcrowd_types::UserId`] per platform.
//! [`SocialGraph::collect_evidence`] enumerates, for one candidate, the
//! evidence documents at each graph distance exactly as Table 1 prescribes.

pub mod model;
pub mod store;
pub mod traverse;

pub use model::{Container, DocId, Person, Resource, UserProfile};
pub use store::SocialGraph;
pub use traverse::{CollectOptions, EvidenceItem};
