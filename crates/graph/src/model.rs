//! Node types of the social-graph meta-model (Fig. 2).

use rightcrowd_types::{ContainerId, PageId, PersonId, Platform, ResourceId, UserId};

/// A user profile on one platform.
///
/// Profile *content* richness varies by platform exactly as in the paper:
/// a Twitter bio is a one-liner, a LinkedIn profile may describe a whole
/// career (§2.2). The profile's text is its distance-0 evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// This profile's id.
    pub id: UserId,
    /// The platform the account lives on.
    pub platform: Platform,
    /// Display name.
    pub name: String,
    /// Profile text (bio, work history, hobbies…).
    pub text: String,
    /// The person behind the account, when the account belongs to one of
    /// the candidate experts; `None` for external accounts (followed
    /// celebrities, group members, friends outside the study).
    pub person: Option<PersonId>,
    /// External pages linked from the profile.
    pub links: Vec<PageId>,
}

/// A social resource: post, tweet, status update, group/page post.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// This resource's id.
    pub id: ResourceId,
    /// The platform it was published on.
    pub platform: Platform,
    /// Raw text content.
    pub text: String,
    /// The user who created the resource (wrote it), if known.
    pub creator: Option<UserId>,
    /// The user who *owns* the resource: it appears on their wall/stream
    /// even when written by someone else (paper §2.2).
    pub owner: Option<UserId>,
    /// The container the resource was posted into, if any.
    pub container: Option<ContainerId>,
    /// External pages linked from the resource body.
    pub links: Vec<PageId>,
}

/// A resource container: group, page, or other topical aggregator.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    /// This container's id.
    pub id: ContainerId,
    /// The platform hosting the container.
    pub platform: Platform,
    /// Short textual description (always present, per the paper).
    pub text: String,
    /// External pages linked from the description.
    pub links: Vec<PageId>,
}

/// A real person (candidate expert) with up to one account per platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Person {
    /// This person's id.
    pub id: PersonId,
    /// Display name.
    pub name: String,
    /// Per-platform account, indexed by [`Platform::index`].
    pub accounts: [Option<UserId>; Platform::COUNT],
}

impl Person {
    /// The person's account on `platform`, if any.
    pub fn account(&self, platform: Platform) -> Option<UserId> {
        self.accounts[platform.index()]
    }

    /// Iterator over the person's existing accounts.
    pub fn existing_accounts(&self) -> impl Iterator<Item = (Platform, UserId)> + '_ {
        Platform::ALL
            .into_iter()
            .filter_map(|p| self.accounts[p.index()].map(|u| (p, u)))
    }
}

/// A unified reference to any evidence-bearing document of the meta-model.
///
/// The matcher treats profiles, resources and container descriptions
/// uniformly as indexable documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DocId {
    /// A user profile (distance-0 evidence for its owner; distance-1/2
    /// evidence when reached through follows edges).
    Profile(UserId),
    /// A resource.
    Res(ResourceId),
    /// A container description.
    Cont(ContainerId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_accounts_by_platform() {
        let p = Person {
            id: PersonId::new(0),
            name: "Alice".into(),
            accounts: [Some(UserId::new(3)), None, Some(UserId::new(9))],
        };
        assert_eq!(p.account(Platform::Facebook), Some(UserId::new(3)));
        assert_eq!(p.account(Platform::Twitter), None);
        let existing: Vec<_> = p.existing_accounts().collect();
        assert_eq!(
            existing,
            vec![
                (Platform::Facebook, UserId::new(3)),
                (Platform::LinkedIn, UserId::new(9))
            ]
        );
    }

    #[test]
    fn doc_ids_are_ordered_and_distinct() {
        let a = DocId::Profile(UserId::new(1));
        let b = DocId::Res(ResourceId::new(1));
        let c = DocId::Cont(ContainerId::new(1));
        assert_ne!(a, b);
        assert_ne!(b, c);
        let mut v = [c, b, a];
        v.sort();
        assert_eq!(v[0], a);
    }
}
