//! The social-graph store and its builder API.

use crate::model::{Container, Person, Resource, UserProfile};
use rightcrowd_types::{ContainerId, PageId, PersonId, Platform, ResourceId, UserId};

/// One instance of the Fig. 2 meta-model spanning all three platforms.
///
/// The store is append-only: nodes and relationships are added through the
/// builder methods, after which the traversal methods of
/// [`crate::traverse`] can be used at any time (adjacency lists are kept
/// sorted lazily via [`SocialGraph::finalize`], which traversal requires).
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    pub(crate) persons: Vec<Person>,
    pub(crate) profiles: Vec<UserProfile>,
    pub(crate) resources: Vec<Resource>,
    pub(crate) containers: Vec<Container>,

    /// user → resources the user created.
    pub(crate) created: Vec<Vec<ResourceId>>,
    /// user → resources the user owns (on their wall/stream).
    pub(crate) owned: Vec<Vec<ResourceId>>,
    /// user → resources the user annotated (liked / favourited).
    pub(crate) annotated: Vec<Vec<ResourceId>>,
    /// user → containers the user relates to (groups joined, pages liked).
    pub(crate) member_of: Vec<Vec<ContainerId>>,
    /// user → users they follow (directed).
    pub(crate) follows: Vec<Vec<UserId>>,
    /// container → resources it contains.
    pub(crate) contains: Vec<Vec<ResourceId>>,

    finalized: bool,
}

impl SocialGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with arena capacity reserved for a known node
    /// census. Snapshot loading (`rightcrowd-store`) knows the exact
    /// counts up front, so replaying the builder never reallocates.
    pub fn with_capacity(
        persons: usize,
        profiles: usize,
        resources: usize,
        containers: usize,
    ) -> Self {
        let mut g = Self::default();
        g.persons.reserve_exact(persons);
        g.profiles.reserve_exact(profiles);
        g.resources.reserve_exact(resources);
        g.containers.reserve_exact(containers);
        g.created.reserve_exact(profiles);
        g.owned.reserve_exact(profiles);
        g.annotated.reserve_exact(profiles);
        g.member_of.reserve_exact(profiles);
        g.follows.reserve_exact(profiles);
        g.contains.reserve_exact(containers);
        g
    }

    // ----- construction -------------------------------------------------

    /// Registers a candidate person; accounts are attached by
    /// [`SocialGraph::add_profile`].
    pub fn add_person(&mut self, name: &str) -> PersonId {
        let id = PersonId::new(self.persons.len() as u32);
        self.persons.push(Person {
            id,
            name: name.to_owned(),
            accounts: [None; Platform::COUNT],
        });
        id
    }

    /// Adds a user profile. When `person` is given, the account is linked
    /// to that person (one account per person per platform; a second
    /// account on the same platform replaces the link).
    pub fn add_profile(
        &mut self,
        platform: Platform,
        name: &str,
        text: &str,
        person: Option<PersonId>,
        links: Vec<PageId>,
    ) -> UserId {
        let id = UserId::new(self.profiles.len() as u32);
        self.profiles.push(UserProfile {
            id,
            platform,
            name: name.to_owned(),
            text: text.to_owned(),
            person,
            links,
        });
        self.created.push(Vec::new());
        self.owned.push(Vec::new());
        self.annotated.push(Vec::new());
        self.member_of.push(Vec::new());
        self.follows.push(Vec::new());
        if let Some(pid) = person {
            self.persons[pid.index()].accounts[platform.index()] = Some(id);
        }
        self.finalized = false;
        id
    }

    /// Adds a container (group / page).
    pub fn add_container(&mut self, platform: Platform, text: &str, links: Vec<PageId>) -> ContainerId {
        let id = ContainerId::new(self.containers.len() as u32);
        self.containers.push(Container {
            id,
            platform,
            text: text.to_owned(),
            links,
        });
        self.contains.push(Vec::new());
        self.finalized = false;
        id
    }

    /// Adds a resource. `creator` wrote it; `owner` hosts it on their
    /// wall/stream; `container` is the group/page it was posted into.
    /// All relationship lists are updated.
    pub fn add_resource(
        &mut self,
        platform: Platform,
        text: &str,
        creator: Option<UserId>,
        owner: Option<UserId>,
        container: Option<ContainerId>,
        links: Vec<PageId>,
    ) -> ResourceId {
        let id = ResourceId::new(self.resources.len() as u32);
        self.resources.push(Resource {
            id,
            platform,
            text: text.to_owned(),
            creator,
            owner,
            container,
            links,
        });
        if let Some(u) = creator {
            self.created[u.index()].push(id);
        }
        if let Some(u) = owner {
            self.owned[u.index()].push(id);
        }
        if let Some(c) = container {
            self.contains[c.index()].push(id);
        }
        self.finalized = false;
        id
    }

    /// Records that `user` annotated (liked / favourited) `resource`.
    pub fn add_annotation(&mut self, user: UserId, resource: ResourceId) {
        self.annotated[user.index()].push(resource);
        self.finalized = false;
    }

    /// Records that `user` relates to `container` (joined the group /
    /// liked the page).
    pub fn add_membership(&mut self, user: UserId, container: ContainerId) {
        self.member_of[user.index()].push(container);
        self.finalized = false;
    }

    /// Adds a directed follow edge.
    pub fn add_follow(&mut self, from: UserId, to: UserId) {
        if from != to {
            self.follows[from.index()].push(to);
            self.finalized = false;
        }
    }

    /// Adds a bidirectional friendship (two follow edges) — the only
    /// relationship Facebook has, and the mutual-follow case on Twitter.
    pub fn add_friendship(&mut self, a: UserId, b: UserId) {
        self.add_follow(a, b);
        self.add_follow(b, a);
    }

    /// Sorts and deduplicates all adjacency lists. Idempotent; called
    /// automatically by the traversal entry points.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        for list in self
            .created
            .iter_mut()
            .chain(self.owned.iter_mut())
            .chain(self.annotated.iter_mut())
        {
            list.sort_unstable();
            list.dedup();
        }
        for list in self.member_of.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        for list in self.follows.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        for list in self.contains.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        self.finalized = true;
    }

    // ----- accessors -----------------------------------------------------

    /// All persons (candidate experts).
    pub fn persons(&self) -> &[Person] {
        &self.persons
    }

    /// The person with id `id`.
    pub fn person(&self, id: PersonId) -> &Person {
        &self.persons[id.index()]
    }

    /// All user profiles.
    pub fn profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// The profile with id `id`.
    pub fn profile(&self, id: UserId) -> &UserProfile {
        &self.profiles[id.index()]
    }

    /// All resources.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// The resource with id `id`.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// All containers.
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// The container with id `id`.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.index()]
    }

    /// Users `u` follows (sorted after [`SocialGraph::finalize`]).
    pub fn follows(&self, u: UserId) -> &[UserId] {
        &self.follows[u.index()]
    }

    /// Resources created by `u`.
    pub fn created_by(&self, u: UserId) -> &[ResourceId] {
        &self.created[u.index()]
    }

    /// Resources owned by `u`.
    pub fn owned_by(&self, u: UserId) -> &[ResourceId] {
        &self.owned[u.index()]
    }

    /// Resources annotated by `u`.
    pub fn annotated_by(&self, u: UserId) -> &[ResourceId] {
        &self.annotated[u.index()]
    }

    /// Containers `u` relates to.
    pub fn memberships(&self, u: UserId) -> &[ContainerId] {
        &self.member_of[u.index()]
    }

    /// Resources inside container `c`.
    pub fn contained_in(&self, c: ContainerId) -> &[ResourceId] {
        &self.contains[c.index()]
    }

    /// Whether `a` and `b` are friends: the social relationship is
    /// bidirectional (mutual follow edges). Requires [`SocialGraph::finalize`].
    pub fn is_friend(&self, a: UserId, b: UserId) -> bool {
        debug_assert!(self.finalized, "finalize() before querying friendship");
        self.follows[a.index()].binary_search(&b).is_ok()
            && self.follows[b.index()].binary_search(&a).is_ok()
    }

    /// Whether the graph has been finalized.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Node counts: (persons, profiles, resources, containers).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.persons.len(),
            self.profiles.len(),
            self.resources.len(),
            self.containers.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut g = SocialGraph::new();
        let anna = g.add_person("Anna");
        let u = g.add_profile(Platform::Twitter, "anna", "swimmer", Some(anna), vec![]);
        let v = g.add_profile(Platform::Twitter, "coach", "pro coach", None, vec![]);
        let r = g.add_resource(Platform::Twitter, "training hard", Some(u), Some(u), None, vec![]);
        g.add_follow(u, v);
        g.finalize();
        assert_eq!(g.counts(), (1, 2, 1, 0));
        assert_eq!(g.person(anna).account(Platform::Twitter), Some(u));
        assert_eq!(g.created_by(u), &[r]);
        assert_eq!(g.owned_by(u), &[r]);
        assert_eq!(g.follows(u), &[v]);
        assert!(g.follows(v).is_empty());
    }

    #[test]
    fn friendship_is_mutual_follow() {
        let mut g = SocialGraph::new();
        let a = g.add_profile(Platform::Twitter, "a", "", None, vec![]);
        let b = g.add_profile(Platform::Twitter, "b", "", None, vec![]);
        let c = g.add_profile(Platform::Twitter, "c", "", None, vec![]);
        g.add_friendship(a, b);
        g.add_follow(a, c);
        g.finalize();
        assert!(g.is_friend(a, b));
        assert!(g.is_friend(b, a));
        assert!(!g.is_friend(a, c));
        assert!(!g.is_friend(c, a));
    }

    #[test]
    fn self_follow_ignored() {
        let mut g = SocialGraph::new();
        let a = g.add_profile(Platform::Facebook, "a", "", None, vec![]);
        g.add_follow(a, a);
        g.finalize();
        assert!(g.follows(a).is_empty());
    }

    #[test]
    fn finalize_dedups_adjacency() {
        let mut g = SocialGraph::new();
        let a = g.add_profile(Platform::Facebook, "a", "", None, vec![]);
        let b = g.add_profile(Platform::Facebook, "b", "", None, vec![]);
        let c = g.add_container(Platform::Facebook, "group", vec![]);
        g.add_follow(a, b);
        g.add_follow(a, b);
        g.add_membership(a, c);
        g.add_membership(a, c);
        let r = g.add_resource(Platform::Facebook, "post", Some(a), Some(a), Some(c), vec![]);
        g.add_annotation(b, r);
        g.add_annotation(b, r);
        g.finalize();
        assert_eq!(g.follows(a).len(), 1);
        assert_eq!(g.memberships(a).len(), 1);
        assert_eq!(g.annotated_by(b).len(), 1);
        assert_eq!(g.contained_in(c), &[r]);
    }

    #[test]
    fn container_membership_and_contents() {
        let mut g = SocialGraph::new();
        let u = g.add_profile(Platform::LinkedIn, "u", "engineer", None, vec![]);
        let grp = g.add_container(Platform::LinkedIn, "PHP developers group", vec![]);
        g.add_membership(u, grp);
        let other = g.add_profile(Platform::LinkedIn, "o", "", None, vec![]);
        let post = g.add_resource(Platform::LinkedIn, "php question", Some(other), None, Some(grp), vec![]);
        g.finalize();
        assert_eq!(g.memberships(u), &[grp]);
        assert_eq!(g.contained_in(grp), &[post]);
        assert_eq!(g.resource(post).container, Some(grp));
    }

    #[test]
    fn second_account_on_same_platform_replaces_link() {
        let mut g = SocialGraph::new();
        let p = g.add_person("P");
        let first = g.add_profile(Platform::Twitter, "p1", "", Some(p), vec![]);
        let second = g.add_profile(Platform::Twitter, "p2", "", Some(p), vec![]);
        assert_ne!(first, second);
        assert_eq!(g.person(p).account(Platform::Twitter), Some(second));
    }
}
