//! Property tests for the social-graph store and its Table 1 traversal.

use proptest::prelude::*;
use rightcrowd_graph::{CollectOptions, SocialGraph};
use rightcrowd_types::{Distance, Platform, PlatformMask, UserId};

/// Abstract edit operations over a small random social world.
#[derive(Debug, Clone)]
enum Op {
    Follow(u8, u8),
    Friend(u8, u8),
    Post(u8),
    Annotate(u8, u8),
    Join(u8, u8),
    GroupPost(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Follow(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Friend(a, b)),
        any::<u8>().prop_map(Op::Post),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Annotate(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Join(a, b)),
        any::<u8>().prop_map(Op::GroupPost),
    ]
}

const USERS: usize = 8;
const GROUPS: usize = 3;

/// Builds a graph from random ops; user 0 is the candidate person.
fn build(ops: &[Op]) -> (SocialGraph, rightcrowd_types::PersonId) {
    let mut g = SocialGraph::new();
    let person = g.add_person("p");
    let users: Vec<UserId> = (0..USERS)
        .map(|i| {
            g.add_profile(
                Platform::Twitter,
                &format!("u{i}"),
                "bio",
                (i == 0).then_some(person),
                vec![],
            )
        })
        .collect();
    let groups: Vec<_> = (0..GROUPS)
        .map(|i| g.add_container(Platform::Twitter, &format!("g{i}"), vec![]))
        .collect();
    let mut posts = Vec::new();
    for op in ops {
        match *op {
            Op::Follow(a, b) => g.add_follow(users[a as usize % USERS], users[b as usize % USERS]),
            Op::Friend(a, b) => {
                g.add_friendship(users[a as usize % USERS], users[b as usize % USERS])
            }
            Op::Post(a) => {
                let u = users[a as usize % USERS];
                posts.push(g.add_resource(Platform::Twitter, "post", Some(u), Some(u), None, vec![]));
            }
            Op::Annotate(a, p) => {
                if !posts.is_empty() {
                    let r = posts[p as usize % posts.len()];
                    g.add_annotation(users[a as usize % USERS], r);
                }
            }
            Op::Join(a, c) => g.add_membership(users[a as usize % USERS], groups[c as usize % GROUPS]),
            Op::GroupPost(c) => {
                posts.push(g.add_resource(
                    Platform::Twitter,
                    "group post",
                    None,
                    None,
                    Some(groups[c as usize % GROUPS]),
                    vec![],
                ));
            }
        }
    }
    g.finalize();
    (g, person)
}

proptest! {
    #[test]
    fn evidence_nests_across_distance_caps(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (g, person) = build(&ops);
        let mut previous: Option<Vec<_>> = None;
        for d in Distance::ALL {
            let items = g.collect_evidence(
                person,
                &CollectOptions { max_distance: d, ..Default::default() },
            );
            if let Some(prev) = &previous {
                // Every document reachable at a smaller cap stays
                // reachable (at the same distance) with a larger cap.
                for item in prev {
                    prop_assert!(items.contains(item), "lost {item:?} at cap {d}");
                }
            }
            for item in &items {
                prop_assert!(item.distance <= d);
            }
            previous = Some(items);
        }
    }

    #[test]
    fn friends_only_ever_add_evidence(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (g, person) = build(&ops);
        let without = g.collect_evidence(person, &CollectOptions::default());
        let with = g.collect_evidence(
            person,
            &CollectOptions { include_friends: true, ..Default::default() },
        );
        prop_assert!(with.len() >= without.len());
        for item in &without {
            // Distances may *shrink* when friend edges open shortcuts, but
            // no document disappears.
            prop_assert!(
                with.iter().any(|i| i.doc == item.doc && i.distance <= item.distance),
                "{item:?} missing or demoted"
            );
        }
    }

    #[test]
    fn traversal_is_deterministic(ops in prop::collection::vec(op_strategy(), 0..50)) {
        let (g, person) = build(&ops);
        let a = g.collect_evidence(person, &CollectOptions::default());
        let b = g.collect_evidence(person, &CollectOptions::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn empty_platform_mask_yields_nothing(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (g, person) = build(&ops);
        let items = g.collect_evidence(
            person,
            &CollectOptions { platforms: PlatformMask::EMPTY, ..Default::default() },
        );
        prop_assert!(items.is_empty());
    }

    #[test]
    fn friendship_is_symmetric(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (g, _) = build(&ops);
        for a in 0..USERS {
            for b in 0..USERS {
                let (ua, ub) = (UserId::new(a as u32), UserId::new(b as u32));
                prop_assert_eq!(g.is_friend(ua, ub), g.is_friend(ub, ua));
            }
        }
    }
}
