//! Property tests for the TAGME-style annotator.

use proptest::prelude::*;
use rightcrowd_annotate::{spot_anchors, Annotator};
use rightcrowd_kb::{seed, KnowledgeBase};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(seed::standard)
}

/// Random token streams mixing known anchors with noise words.
fn tokens_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec![
            "michael", "phelps", "milan", "inter", "duomo", "freestyle", "swimming", "php",
            "copper", "conductor", "diablo", "random", "noise", "words", "today", "great", "3",
        ]),
        0..20,
    )
    .prop_map(|ws| ws.into_iter().map(str::to_owned).collect())
}

proptest! {
    #[test]
    fn spots_are_in_bounds_and_disjoint(tokens in tokens_strategy(), lp in 0.0f64..0.5) {
        let spots = spot_anchors(kb(), &tokens, lp);
        let mut last_end = 0usize;
        for s in &spots {
            prop_assert!(s.start >= last_end, "overlap at {}", s.start);
            prop_assert!(s.start + s.len <= tokens.len());
            prop_assert!(!s.candidates.is_empty());
            prop_assert!(s.link_probability >= lp);
            prop_assert_eq!(&tokens[s.start..s.start + s.len].join(" "), &s.surface);
            last_end = s.start + s.len;
        }
    }

    #[test]
    fn higher_threshold_spots_fewer(tokens in tokens_strategy()) {
        let lax = spot_anchors(kb(), &tokens, 0.01);
        let strict = spot_anchors(kb(), &tokens, 0.30);
        prop_assert!(strict.len() <= lax.len());
    }

    #[test]
    fn annotations_are_valid(tokens in tokens_strategy()) {
        let annotator = Annotator::new(kb());
        let annotations = annotator.annotate_tokens(&tokens);
        for a in &annotations {
            prop_assert!((0.0..=1.0).contains(&a.dscore), "dscore {}", a.dscore);
            prop_assert!(a.dscore >= annotator.config().min_dscore);
            prop_assert!(a.start + a.len <= tokens.len());
            prop_assert!(a.entity.index() < kb().len());
            // The chosen sense must be a candidate of its own surface.
            prop_assert!(
                kb().anchor_candidates(&a.surface).iter().any(|c| c.entity == a.entity),
                "{} is not a sense of {:?}",
                kb().entity(a.entity).title,
                a.surface
            );
        }
    }

    #[test]
    fn annotation_is_deterministic(tokens in tokens_strategy()) {
        let annotator = Annotator::new(kb());
        prop_assert_eq!(annotator.annotate_tokens(&tokens), annotator.annotate_tokens(&tokens));
    }
}
