//! Anchor spotting.
//!
//! Scans the token stream with windows up to the KB's longest anchor,
//! emitting leftmost-longest non-overlapping anchor matches whose link
//! probability clears the pruning threshold.

use rightcrowd_kb::{AnchorTarget, KnowledgeBase};

/// One spotted anchor occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Spot {
    /// Token offset of the first token of the anchor.
    pub start: usize,
    /// Number of tokens covered.
    pub len: usize,
    /// The normalised surface form (tokens joined by single spaces).
    pub surface: String,
    /// Candidate senses, sorted by descending commonness.
    pub candidates: Vec<AnchorTarget>,
    /// Link probability of the surface form.
    pub link_probability: f64,
}

/// Spots anchors in `tokens` (already lower-cased, e.g. from
/// `rightcrowd_text::tokenize`).
///
/// Matching is greedy leftmost-longest: at each position the longest window
/// that is a known anchor (with `lp ≥ min_link_probability`) wins, and
/// scanning resumes after it, so spots never overlap.
pub fn spot_anchors(
    kb: &KnowledgeBase,
    tokens: &[String],
    min_link_probability: f64,
) -> Vec<Spot> {
    let max_window = kb.max_anchor_words().max(1);
    let mut spots = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = None;
        let upper = max_window.min(tokens.len() - i);
        for w in (1..=upper).rev() {
            let surface = tokens[i..i + w].join(" ");
            let candidates = kb.anchor_candidates(&surface);
            if candidates.is_empty() {
                continue;
            }
            let lp = kb.link_probability(&surface);
            if lp < min_link_probability {
                continue;
            }
            matched = Some(Spot {
                start: i,
                len: w,
                surface,
                candidates: candidates.to_vec(),
                link_probability: lp,
            });
            break;
        }
        match matched {
            Some(spot) => {
                i += spot.len;
                spots.push(spot);
            }
            None => i += 1,
        }
    }
    spots
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_kb::seed;
    use rightcrowd_text::tokenize;

    fn spots_for(text: &str) -> Vec<Spot> {
        let kb = seed::standard();
        spot_anchors(&kb, &tokenize(text), 0.05)
    }

    #[test]
    fn finds_multiword_anchor_leftmost_longest() {
        let spots = spots_for("Michael Phelps wins gold");
        assert_eq!(spots.len(), 1);
        assert_eq!(spots[0].surface, "michael phelps");
        assert_eq!(spots[0].start, 0);
        assert_eq!(spots[0].len, 2);
    }

    #[test]
    fn longest_match_beats_inner_match() {
        // "how i met your mother" contains no shorter anchors to prefer.
        let spots = spots_for("watching How I Met Your Mother tonight");
        assert!(spots.iter().any(|s| s.surface == "how i met your mother"));
    }

    #[test]
    fn ambiguous_anchor_has_multiple_candidates() {
        let spots = spots_for("I love milan so much");
        let milan = spots.iter().find(|s| s.surface == "milan").expect("milan spotted");
        assert!(milan.candidates.len() >= 2);
        // Candidates sorted by commonness (descending links).
        assert!(milan.candidates[0].links >= milan.candidates[1].links);
    }

    #[test]
    fn threshold_prunes_weak_anchors() {
        let kb = seed::standard();
        let tokens = tokenize("the function returns a string");
        let strict = spot_anchors(&kb, &tokens, 0.5);
        let lax = spot_anchors(&kb, &tokens, 0.01);
        assert!(strict.len() < lax.len(), "strict {} vs lax {}", strict.len(), lax.len());
        // "function" and "string" have deliberately low link probability.
        assert!(lax.iter().any(|s| s.surface == "string"));
        assert!(!strict.iter().any(|s| s.surface == "string"));
    }

    #[test]
    fn no_anchors_in_pure_chatter() {
        let spots = spots_for("zzz qqq www some gibberish nothing here");
        assert!(spots.is_empty());
    }

    #[test]
    fn spots_do_not_overlap() {
        let spots = spots_for("ac milan beat inter milan in the milan derby");
        for w in spots.windows(2) {
            assert!(w[0].start + w[0].len <= w[1].start);
        }
        // "ac milan" and "inter milan"... "inter milan" is not an anchor,
        // but "inter" is; "milan" after it is separate.
        assert!(spots.iter().any(|s| s.surface == "ac milan"));
    }

    #[test]
    fn empty_token_stream() {
        let kb = seed::standard();
        assert!(spot_anchors(&kb, &[], 0.05).is_empty());
    }
}
