//! # rightcrowd-annotate
//!
//! Entity recognition and disambiguation for short texts — a from-scratch
//! reimplementation of the TAGME annotator (Ferragina & Scaiella, *"TAGME:
//! on-the-fly annotation of short text fragments (by Wikipedia entities)"*,
//! CIKM 2010), which is the system the paper adopts for its Entity
//! Recognition and Disambiguation stage (§2.3).
//!
//! The pipeline has the three classical TAGME phases:
//!
//! 1. **Spotting** — find anchor occurrences in the token stream
//!    (leftmost-longest), pruning anchors whose *link probability* is below
//!    a threshold;
//! 2. **Disambiguation by collective agreement** — every spot's candidate
//!    senses receive votes from all other spots, weighted by Milne–Witten
//!    relatedness and commonness; the winning sense is chosen among the
//!    near-top voted candidates by commonness (ε-selection);
//! 3. **Pruning** — each kept annotation receives a confidence ρ (the
//!    paper's `dScore`), the mean of link probability and coherence with
//!    the other selected entities; low-ρ annotations are dropped.
//!
//! The returned `dScore` feeds directly into the paper's Eq. 2
//! (`we(e,r) = 1 + dScore`).

pub mod annotator;
pub mod spot;

pub use annotator::{Annotation, Annotator, AnnotatorConfig};
pub use spot::{spot_anchors, Spot};
