//! Collective-agreement disambiguation and ρ-pruning.

use crate::spot::{spot_anchors, Spot};
use rightcrowd_kb::KnowledgeBase;
use rightcrowd_text::tokenize;
use rightcrowd_types::EntityId;

/// Tuning knobs of the annotator. The defaults mirror TAGME's published
/// operating point, adapted to the synthetic KB's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatorConfig {
    /// Anchors with link probability below this are never spotted.
    pub min_link_probability: f64,
    /// Annotations with ρ (dScore) below this are pruned.
    pub min_dscore: f64,
    /// ε-selection band: among candidates whose vote is within `epsilon`
    /// of the best vote, the most common sense wins.
    pub epsilon: f64,
}

impl Default for AnnotatorConfig {
    fn default() -> Self {
        AnnotatorConfig {
            min_link_probability: 0.05,
            min_dscore: 0.10,
            epsilon: 0.3,
        }
    }
}

/// One accepted entity annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The disambiguated entity.
    pub entity: EntityId,
    /// The anchor surface form that produced it.
    pub surface: String,
    /// Token offset of the anchor.
    pub start: usize,
    /// Anchor length in tokens.
    pub len: usize,
    /// Disambiguation confidence ρ ∈ [0, 1] — the paper's `dScore`,
    /// plugged into Eq. 2 as `we = 1 + dScore`.
    pub dscore: f64,
}

/// A TAGME-style annotator bound to a knowledge base.
#[derive(Debug, Clone)]
pub struct Annotator<'kb> {
    kb: &'kb KnowledgeBase,
    config: AnnotatorConfig,
}

impl<'kb> Annotator<'kb> {
    /// Binds an annotator with the default configuration.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        Annotator { kb, config: AnnotatorConfig::default() }
    }

    /// Binds an annotator with a custom configuration.
    pub fn with_config(kb: &'kb KnowledgeBase, config: AnnotatorConfig) -> Self {
        Annotator { kb, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnnotatorConfig {
        &self.config
    }

    /// Annotates raw text (tokenised internally).
    pub fn annotate(&self, text: &str) -> Vec<Annotation> {
        self.annotate_tokens(&tokenize(text))
    }

    /// Annotates an already-tokenised text.
    pub fn annotate_tokens(&self, tokens: &[String]) -> Vec<Annotation> {
        let _span = rightcrowd_obs::span!("annotate.tokens");
        let spots = spot_anchors(self.kb, tokens, self.config.min_link_probability);
        if spots.is_empty() {
            return Vec::new();
        }

        // Phase 2: collective agreement — pick a sense per spot.
        let selected: Vec<EntityId> = spots
            .iter()
            .enumerate()
            .map(|(i, spot)| self.disambiguate(spot, i, &spots))
            .collect();

        // Phase 3: ρ scoring against the other *selected* senses + pruning.
        let mut annotations = Vec::with_capacity(spots.len());
        for (i, spot) in spots.iter().enumerate() {
            let entity = selected[i];
            let coherence = self.coherence(entity, i, &selected, spot);
            let dscore = 0.5 * spot.link_probability + 0.5 * coherence;
            if dscore >= self.config.min_dscore {
                annotations.push(Annotation {
                    entity,
                    surface: spot.surface.clone(),
                    start: spot.start,
                    len: spot.len,
                    dscore,
                });
            }
        }
        rightcrowd_obs::add(
            rightcrowd_obs::CounterId::EntitiesAnnotated,
            annotations.len() as u64,
        );
        annotations
    }

    /// Votes for every candidate sense of `spot` and applies ε-selection.
    fn disambiguate(&self, spot: &Spot, index: usize, spots: &[Spot]) -> EntityId {
        debug_assert!(!spot.candidates.is_empty());
        if spot.candidates.len() == 1 || spots.len() == 1 {
            // Unambiguous, or no context to vote with: commonest sense.
            return spot.candidates[0].entity;
        }
        let votes: Vec<f64> = spot
            .candidates
            .iter()
            .map(|cand| self.vote(cand.entity, index, spots))
            .collect();
        let best_vote = votes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // ε-selection: among near-top-voted candidates, highest commonness
        // (candidates are already sorted by commonness, so the first
        // qualifying one wins).
        let threshold = best_vote - self.config.epsilon * best_vote.abs().max(1e-9);
        spot.candidates
            .iter()
            .zip(&votes)
            .find(|(_, &v)| v >= threshold - 1e-12)
            .map(|(c, _)| c.entity)
            .unwrap_or(spot.candidates[0].entity)
    }

    /// TAGME vote: the average, over all *other* spots, of the
    /// commonness-weighted relatedness between `entity` and the other
    /// spot's candidate senses.
    fn vote(&self, entity: EntityId, index: usize, spots: &[Spot]) -> f64 {
        let mut total = 0.0;
        let mut others = 0usize;
        for (j, other) in spots.iter().enumerate() {
            if j == index {
                continue;
            }
            let weight_sum: u32 = other.candidates.iter().map(|c| c.links).sum();
            if weight_sum == 0 {
                continue;
            }
            let mut spot_vote = 0.0;
            for cand in &other.candidates {
                let commonness = cand.links as f64 / weight_sum as f64;
                spot_vote += self.kb.relatedness(entity, cand.entity) * commonness;
            }
            total += spot_vote;
            others += 1;
        }
        if others == 0 {
            0.0
        } else {
            total / others as f64
        }
    }

    /// Coherence of the selected `entity` with the other selected senses.
    /// With no other spots, falls back to the sense's commonness so that
    /// single-entity snippets (common in tweets and queries) survive
    /// pruning when the sense is dominant.
    fn coherence(&self, entity: EntityId, index: usize, selected: &[EntityId], spot: &Spot) -> f64 {
        if selected.len() <= 1 {
            let weight_sum: u32 = spot.candidates.iter().map(|c| c.links).sum();
            let links = spot
                .candidates
                .iter()
                .find(|c| c.entity == entity)
                .map_or(0, |c| c.links);
            return if weight_sum == 0 { 0.0 } else { links as f64 / weight_sum as f64 };
        }
        let mut total = 0.0;
        for (j, &other) in selected.iter().enumerate() {
            if j != index {
                total += self.kb.relatedness(entity, other);
            }
        }
        total / (selected.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_kb::seed;

    fn annotate(text: &str) -> Vec<(String, String, f64)> {
        let kb = seed::standard();
        Annotator::new(&kb)
            .annotate(text)
            .into_iter()
            .map(|a| (a.surface.clone(), kb.entity(a.entity).title.clone(), a.dscore))
            .collect()
    }

    #[test]
    fn annotates_unambiguous_entity() {
        let anns = annotate("Michael Phelps swam a great race");
        assert!(anns.iter().any(|(s, t, _)| s == "michael phelps" && t == "Michael Phelps"));
    }

    #[test]
    fn milan_disambiguates_to_club_in_sports_context() {
        let kb = seed::standard();
        let annotator = Annotator::new(&kb);
        let anns = annotator.annotate("milan won the derby against inter in the champions league");
        let milan = anns
            .iter()
            .find(|a| a.surface == "milan")
            .expect("milan annotated");
        assert_eq!(kb.entity(milan.entity).title, "AC Milan");
    }

    #[test]
    fn milan_disambiguates_to_city_in_travel_context() {
        let kb = seed::standard();
        let annotator = Annotator::new(&kb);
        let anns = annotator.annotate("visiting milan the duomo and then venice by train");
        let milan = anns
            .iter()
            .find(|a| a.surface == "milan")
            .expect("milan annotated");
        assert_eq!(kb.entity(milan.entity).title, "Milan");
    }

    #[test]
    fn conductor_disambiguates_by_context() {
        let kb = seed::standard();
        let annotator = Annotator::new(&kb);
        let science = annotator.annotate("copper is a great conductor because electrons move freely");
        let sense = science
            .iter()
            .find(|a| a.surface == "conductor")
            .expect("conductor annotated in science context");
        assert_eq!(kb.entity(sense.entity).title, "Electrical Conductor");
    }

    #[test]
    fn dscores_in_unit_interval_and_above_threshold() {
        let anns = annotate("watching how i met your mother then playing diablo 3 on my new graphics card");
        assert!(!anns.is_empty());
        for (s, _, d) in &anns {
            assert!((0.0..=1.0).contains(d), "{s} dscore {d}");
            assert!(*d >= AnnotatorConfig::default().min_dscore);
        }
    }

    #[test]
    fn no_annotations_on_chatter() {
        let anns = annotate("good morning everyone have a wonderful day ahead");
        assert!(anns.is_empty(), "{anns:?}");
    }

    #[test]
    fn single_dominant_sense_survives_alone() {
        // "michael phelps" alone in the text: coherence falls back to
        // commonness (1.0), dscore = (lp + 1)/2 ≥ threshold.
        let anns = annotate("michael phelps");
        assert_eq!(anns.len(), 1);
    }

    #[test]
    fn strict_pruning_removes_all() {
        let kb = seed::standard();
        let strict = Annotator::with_config(
            &kb,
            AnnotatorConfig { min_dscore: 0.99, ..AnnotatorConfig::default() },
        );
        assert!(strict.annotate("michael phelps visited milan").is_empty());
    }

    #[test]
    fn annotation_offsets_point_at_tokens() {
        let kb = seed::standard();
        let annotator = Annotator::new(&kb);
        let tokens = tokenize("today michael phelps raced");
        let anns = annotator.annotate_tokens(&tokens);
        let a = &anns[0];
        assert_eq!(&tokens[a.start..a.start + a.len].join(" "), &a.surface);
    }
}
