//! Property tests for windowed histograms: folding per-window deltas
//! back together must bit-equal the global histogram, and windowed
//! percentiles must agree with the atomic implementation.

use proptest::prelude::*;
use rightcrowd_obs::hist::{Histogram, PlainHistogram};

const MAX_OBS: usize = 200;

/// Random nanosecond observations spanning every bucket decade.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,                     // the bottom buckets
            1_000u64..1_000_000,          // microsecond range
            1_000_000u64..10_000_000_000, // ms .. tens of seconds
            Just(u64::MAX),               // the saturating top bucket
        ],
        0..MAX_OBS,
    )
}

/// Window assignments: observation `i` belongs to window
/// `assignment[i % MAX_OBS] % 8`.
fn assignments() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, MAX_OBS..=MAX_OBS)
}

proptest! {
    /// Merging every window's delta histogram bit-equals one global
    /// histogram of the same observations (buckets, count and sum).
    #[test]
    fn merged_windows_bit_equal_the_global_histogram(
        obs in observations(),
        windows in assignments(),
    ) {
        // The global histogram records everything in one stream.
        let global = Histogram::new();
        for &ns in &obs {
            global.record_ns(ns);
        }
        // Each window accumulates only its own observations…
        let mut per_window = vec![PlainHistogram::new(); 8];
        for (i, &ns) in obs.iter().enumerate() {
            per_window[windows[i % MAX_OBS] as usize % 8].record_ns(ns);
        }
        // …and folding the windows back recovers the global bit-for-bit.
        let mut merged = PlainHistogram::new();
        for w in &per_window {
            merged.merge_from(w);
        }
        prop_assert_eq!(merged, global.freeze());
    }

    /// Delta-of-freezes windowing (what `obs::timeseries::Sampler` does)
    /// also reassembles exactly: freeze after every batch, diff against
    /// the previous freeze, merge the diffs.
    #[test]
    fn freeze_deltas_reassemble_exactly(
        obs in observations(),
        windows in assignments(),
    ) {
        let global = Histogram::new();
        let mut merged = PlainHistogram::new();
        let mut prev = PlainHistogram::new();
        // Observations arrive in arbitrary batches (the assignment
        // decides where freeze points fall).
        for (i, &ns) in obs.iter().enumerate() {
            global.record_ns(ns);
            if windows[i % MAX_OBS] % 3 == 0 {
                let cur = global.freeze();
                merged.merge_from(&cur.saturating_delta(&prev));
                prev = cur;
            }
        }
        let cur = global.freeze();
        merged.merge_from(&cur.saturating_delta(&prev));
        prop_assert_eq!(merged, cur);
    }

    /// On single-window data the windowed `percentile_ns` agrees with
    /// the atomic `Histogram::percentile_ns` at every probability
    /// (including the exact endpoints).
    #[test]
    fn windowed_percentile_agrees_with_global(
        obs in observations(),
        p in 0.0f64..1.0,
    ) {
        let global = Histogram::new();
        let mut window = PlainHistogram::new();
        for &ns in &obs {
            global.record_ns(ns);
            window.record_ns(ns);
        }
        for p in [0.0, p, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(window.percentile_ns(p), global.percentile_ns(p));
        }
        prop_assert_eq!(window.summarize(), global.summarize());
    }
}
