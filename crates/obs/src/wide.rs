//! Wide events: a tail-sampled structured query log.
//!
//! One JSONL line per *interesting* query, carrying everything known
//! about it — identity, config, latency, traversal-counter deltas,
//! block-pruning stats, the θ threshold the top-k converged to, and the
//! top-1 result — so a single line answers "what did that query do?"
//! without correlating across systems.
//!
//! Retention mirrors the flight recorder's policy, adapted to streams
//! too large to keep whole:
//!
//! - **errors are always kept** (bounded; overflow is counted, never
//!   silently dropped),
//! - **the slowest tail is always kept** — a bounded cohort with
//!   min-eviction and an atomic-free latency floor, exactly like
//!   `flight`'s slowest set,
//! - **everything else is reservoir-sampled** (Algorithm R with a
//!   hand-rolled xorshift64* generator, deterministic per seed), so the
//!   kept lines stay a uniform sample of the boring majority. An event
//!   evicted from the tail cohort is demoted into the reservoir stream
//!   rather than discarded outright.
//!
//! The log is an owned value (no global): each soak run builds one,
//! offers every query, and serialises the survivors with
//! [`WideEventLog::to_jsonl`].

use crate::flight::QueryRecord;
use crate::snapshot::{fmt_f64, json_escape};

/// One wide event: a [`QueryRecord`] plus the fields the flight ring
/// does not carry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WideEvent {
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Worker thread index that served the query.
    pub thread: u32,
    /// The per-query flight record (identity, config, latency, counter
    /// deltas, top candidates).
    pub record: QueryRecord,
    /// Compressed posting blocks owned by the walked lists.
    pub blocks_total: u64,
    /// Blocks skipped whole by the Block-Max bound.
    pub blocks_skipped: u64,
    /// The θ (k-th best score) the top-k heap converged to; 0 when the
    /// ranking had fewer than k results.
    pub theta: f64,
    /// Error description when the query failed (failed queries are
    /// always retained).
    pub error: Option<String>,
}

/// Why a retained event survived, rendered into the JSONL `kept` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kept {
    Error,
    Tail,
    Sample,
}

impl Kept {
    fn as_str(self) -> &'static str {
        match self {
            Kept::Error => "error",
            Kept::Tail => "tail",
            Kept::Sample => "sample",
        }
    }
}

impl WideEvent {
    /// Renders the event as one JSON line (no trailing newline).
    fn to_jsonl(&self, kept: Kept) -> String {
        let r = &self.record;
        let (top1_person, top1_score) = match r.top_candidates.first() {
            Some(&(p, s)) => (format!("{p}"), fmt_f64(s)),
            None => ("null".into(), "null".into()),
        };
        let error = match &self.error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".into(),
        };
        format!(
            "{{\"ts_ms\": {}, \"thread\": {}, \"kept\": \"{}\", \"query_id\": {}, \
             \"label\": \"{}\", \"domain\": \"{}\", \"alpha\": {}, \
             \"max_distance\": {}, \"window\": \"{}\", \"latency_ms\": {}, \
             \"cpu_est_us\": {}, \
             \"postings_traversed\": {}, \"maxscore_admitted\": {}, \
             \"maxscore_pruned\": {}, \"blocks_total\": {}, \
             \"blocks_skipped\": {}, \"theta\": {}, \"top1_person\": {}, \
             \"top1_score\": {}, \"error\": {}}}",
            self.unix_ms,
            self.thread,
            kept.as_str(),
            r.query_id,
            json_escape(&r.label),
            json_escape(&r.domain),
            fmt_f64(r.alpha),
            r.max_distance,
            json_escape(&r.window),
            fmt_f64(r.latency_ms()),
            r.cpu_est_us,
            r.postings_traversed,
            r.maxscore_admitted,
            r.maxscore_pruned,
            self.blocks_total,
            self.blocks_skipped,
            fmt_f64(self.theta),
            top1_person,
            top1_score,
            error,
        )
    }
}

/// xorshift64*: tiny, deterministic, dependency-free — good enough for
/// reservoir admission, nothing else.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The tail-sampled wide-event log. See the module docs for the
/// retention policy.
#[derive(Debug)]
pub struct WideEventLog {
    /// Errors, always kept up to `error_cap`.
    errors: Vec<WideEvent>,
    error_cap: usize,
    /// Errors offered after `errors` filled (never silently dropped —
    /// surfaced via [`WideEventLog::errors_dropped`]).
    errors_dropped: u64,
    /// Slowest tail cohort, unordered, min-evicted.
    tail: Vec<WideEvent>,
    tail_cap: usize,
    /// Fastest member of a *full* tail; events at or below it go
    /// straight to the reservoir.
    tail_floor_ns: u64,
    /// Uniform sample of the non-error, non-tail majority.
    reservoir: Vec<WideEvent>,
    reservoir_cap: usize,
    /// Events that entered the reservoir stream (Algorithm R's `n`).
    reservoir_seen: u64,
    /// Every event ever offered.
    seen: u64,
    rng: u64,
}

impl WideEventLog {
    /// A log keeping at most `reservoir_cap` sampled events plus
    /// `tail_cap` slowest events plus `tail_cap` errors; `seed` fixes
    /// the reservoir's admission sequence.
    pub fn new(reservoir_cap: usize, tail_cap: usize, seed: u64) -> Self {
        WideEventLog {
            errors: Vec::new(),
            error_cap: tail_cap.max(1),
            errors_dropped: 0,
            tail: Vec::new(),
            tail_cap: tail_cap.max(1),
            tail_floor_ns: 0,
            reservoir: Vec::new(),
            reservoir_cap: reservoir_cap.max(1),
            reservoir_seen: 0,
            seen: 0,
            rng: seed | 1, // xorshift state must be non-zero
        }
    }

    /// Offers one event; the log decides whether (and where) it
    /// survives.
    pub fn offer(&mut self, event: WideEvent) {
        self.seen += 1;
        if event.error.is_some() {
            if self.errors.len() < self.error_cap {
                self.errors.push(event);
            } else {
                self.errors_dropped += 1;
            }
            return;
        }
        if event.record.latency_ns > self.tail_floor_ns {
            self.tail.push(event);
            if self.tail.len() > self.tail_cap {
                let (min_idx, _) = self
                    .tail
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.record.latency_ns)
                    .expect("non-empty");
                let evicted = self.tail.swap_remove(min_idx);
                self.tail_floor_ns =
                    self.tail.iter().map(|e| e.record.latency_ns).min().unwrap_or(0);
                // Demoted, not discarded: the evictee re-enters the
                // boring-majority stream.
                self.reservoir_offer(evicted);
            }
            return;
        }
        self.reservoir_offer(event);
    }

    /// Algorithm R: the first `cap` events fill the reservoir; event
    /// `n > cap` replaces a uniformly random slot with probability
    /// `cap / n`.
    fn reservoir_offer(&mut self, event: WideEvent) {
        self.reservoir_seen += 1;
        if self.reservoir.len() < self.reservoir_cap {
            self.reservoir.push(event);
            return;
        }
        let j = xorshift64(&mut self.rng) % self.reservoir_seen;
        if (j as usize) < self.reservoir_cap {
            self.reservoir[j as usize] = event;
        }
    }

    /// Every event ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Currently retained events (errors + tail + reservoir).
    pub fn retained(&self) -> usize {
        self.errors.len() + self.tail.len() + self.reservoir.len()
    }

    /// Errors that arrived after the error buffer filled.
    pub fn errors_dropped(&self) -> u64 {
        self.errors_dropped
    }

    /// Folds profiler CPU attribution (query id → estimated µs) into
    /// every retained event, mirroring `flight::attribute_cpu` — run
    /// after the profiler stops, before [`WideEventLog::to_jsonl`].
    pub fn attribute_cpu(&mut self, cpu_us: &std::collections::BTreeMap<u64, u64>) {
        for bucket in [&mut self.errors, &mut self.tail, &mut self.reservoir] {
            for event in bucket.iter_mut() {
                if let Some(&us) = cpu_us.get(&event.record.query_id) {
                    event.record.cpu_est_us = us;
                }
            }
        }
    }

    /// Serialises every retained event as JSONL, ordered by timestamp
    /// (ties broken by query id), one event per line, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut lines: Vec<(u64, u64, String)> = Vec::with_capacity(self.retained());
        for (bucket, kept) in [
            (&self.errors, Kept::Error),
            (&self.tail, Kept::Tail),
            (&self.reservoir, Kept::Sample),
        ] {
            for e in bucket {
                lines.push((e.unix_ms, e.record.query_id, e.to_jsonl(kept)));
            }
        }
        lines.sort_by_key(|l| (l.0, l.1));
        let mut out = String::new();
        for (_, _, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u64, latency_ns: u64) -> WideEvent {
        WideEvent {
            unix_ms: 1_700_000_000_000 + id,
            thread: (id % 4) as u32,
            record: QueryRecord {
                query_id: id,
                label: format!("q{id}"),
                latency_ns,
                ..QueryRecord::default()
            },
            ..WideEvent::default()
        }
    }

    #[test]
    fn errors_are_always_kept() {
        let mut log = WideEventLog::new(2, 2, 42);
        for i in 0..10u64 {
            let mut e = event(i, 100);
            if i % 2 == 0 {
                e.error = Some(format!("boom {i}"));
            }
            log.offer(e);
        }
        assert_eq!(log.seen(), 10);
        // error_cap == tail_cap == 2: first two errors kept, three more
        // counted as dropped rather than vanishing.
        assert_eq!(log.errors.len(), 2);
        assert_eq!(log.errors_dropped(), 3);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"kept\": \"error\""));
        assert!(jsonl.contains("\"error\": \"boom 0\""));
    }

    #[test]
    fn tail_keeps_the_slowest() {
        let mut log = WideEventLog::new(4, 3, 7);
        for i in 0..100u64 {
            log.offer(event(i, (i + 1) * 1_000));
        }
        let mut tail_ids: Vec<u64> =
            log.tail.iter().map(|e| e.record.query_id).collect();
        tail_ids.sort_unstable();
        assert_eq!(tail_ids, vec![97, 98, 99], "three slowest survive");
        assert!(log.reservoir.len() <= 4);
        assert_eq!(log.retained(), log.tail.len() + log.reservoir.len());
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let run = |seed: u64| {
            let mut log = WideEventLog::new(8, 2, seed);
            for i in 0..1_000u64 {
                // Constant latency: after the tail fills, everything
                // else flows into the reservoir.
                log.offer(event(i, if i < 2 { 1_000_000 } else { 500 }));
            }
            let ids: Vec<u64> =
                log.reservoir.iter().map(|e| e.record.query_id).collect();
            (log.seen(), ids)
        };
        let (seen_a, ids_a) = run(123);
        let (_, ids_b) = run(123);
        let (_, ids_c) = run(456);
        assert_eq!(seen_a, 1_000);
        assert_eq!(ids_a.len(), 8);
        assert_eq!(ids_a, ids_b, "same seed, same sample");
        assert_ne!(ids_a, ids_c, "different seed, different sample");
    }

    #[test]
    fn jsonl_lines_are_ordered_and_self_describing() {
        let mut log = WideEventLog::new(8, 2, 1);
        let mut slow = event(5, 9_000_000);
        slow.theta = 0.25;
        slow.blocks_total = 10;
        slow.blocks_skipped = 4;
        slow.record.top_candidates = vec![(17, 0.91), (3, 0.5)];
        log.offer(slow);
        log.offer(event(1, 100));
        // Post-hoc CPU attribution lands in the serialised lines.
        log.attribute_cpu(&std::collections::BTreeMap::from([(5u64, 1_500u64)]));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        // Ordered by timestamp (event 1 is earlier).
        assert!(lines[0].contains("\"query_id\": 1"));
        assert!(lines[0].contains("\"cpu_est_us\": 0"));
        assert!(lines[1].contains("\"cpu_est_us\": 1500"));
        assert!(lines[1].contains("\"theta\": 0.250"));
        assert!(lines[1].contains("\"top1_person\": 17"));
        assert!(lines[1].contains("\"blocks_skipped\": 4"));
        assert!(lines[1].contains("\"error\": null"));
        // Every line is a single JSON object.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn tail_evictions_are_demoted_to_the_reservoir() {
        let mut log = WideEventLog::new(100, 1, 9);
        // Strictly increasing latencies: each new event evicts the
        // previous tail occupant, which must land in the reservoir.
        for i in 0..10u64 {
            log.offer(event(i, (i + 1) * 1_000));
        }
        assert_eq!(log.tail.len(), 1);
        assert_eq!(log.tail[0].record.query_id, 9);
        assert_eq!(log.reservoir.len(), 9, "evictees demoted, not dropped");
        assert_eq!(log.retained(), 10);
    }
}
