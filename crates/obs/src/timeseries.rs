//! Windowed time-series sampling of the global registry.
//!
//! A [`Sampler`] turns the process-lifetime counters and histograms into
//! per-interval *windows*: each [`Sampler::sample`] call freezes the
//! registry, diffs it against the previous freeze, and publishes the
//! delta — every enum-indexed counter plus every log₂ latency histogram —
//! into a bounded ring. The ring keeps the most recent `capacity`
//! windows; readers ([`Sampler::windows`]) never block the writer.
//!
//! ## Concurrency model
//!
//! The hot query path is untouched: workers keep publishing relaxed
//! `fetch_add`s to the static registry exactly as before. Only the
//! sampling tick (one caller per sampler, serialised by an internal
//! mutex over the baseline freeze) writes the ring. Each ring slot is a
//! seqlock: a per-slot sequence number (odd while the writer is mid-
//! store) brackets a flat array of `AtomicU64` cells, so readers
//! validate the sequence before and after copying and retry on a torn
//! read — lock-free reads with no `unsafe`.
//!
//! Under `obs-off` the registry reads compile to constants, `sample`
//! publishes nothing, and `windows` returns empty — the sampler is a
//! compile-time no-op like every other probe.

use crate::counter::{self, CounterId};
use crate::hist::{self, HistId, PlainHistogram, BUCKETS};
use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: four minutes of one-second ticks.
pub const DEFAULT_RING_WINDOWS: usize = 240;

const N_COUNTERS: usize = CounterId::ALL.len();
const N_HISTS: usize = HistId::ALL.len();
/// Flat cell layout of one slot: `index`, `start_ms`, `duration_ns`,
/// the counter deltas, then per histogram `BUCKETS` bucket deltas plus
/// `count` and `sum_ns`.
const HIST_CELLS: usize = BUCKETS + 2;
const SLOT_CELLS: usize = 3 + N_COUNTERS + N_HISTS * HIST_CELLS;
/// Retries before a reader gives up on a slot the writer keeps lapping.
const READ_RETRIES: usize = 64;

/// One sampled interval: per-interval deltas of every counter and
/// histogram, plus enough timing to derive rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Monotonic window number (0 for the first sample ever published).
    pub index: u64,
    /// Start of the interval, milliseconds since the sampler was created.
    pub start_ms: u64,
    /// Wall-clock length of the interval in nanoseconds.
    pub duration_ns: u64,
    /// Per-interval counter deltas in [`CounterId::ALL`] order. Gauge
    /// counters ([`CounterId::is_gauge`]) carry the level at sample time
    /// instead of a delta.
    pub counters: [u64; N_COUNTERS],
    /// Per-interval histogram deltas in [`HistId::ALL`] order.
    pub hists: [PlainHistogram; N_HISTS],
}

impl Default for Window {
    fn default() -> Self {
        Self::empty()
    }
}

impl Window {
    /// An all-zero window.
    pub const fn empty() -> Self {
        Window {
            index: 0,
            start_ms: 0,
            duration_ns: 0,
            counters: [0; N_COUNTERS],
            hists: [PlainHistogram::new(); N_HISTS],
        }
    }

    /// The interval's delta (or level, for gauges) of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// The interval's delta of one histogram.
    pub fn hist(&self, id: HistId) -> &PlainHistogram {
        &self.hists[id as usize]
    }

    /// Interval length in seconds (0 maps to a tiny epsilon so rates
    /// stay finite).
    pub fn secs(&self) -> f64 {
        (self.duration_ns as f64 / 1e9).max(1e-9)
    }

    /// Events per second for one counter over this interval.
    pub fn rate(&self, id: CounterId) -> f64 {
        self.counter(id) as f64 / self.secs()
    }

    /// Queries completed per second (from the query-latency histogram
    /// count, so it matches what latency percentiles are computed over).
    pub fn qps(&self) -> f64 {
        self.hist(HistId::QueryLatency).count as f64 / self.secs()
    }

    /// Postings traversed per second.
    pub fn postings_per_sec(&self) -> f64 {
        self.rate(CounterId::PostingsTraversed)
    }

    /// Fraction of compressed posting blocks skipped whole this interval
    /// (0 when no blocks were walked).
    pub fn block_skip_frac(&self) -> f64 {
        let total = self.counter(CounterId::BlocksTotal);
        if total == 0 {
            0.0
        } else {
            self.counter(CounterId::BlocksSkipped) as f64 / total as f64
        }
    }

    /// Windowed query-latency percentile in microseconds (bucket-resolved
    /// nearest-rank, like the global histograms).
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        self.hist(HistId::QueryLatency).percentile_ns(p) as f64 / 1e3
    }

    fn encode(&self) -> [u64; SLOT_CELLS] {
        let mut cells = [0u64; SLOT_CELLS];
        cells[0] = self.index;
        cells[1] = self.start_ms;
        cells[2] = self.duration_ns;
        cells[3..3 + N_COUNTERS].copy_from_slice(&self.counters);
        for (h, hist) in self.hists.iter().enumerate() {
            let base = 3 + N_COUNTERS + h * HIST_CELLS;
            cells[base..base + BUCKETS].copy_from_slice(&hist.buckets);
            cells[base + BUCKETS] = hist.count;
            cells[base + BUCKETS + 1] = hist.sum_ns;
        }
        cells
    }

    fn decode(cells: &[u64; SLOT_CELLS]) -> Window {
        let mut w = Window::empty();
        w.index = cells[0];
        w.start_ms = cells[1];
        w.duration_ns = cells[2];
        w.counters.copy_from_slice(&cells[3..3 + N_COUNTERS]);
        for (h, hist) in w.hists.iter_mut().enumerate() {
            let base = 3 + N_COUNTERS + h * HIST_CELLS;
            hist.buckets.copy_from_slice(&cells[base..base + BUCKETS]);
            hist.count = cells[base + BUCKETS];
            hist.sum_ns = cells[base + BUCKETS + 1];
        }
        w
    }
}

/// One seqlock ring slot: `seq` is even when stable, odd while the
/// writer is storing `cells`.
struct Slot {
    seq: AtomicU64,
    cells: Vec<AtomicU64>,
}

impl Slot {
    fn new() -> Self {
        Slot { seq: AtomicU64::new(0), cells: (0..SLOT_CELLS).map(|_| AtomicU64::new(0)).collect() }
    }

    fn publish(&self, window: &Window) {
        let cells = window.encode();
        let seq = self.seq.load(Relaxed);
        self.seq.store(seq.wrapping_add(1), Release); // odd: write in progress
        for (cell, value) in self.cells.iter().zip(cells) {
            cell.store(value, Relaxed);
        }
        self.seq.store(seq.wrapping_add(2), Release); // even again
    }

    /// Seqlock read: `None` when the writer lapped us `READ_RETRIES`
    /// times in a row.
    fn read(&self) -> Option<Window> {
        for _ in 0..READ_RETRIES {
            let before = self.seq.load(Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut cells = [0u64; SLOT_CELLS];
            for (out, cell) in cells.iter_mut().zip(&self.cells) {
                *out = cell.load(Relaxed);
            }
            // The Acquire fence below orders the cell loads before the
            // second seq check; equal sequence numbers mean no writer
            // touched the slot while we copied.
            std::sync::atomic::fence(Acquire);
            if self.seq.load(Acquire) == before {
                return Some(Window::decode(&cells));
            }
        }
        None
    }
}

/// The writer-side state: the previous registry freeze the next sample
/// is diffed against.
struct Baseline {
    counters: [u64; N_COUNTERS],
    hists: [PlainHistogram; N_HISTS],
    last_tick: Instant,
}

/// A bounded ring of per-interval [`Window`]s over the global registry.
///
/// Create one per measurement (each sampler carries its own baseline, so
/// a fresh sampler's first window covers only activity after creation),
/// call [`sample`](Sampler::sample) on a fixed tick, and read the
/// resident windows any time with [`windows`](Sampler::windows).
pub struct Sampler {
    slots: Vec<Slot>,
    /// Number of windows ever published (head of the ring).
    published: AtomicU64,
    writer: Mutex<Baseline>,
    started: Instant,
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampler {
    /// A sampler with the default ring capacity
    /// ([`DEFAULT_RING_WINDOWS`]), baselined at the current registry
    /// state.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_WINDOWS)
    }

    /// A sampler retaining the most recent `capacity` windows (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let now = Instant::now();
        Sampler {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            published: AtomicU64::new(0),
            writer: Mutex::new(Baseline {
                counters: freeze_counters(),
                hists: freeze_hists(),
                last_tick: now,
            }),
            started: now,
        }
    }

    /// Ring capacity in windows.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of windows published so far (not capped at capacity).
    pub fn published(&self) -> u64 {
        self.published.load(Acquire)
    }

    /// Freezes the registry, publishes the delta since the previous
    /// sample as a new window, and returns it. Concurrent callers are
    /// serialised on the baseline; the hot path is never blocked.
    ///
    /// Under `obs-off` the window carries real timing but all-zero
    /// counters and histograms, and nothing is published to the ring.
    pub fn sample(&self) -> Window {
        let mut base = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let counters = freeze_counters();
        let hists = freeze_hists();

        let mut window = Window::empty();
        window.start_ms = base.last_tick.duration_since(self.started).as_millis() as u64;
        window.duration_ns = now.duration_since(base.last_tick).as_nanos() as u64;
        for (i, &id) in CounterId::ALL.iter().enumerate() {
            // Gauges carry the level, monotone counters the delta.
            window.counters[i] = if id.is_gauge() {
                counters[i]
            } else {
                counters[i].saturating_sub(base.counters[i])
            };
        }
        for (i, hist) in hists.iter().enumerate() {
            window.hists[i] = hist.saturating_delta(&base.hists[i]);
        }

        base.counters = counters;
        base.hists = hists;
        base.last_tick = now;

        if crate::PROBES_ENABLED {
            let index = self.published.load(Relaxed);
            window.index = index;
            self.slots[(index % self.slots.len() as u64) as usize].publish(&window);
            self.published.store(index + 1, Release);
        }
        window
    }

    /// The resident windows, oldest first — a lock-free snapshot.
    /// Windows the writer overwrote or tore mid-read are skipped.
    pub fn windows(&self) -> Vec<Window> {
        let head = self.published.load(Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for index in first..head {
            if let Some(w) = self.slots[(index % cap) as usize].read() {
                // A slot lapped between the head load and our read holds
                // a newer window; keep only the expected index so the
                // result stays ordered oldest → newest.
                if w.index == index {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Merges one histogram across every resident window.
    pub fn merged_hist(&self, id: HistId) -> PlainHistogram {
        let mut merged = PlainHistogram::new();
        for w in self.windows() {
            merged.merge_from(w.hist(id));
        }
        merged
    }

    /// Sums one counter's deltas across every resident window (for
    /// gauges this returns the most recent level instead).
    pub fn total_counter(&self, id: CounterId) -> u64 {
        let windows = self.windows();
        if id.is_gauge() {
            return windows.last().map(|w| w.counter(id)).unwrap_or(0);
        }
        windows.iter().map(|w| w.counter(id)).sum()
    }
}

fn freeze_counters() -> [u64; N_COUNTERS] {
    let mut out = [0u64; N_COUNTERS];
    for (i, &id) in CounterId::ALL.iter().enumerate() {
        out[i] = counter::get(id);
    }
    out
}

fn freeze_hists() -> [PlainHistogram; N_HISTS] {
    let mut out = [PlainHistogram::new(); N_HISTS];
    for (i, &id) in HistId::ALL.iter().enumerate() {
        out[i] = hist::freeze(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and other tests run in parallel, so
    // counter/histogram assertions are monotonic (≥ the activity this
    // test injected), matching the style of counter.rs tests.

    #[test]
    fn sample_captures_per_interval_deltas() {
        let s = Sampler::with_capacity(8);
        counter::add(CounterId::PostingsTraversed, 1_000);
        hist::record_ns(HistId::QueryLatency, 50_000);
        let w = s.sample();
        if crate::PROBES_ENABLED {
            assert!(w.counter(CounterId::PostingsTraversed) >= 1_000, "{w:?}");
            assert!(w.hist(HistId::QueryLatency).count >= 1);
            assert!(w.qps() > 0.0);
            assert!(w.postings_per_sec() > 0.0);
        } else {
            assert_eq!(w.counter(CounterId::PostingsTraversed), 0);
            assert_eq!(w.hist(HistId::QueryLatency).count, 0);
        }
        assert!(w.duration_ns > 0);
    }

    #[test]
    fn fresh_sampler_starts_from_current_registry_state() {
        counter::add(CounterId::DocsAnalyzed, 500);
        let s = Sampler::with_capacity(4);
        // Only activity after creation lands in the first window, so a
        // quiet interval (from this sampler's point of view nothing is
        // *guaranteed* to have happened) stays bounded by what parallel
        // tests can plausibly add — we can at least assert the window is
        // not seeded with the pre-existing 500.
        let w = s.sample();
        assert!(w.counter(CounterId::DocsAnalyzed) < 500 || !crate::PROBES_ENABLED);
    }

    #[test]
    fn ring_retains_most_recent_windows_in_order() {
        let s = Sampler::with_capacity(4);
        for _ in 0..10 {
            s.sample();
        }
        if !crate::PROBES_ENABLED {
            assert!(s.windows().is_empty());
            return;
        }
        let windows = s.windows();
        assert_eq!(s.published(), 10);
        assert_eq!(windows.len(), 4);
        let indices: Vec<u64> = windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![6, 7, 8, 9]);
        // start_ms is monotone across consecutive windows.
        for pair in windows.windows(2) {
            assert!(pair[0].start_ms <= pair[1].start_ms);
        }
    }

    #[test]
    fn merged_windows_fold_into_totals() {
        let s = Sampler::with_capacity(16);
        let mut injected = 0u64;
        for i in 0..5u64 {
            hist::record_ns(HistId::ShardLoadLatency, 1_000 * (i + 1));
            injected += 1;
            s.sample();
        }
        if crate::PROBES_ENABLED {
            assert!(s.merged_hist(HistId::ShardLoadLatency).count >= injected);
            assert_eq!(
                s.total_counter(CounterId::AttributionShapesResident),
                counter::get(CounterId::AttributionShapesResident)
            );
        } else {
            assert_eq!(s.merged_hist(HistId::ShardLoadLatency).count, 0);
        }
    }

    #[test]
    fn windowed_percentile_matches_plain_histogram() {
        let s = Sampler::with_capacity(2);
        hist::record_ns(HistId::SnapshotLoadLatency, 10_000);
        let w = s.sample();
        for p in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                w.latency_percentile_us(p),
                w.hist(HistId::QueryLatency).percentile_ns(p) as f64 / 1e3
            );
        }
    }

    #[test]
    fn block_skip_frac_is_zero_without_blocks() {
        let w = Window::empty();
        assert_eq!(w.block_skip_frac(), 0.0);
        assert_eq!(w.qps(), 0.0);
    }

    #[test]
    fn seqlock_roundtrip_is_bit_exact() {
        let slot = Slot::new();
        let mut w = Window::empty();
        w.index = 42;
        w.start_ms = 1_234;
        w.duration_ns = 1_000_000_000;
        w.counters[0] = 77;
        w.hists[0].record_ns(999);
        slot.publish(&w);
        assert_eq!(slot.read().expect("stable slot reads"), w);
    }

    #[test]
    fn lapped_slot_reads_skip_without_tearing() {
        // One writer republishing a single slot as fast as it can; the
        // readers hammer that same slot. Every window is built so all
        // its cells agree on the writer iteration (counters all equal to
        // the index, duration derived from it): a torn read — cells from
        // two different publishes — cannot satisfy the invariant. A
        // reader that keeps losing the race gets `None` (lapped, skip),
        // never a mangled window.
        let slot = std::sync::Arc::new(Slot::new());
        let publish = |index: u64| {
            let mut w = Window::empty();
            w.index = index;
            w.duration_ns = index * 3 + 1;
            w.counters = [index; N_COUNTERS];
            slot.publish(&w);
        };
        // The first publish happens before any reader starts: a pristine
        // slot reads as an all-zero window, which the invariant below
        // would misdiagnose as a tear.
        publish(0);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let slot = slot.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let (mut seen, mut skipped) = (0u64, 0u64);
                while !stop.load(Relaxed) {
                    match slot.read() {
                        Some(w) => {
                            assert!(
                                w.counters.iter().all(|&c| c == w.index),
                                "torn read: {:?} vs index {}",
                                w.counters,
                                w.index
                            );
                            assert_eq!(w.duration_ns, w.index * 3 + 1, "torn timing");
                            seen += 1;
                        }
                        None => skipped += 1, // lapped: skipped, not torn
                    }
                }
                (seen, skipped)
            }));
        }
        for index in 1..50_000u64 {
            publish(index);
        }
        stop.store(true, Relaxed);
        let mut total_seen = 0;
        for r in readers {
            let (seen, _skipped) = r.join().expect("reader panicked");
            total_seen += seen;
        }
        assert!(total_seen > 0, "readers observed stable windows");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_windows() {
        // One writer publishing distinguishable windows, several readers
        // validating internal consistency of everything they see.
        let s = std::sync::Arc::new(Sampler::with_capacity(4));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let s = s.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    for w in s.windows() {
                        // Published windows always carry real timing.
                        assert!(w.duration_ns > 0 || w.index == u64::MAX, "torn: {w:?}");
                    }
                }
            }));
        }
        for _ in 0..200 {
            s.sample();
        }
        stop.store(true, Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    }
}
