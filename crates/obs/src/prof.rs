//! In-process sampling profiler: "where do the cycles go?" without
//! external tooling.
//!
//! Every instrumented thread continuously publishes its **live span
//! stack** (plus the active query id, when inside a flight-recorded
//! query) into a per-thread seqlock slot in a global thread registry.
//! The publication rides the existing [`crate::span`] enter/exit hooks:
//! a push or pop is two sequence stores plus two relaxed cell stores on
//! a cache line owned by the publishing thread, so the hot path never
//! takes a lock and never blocks on the sampler.
//!
//! A [`Profiler`] spawns one sampler thread that wakes on a **prime
//! interval** (default [`DEFAULT_INTERVAL_NS`] ≈ 997 µs, so it cannot
//! phase-lock with millisecond tick loops; a single-core host defaults
//! to the coarser [`SINGLE_CORE_INTERVAL_NS`] because each wake preempts
//! the workload there), snapshots every registered stack lock-free
//! (seqlock read with bounded retries, torn or lapped slots skipped),
//! and accumulates collapsed-stack counts. Stopping the
//! profiler yields a [`ProfileReport`]:
//!
//! - Brendan Gregg **folded format** ([`ProfileReport::to_folded`],
//!   round-trip checked by [`validate_folded`]),
//! - a self-contained, dependency-free **flamegraph SVG**
//!   ([`flamegraph_svg`], structurally checked by
//!   [`validate_flamegraph_svg`] the way `validate_openmetrics` checks
//!   exposition),
//! - **per-query CPU attribution**: samples keyed by the active query id
//!   convert to estimated CPU microseconds
//!   ([`ProfileReport::query_cpu_us`]) that harnesses fold back into
//!   [`crate::flight::QueryRecord::cpu_est_us`] and the wide-event log.
//!
//! Stacks deeper than [`MAX_DEPTH`] publish their outermost frames and
//! truncate the leaves (the roots carry the attribution). Threads
//! unregister their slot when they exit — the registry holds `Arc`s, so
//! a sampler mid-read keeps the slot alive and simply stops seeing the
//! thread on the next tick; there is no dangling read by construction.
//!
//! Under `obs-off` the registry, the publisher and the sampler all
//! compile to no-ops: [`Profiler::stop`] returns an empty report and
//! [`registered_threads`] is 0.

use std::collections::BTreeMap;

#[cfg(not(feature = "obs-off"))]
use std::collections::HashMap;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{
    AtomicBool, AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Arc, Mutex, OnceLock};

/// Deepest span stack a thread publishes; deeper nesting keeps the
/// outermost frames.
pub const MAX_DEPTH: usize = 32;

/// Default sampling interval on multi-core hosts: a prime number of
/// microseconds close to 1 kHz, so the sampler cannot lock step with
/// 1 ms tick loops.
pub const DEFAULT_INTERVAL_NS: u64 = 997_000;

/// Default sampling interval when the host exposes a single CPU: every
/// sampler wake preempts the workload there, so the default drops to a
/// coarser prime (~200 Hz — still above `perf`'s canonical 99 Hz) to
/// stay inside the profiler overhead budget. `--hz` overrides it.
pub const SINGLE_CORE_INTERVAL_NS: u64 = 4_999_000;

/// The interval [`Profiler::start`] uses: [`DEFAULT_INTERVAL_NS`] when
/// more than one CPU is available, [`SINGLE_CORE_INTERVAL_NS`] when the
/// sampler would share the workload's only core.
pub fn default_interval_ns() -> u64 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => DEFAULT_INTERVAL_NS,
        _ => SINGLE_CORE_INTERVAL_NS,
    }
}

/// The interval [`Profiler::start_hz`] uses for `hz` (clamped to
/// [1, 10_000] Hz, floored at 100 µs).
pub fn hz_interval_ns(hz: u32) -> u64 {
    (1_000_000_000 / u64::from(hz).clamp(1, 10_000)).max(100_000)
}

/// Seqlock read retries before the sampler skips a slot the writer
/// keeps lapping (mirrors `timeseries::READ_RETRIES`).
#[cfg(not(feature = "obs-off"))]
const READ_RETRIES: usize = 64;

// ---------------------------------------------------------------------------
// Name interning: span names are &'static str; the published stack is a
// sequence of small ids resolved back to names at report time.

#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct InternTable {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

#[cfg(not(feature = "obs-off"))]
fn intern_table() -> &'static Mutex<InternTable> {
    static TABLE: OnceLock<Mutex<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(InternTable::default()))
}

#[cfg(not(feature = "obs-off"))]
fn intern(name: &'static str) -> u32 {
    let mut table = intern_table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = table.map.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name);
    table.map.insert(name, id);
    id
}

#[cfg(not(feature = "obs-off"))]
fn resolve(ids: &[u32]) -> Vec<&'static str> {
    let table = intern_table().lock().unwrap_or_else(|e| e.into_inner());
    ids.iter()
        .map(|&id| table.names.get(id as usize).copied().unwrap_or("?"))
        .collect()
}

// ---------------------------------------------------------------------------
// Per-thread seqlock slot

/// One thread's published state: `seq` is even when stable, odd while
/// the owning thread is mid-store. `query` holds the active query id
/// plus one (0 = no flight-recorded query in progress).
#[cfg(not(feature = "obs-off"))]
struct ThreadSlot {
    seq: AtomicU64,
    depth: AtomicU64,
    query: AtomicU64,
    frames: [AtomicU64; MAX_DEPTH],
}

#[cfg(not(feature = "obs-off"))]
impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            query: AtomicU64::new(0),
            frames: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Runs `mutate` under the seqlock write protocol: odd sequence
    /// while the cells change, even again after.
    fn write(&self, mutate: impl FnOnce(&Self)) {
        let seq = self.seq.load(Relaxed);
        self.seq.store(seq.wrapping_add(1), Release); // odd: in progress
        mutate(self);
        self.seq.store(seq.wrapping_add(2), Release); // even: stable
    }

    /// Seqlock read of `(stack frame ids, active query id)`; `None`
    /// when the writer lapped us `READ_RETRIES` times in a row.
    #[cfg(test)]
    fn read(&self) -> Option<(Vec<u32>, Option<u64>)> {
        let mut ids = Vec::new();
        let query = self.read_into(&mut ids)?;
        Some((ids, query))
    }

    /// [`ThreadSlot::read`] into a caller-owned buffer — the sampler
    /// calls this once per registered thread per tick, and on a
    /// single-core host every byte it allocates comes straight out of
    /// the workload's cache.
    fn read_into(&self, ids: &mut Vec<u32>) -> Option<Option<u64>> {
        for _ in 0..READ_RETRIES {
            let before = self.seq.load(Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = (self.depth.load(Relaxed) as usize).min(MAX_DEPTH);
            let query = self.query.load(Relaxed);
            ids.clear();
            ids.extend(self.frames[..depth].iter().map(|f| f.load(Relaxed) as u32));
            // Order the cell loads before the second check: an equal
            // sequence number means no writer touched the slot meanwhile.
            std::sync::atomic::fence(Acquire);
            if self.seq.load(Acquire) == before {
                return Some(query.checked_sub(1));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Global thread registry

#[cfg(not(feature = "obs-off"))]
fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Bumped on every register/unregister; the sampler re-clones the
/// registry only when this moves, so a steady-state tick touches no lock
/// and frees no `Arc`s.
#[cfg(not(feature = "obs-off"))]
static REGISTRY_GEN: AtomicU64 = AtomicU64::new(0);

/// Number of threads currently publishing a span stack (0 under
/// `obs-off`). A thread registers on its first span and unregisters —
/// reclaiming its registry slot — when it exits.
pub fn registered_threads() -> usize {
    #[cfg(not(feature = "obs-off"))]
    return registry().lock().unwrap_or_else(|e| e.into_inner()).len();
    #[cfg(feature = "obs-off")]
    0
}

// ---------------------------------------------------------------------------
// Thread-local publisher (driven by span::enter / span::exit)

/// The publishing side of one thread: the full logical stack (so depths
/// beyond [`MAX_DEPTH`] recover on pop), a thread-local intern cache
/// (steady state never touches the global table), and the registered
/// slot. Dropping the publisher — the thread-local destructor — removes
/// the slot from the registry.
#[cfg(not(feature = "obs-off"))]
struct Publisher {
    slot: Arc<ThreadSlot>,
    ids: Vec<u32>,
    cache: HashMap<&'static str, u32>,
}

#[cfg(not(feature = "obs-off"))]
impl Publisher {
    fn new() -> Self {
        let slot = Arc::new(ThreadSlot::new());
        registry().lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&slot));
        REGISTRY_GEN.fetch_add(1, Release);
        Publisher { slot, ids: Vec::with_capacity(MAX_DEPTH), cache: HashMap::new() }
    }

    fn push(&mut self, name: &'static str) {
        let id = *self.cache.entry(name).or_insert_with(|| intern(name));
        self.ids.push(id);
        let depth = self.ids.len();
        self.slot.write(|s| {
            if depth <= MAX_DEPTH {
                s.frames[depth - 1].store(id as u64, Relaxed);
            }
            s.depth.store(depth.min(MAX_DEPTH) as u64, Relaxed);
        });
    }

    fn pop(&mut self) {
        if self.ids.pop().is_none() {
            return; // unbalanced guard after a mid-span reset; ignore
        }
        let depth = self.ids.len();
        self.slot.write(|s| s.depth.store(depth.min(MAX_DEPTH) as u64, Relaxed));
    }

    fn set_query(&self, query: Option<u64>) {
        let encoded = query.map_or(0, |q| q.wrapping_add(1));
        self.slot.write(|s| s.query.store(encoded, Relaxed));
    }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for Publisher {
    fn drop(&mut self) {
        let mut slots = registry().lock().unwrap_or_else(|e| e.into_inner());
        slots.retain(|s| !Arc::ptr_eq(s, &self.slot));
        REGISTRY_GEN.fetch_add(1, Release);
    }
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static PUBLISHER: std::cell::RefCell<Publisher> = std::cell::RefCell::new(Publisher::new());
}

/// Publishes a span entry on the calling thread (called by
/// [`crate::span::enter`], whose `obs-off` variant compiles the call
/// away). `try_with` so late spans during thread teardown degrade to a
/// no-op instead of panicking.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn on_span_enter(name: &'static str) {
    let _ = PUBLISHER.try_with(|p| p.borrow_mut().push(name));
}

/// Publishes a span exit on the calling thread.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn on_span_exit() {
    let _ = PUBLISHER.try_with(|p| p.borrow_mut().pop());
}

/// Marks the calling thread as serving `query_id` until the returned
/// guard drops; samples taken meanwhile attribute to that query.
/// Scopes do not nest (the innermost wins and the guard clears).
#[must_use = "the query scope clears when its guard drops"]
pub fn query_scope(query_id: u64) -> QueryScope {
    #[cfg(not(feature = "obs-off"))]
    let _ = PUBLISHER.try_with(|p| p.borrow().set_query(Some(query_id)));
    #[cfg(feature = "obs-off")]
    let _ = query_id;
    QueryScope { _private: () }
}

/// Guard returned by [`query_scope`]; clears the thread's active query
/// id on drop.
#[derive(Debug)]
pub struct QueryScope {
    _private: (),
}

impl Drop for QueryScope {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        let _ = PUBLISHER.try_with(|p| p.borrow().set_query(None));
    }
}

// ---------------------------------------------------------------------------
// The sampler

/// What the sampler thread hands back on stop.
#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct RawProfile {
    ticks: u64,
    samples: u64,
    counts: HashMap<Vec<u32>, u64>,
    query: HashMap<u64, u64>,
}

/// A running sampling profiler: one background thread snapshotting
/// every registered span stack on a fixed interval. Construct with
/// [`Profiler::start`] / [`Profiler::start_hz`], finish with
/// [`Profiler::stop`]. Under `obs-off` no thread is spawned and the
/// report is empty.
#[derive(Debug)]
pub struct Profiler {
    interval_ns: u64,
    #[cfg(not(feature = "obs-off"))]
    stop: Arc<AtomicBool>,
    #[cfg(not(feature = "obs-off"))]
    handle: Option<std::thread::JoinHandle<RawProfile>>,
}

impl Profiler {
    /// Starts sampling on the default prime interval
    /// ([`default_interval_ns`]: ~1 kHz, or ~200 Hz on a single-core
    /// host where every wake preempts the workload).
    pub fn start() -> Profiler {
        Self::start_interval(default_interval_ns())
    }

    /// Starts sampling at roughly `hz` samples per second (clamped to
    /// [1, 10_000]).
    pub fn start_hz(hz: u32) -> Profiler {
        Self::start_interval(hz_interval_ns(hz))
    }

    /// Starts sampling every `interval_ns` nanoseconds (min 100 µs: the
    /// sampler must never become the workload).
    pub fn start_interval(interval_ns: u64) -> Profiler {
        let interval_ns = interval_ns.max(100_000);
        #[cfg(not(feature = "obs-off"))]
        {
            let stop = Arc::new(AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("rc-profiler".into())
                .spawn(move || sample_loop(&stop_flag, interval_ns))
                .ok();
            Profiler { interval_ns, stop, handle }
        }
        #[cfg(feature = "obs-off")]
        Profiler { interval_ns }
    }

    /// The sampling interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Stops the sampler thread and folds its observations into a
    /// [`ProfileReport`].
    pub fn stop(self) -> ProfileReport {
        #[cfg(not(feature = "obs-off"))]
        {
            self.stop.store(true, Release);
            let raw = match self.handle {
                Some(handle) => handle.join().unwrap_or_default(),
                None => RawProfile::default(),
            };
            let mut folded = BTreeMap::new();
            for (ids, count) in &raw.counts {
                *folded.entry(resolve(ids).join(";")).or_insert(0) += count;
            }
            ProfileReport {
                interval_ns: self.interval_ns,
                ticks: raw.ticks,
                samples: raw.samples,
                folded,
                query_samples: raw.query.into_iter().collect(),
            }
        }
        #[cfg(feature = "obs-off")]
        ProfileReport {
            interval_ns: self.interval_ns,
            ticks: 0,
            samples: 0,
            folded: BTreeMap::new(),
            query_samples: BTreeMap::new(),
        }
    }
}

#[cfg(not(feature = "obs-off"))]
fn sample_loop(stop: &AtomicBool, interval_ns: u64) -> RawProfile {
    let mut raw = RawProfile::default();
    let interval = std::time::Duration::from_nanos(interval_ns);
    // The tick is kept allocation-free in steady state: on a single-core
    // host every sampler wake preempts the workload, so each byte this
    // loop touches is workload cache evicted. The registry clone
    // refreshes only when the generation counter says membership moved,
    // the frame buffer is reused across ticks, and the count lookup
    // borrows the buffer (owned keys are built only for never-seen
    // stacks).
    let mut slots: Vec<Arc<ThreadSlot>> = Vec::new();
    let mut seen_gen = u64::MAX;
    let mut ids: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
    while !stop.load(Acquire) {
        std::thread::sleep(interval);
        raw.ticks += 1;
        let gen = REGISTRY_GEN.load(Acquire);
        if gen != seen_gen {
            // Snapshot the registry under a brief lock (a handful of
            // Arcs), then read every slot lock-free. A slot whose thread
            // exits between refreshes stays alive through our Arc clone
            // and simply publishes an empty stack.
            slots.clone_from(&registry().lock().unwrap_or_else(|e| e.into_inner()));
            seen_gen = gen;
        }
        for slot in &slots {
            let Some(query) = slot.read_into(&mut ids) else { continue };
            if ids.is_empty() {
                continue; // idle thread: no open span, nothing to attribute
            }
            raw.samples += 1;
            match raw.counts.get_mut(ids.as_slice()) {
                Some(count) => *count += 1,
                None => {
                    raw.counts.insert(ids.clone(), 1);
                }
            }
            if let Some(q) = query {
                *raw.query.entry(q).or_insert(0) += 1;
            }
        }
    }
    raw
}

// ---------------------------------------------------------------------------
// The report

/// Accumulated profile of one sampling run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Sampling interval in nanoseconds.
    pub interval_ns: u64,
    /// Sampler wakeups (every interval, whether or not anything ran).
    pub ticks: u64,
    /// Stack samples collected (one per registered non-idle thread per
    /// tick).
    pub samples: u64,
    /// Collapsed stacks: `"root;child;leaf"` → sample count.
    pub folded: BTreeMap<String, u64>,
    /// Samples attributed to each active query id.
    pub query_samples: BTreeMap<u64, u64>,
}

impl ProfileReport {
    /// Folds another report into this one (summed ticks, samples, stack
    /// and query counts). Harnesses that interleave profiled and
    /// unprofiled phases stop the profiler around each phase and merge
    /// the pieces into one report; the interval is taken from whichever
    /// report has one (0 = unset).
    pub fn merge(&mut self, other: &ProfileReport) {
        if self.interval_ns == 0 {
            self.interval_ns = other.interval_ns;
        }
        self.ticks += other.ticks;
        self.samples += other.samples;
        for (stack, count) in &other.folded {
            *self.folded.entry(stack.clone()).or_insert(0) += count;
        }
        for (&query, &count) in &other.query_samples {
            *self.query_samples.entry(query).or_insert(0) += count;
        }
    }

    /// Renders the collapsed stacks in Brendan Gregg's folded format:
    /// one `frame;frame;frame count` line per distinct stack, sorted,
    /// trailing newline (empty string when no samples landed).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Estimated CPU per query id in microseconds: sample count ×
    /// sampling interval. An estimate by construction — wall-clock
    /// samples of the serving thread, not scheduler-reported CPU time.
    pub fn query_cpu_us(&self) -> BTreeMap<u64, u64> {
        self.query_samples
            .iter()
            .map(|(&q, &n)| (q, n * self.interval_ns / 1_000))
            .collect()
    }

    /// The `n` spans with the most **self** samples (samples where the
    /// span was the innermost frame), as `(name, fraction of all
    /// samples)`, largest first.
    pub fn top_self(&self, n: usize) -> Vec<(String, f64)> {
        let mut by_leaf: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, count) in &self.folded {
            let leaf = stack.rsplit(';').next().unwrap_or(stack);
            *by_leaf.entry(leaf).or_insert(0) += count;
        }
        let mut rows: Vec<(String, f64)> = by_leaf
            .into_iter()
            .map(|(name, count)| (name.to_string(), count as f64 / self.samples.max(1) as f64))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }
}

// ---------------------------------------------------------------------------
// Folded-format validator

/// Structurally validates folded collapsed-stack output (the round-trip
/// check `rc profile` and `rc regress` run on everything they write):
/// every line is `frame(;frame)* count`, frames are non-empty and
/// semicolon-free, counts are positive integers, stacks are unique and
/// sorted. Returns the total sample count.
pub fn validate_folded(text: &str) -> Result<u64, String> {
    let mut total = 0u64;
    let mut previous: Option<&str> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            return Err(format!("line {n}: empty line"));
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: missing ' count' separator"));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {n}: count {count:?} is not an integer"))?;
        if count == 0 {
            return Err(format!("line {n}: zero sample count"));
        }
        if stack.is_empty() {
            return Err(format!("line {n}: empty stack"));
        }
        if stack.split(';').any(str::is_empty) {
            return Err(format!("line {n}: empty frame in {stack:?}"));
        }
        if stack.contains(' ') {
            return Err(format!("line {n}: frame contains a space: {stack:?}"));
        }
        if let Some(prev) = previous {
            if stack <= prev {
                return Err(format!(
                    "line {n}: stacks not strictly sorted ({prev:?} then {stack:?})"
                ));
            }
        }
        previous = Some(stack);
        total += count;
    }
    Ok(total)
}

// ---------------------------------------------------------------------------
// Flamegraph SVG

/// Canvas width of the generated flamegraph, CSS pixels.
const SVG_WIDTH: f64 = 1200.0;
/// Height of one frame row.
const FRAME_H: f64 = 17.0;
/// Outer margin (title above, axis below).
const MARGIN: f64 = 10.0;
/// Vertical space reserved for the title line.
const TITLE_H: f64 = 24.0;
/// Frames narrower than this render without a text label.
const MIN_LABEL_W: f64 = 35.0;

/// One merged flamegraph tree node.
#[derive(Default)]
struct FlameNode {
    value: u64,
    children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    fn insert(&mut self, frames: &[&str], count: u64) {
        self.value += count;
        if let Some((head, rest)) = frames.split_first() {
            self.children.entry((*head).to_string()).or_default().insert(rest, count);
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(FlameNode::depth).max().unwrap_or(0)
    }
}

fn svg_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Deterministic warm-palette fill from the frame name (djb2 hash).
fn frame_color(name: &str) -> String {
    let mut h: u32 = 5381;
    for b in name.bytes() {
        h = h.wrapping_mul(33) ^ u32::from(b);
    }
    let r = 205 + (h % 50);
    let g = (h / 50) % 180;
    let b = (h / 9000) % 55;
    format!("rgb({r},{g},{b})")
}

/// Renders a collapsed-stack map (as in [`ProfileReport::folded`]) as a
/// self-contained flamegraph SVG: an implicit `all` root, one
/// `<g><title/><rect/><text/></g>` per frame, x-extent proportional to
/// inclusive samples, root row at the bottom. No scripts, no external
/// references — viewable anywhere, validated by
/// [`validate_flamegraph_svg`].
pub fn flamegraph_svg(folded: &BTreeMap<String, u64>) -> String {
    let mut root = FlameNode::default();
    for (stack, &count) in folded {
        let frames: Vec<&str> = stack.split(';').collect();
        root.insert(&frames, count);
    }
    let depth = root.depth(); // ≥ 1: the `all` row always renders
    let height = TITLE_H + depth as f64 * FRAME_H + 2.0 * MARGIN;
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" standalone=\"no\"?>\n");
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_WIDTH}\" \
         height=\"{height}\" viewBox=\"0 0 {SVG_WIDTH} {height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"15\">\
         rightcrowd flamegraph · {} samples</text>\n",
        SVG_WIDTH / 2.0,
        MARGIN + 14.0,
        root.value,
    ));
    let usable = SVG_WIDTH - 2.0 * MARGIN;
    let base_y = height - MARGIN - FRAME_H; // root row at the bottom
    emit_frame(&mut out, "all", &root, root.value.max(1), MARGIN, base_y, usable);
    out.push_str("</svg>\n");
    out
}

fn emit_frame(
    out: &mut String,
    name: &str,
    node: &FlameNode,
    total: u64,
    x: f64,
    y: f64,
    width: f64,
) {
    let pct = node.value as f64 * 100.0 / total as f64;
    let label = svg_escape(name);
    out.push_str(&format!(
        "<g><title>{label} ({} samples, {pct:.2}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" height=\"{FRAME_H}\" \
         fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"/>",
        node.value,
        frame_color(name),
    ));
    if width >= MIN_LABEL_W {
        // Clip the label to what plausibly fits (~6.6 px per glyph).
        let fit = ((width - 6.0) / 6.6) as usize;
        let shown: String = if name.chars().count() <= fit {
            name.to_string()
        } else {
            name.chars().take(fit.saturating_sub(2)).chain("..".chars()).collect()
        };
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
            x + 3.0,
            y + FRAME_H - 4.5,
            svg_escape(&shown),
        ));
    }
    out.push_str("</g>\n");
    let mut child_x = x;
    for (child_name, child) in &node.children {
        let child_w = width * child.value as f64 / node.value.max(1) as f64;
        emit_frame(out, child_name, child, total, child_x, y - FRAME_H, child_w);
        child_x += child_w;
    }
}

/// Structurally validates a flamegraph SVG produced by
/// [`flamegraph_svg`]: XML declaration, one root `<svg>` with numeric
/// dimensions, every frame a `<g>` holding exactly one `<title>` and
/// one `<rect>` whose coordinates parse and stay inside the canvas,
/// balanced tags throughout. Returns the number of frame rects.
pub fn validate_flamegraph_svg(text: &str) -> Result<usize, String> {
    if !text.starts_with("<?xml") {
        return Err("missing XML declaration".into());
    }
    let svg_open = text.find("<svg ").ok_or("missing <svg> root")?;
    if !text.trim_end().ends_with("</svg>") {
        return Err("missing </svg> terminator".into());
    }
    let attr = |name: &str| -> Result<f64, String> {
        let tag = &text[svg_open..text[svg_open..].find('>').map_or(text.len(), |e| svg_open + e)];
        let needle = format!("{name}=\"");
        let start = tag.find(&needle).ok_or(format!("svg missing {name}"))? + needle.len();
        let rest = &tag[start..];
        let end = rest.find('"').ok_or(format!("unterminated {name}"))?;
        rest[..end].parse::<f64>().map_err(|_| format!("{name} is not numeric"))
    };
    let (canvas_w, canvas_h) = (attr("width")?, attr("height")?);
    if !(canvas_w.is_finite() && canvas_h.is_finite() && canvas_w > 0.0 && canvas_h > 0.0) {
        return Err("degenerate canvas dimensions".into());
    }

    let count_of = |needle: &str| text.matches(needle).count();
    let groups = count_of("<g>");
    if groups != count_of("</g>") {
        return Err("unbalanced <g> tags".into());
    }
    let rects = count_of("<rect ");
    let titles = count_of("<title>");
    if rects != groups || titles != groups {
        return Err(format!(
            "every frame needs one <g>, <title> and <rect>: {groups} groups, \
             {titles} titles, {rects} rects"
        ));
    }
    if titles != count_of("</title>") {
        return Err("unbalanced <title> tags".into());
    }
    if rects == 0 {
        return Err("no frame rects (not a flamegraph)".into());
    }

    // Every rect's geometry parses and stays inside the canvas.
    let num_attr = |tag: &str, name: &str| -> Result<f64, String> {
        let needle = format!("{name}=\"");
        let start = tag.find(&needle).ok_or(format!("rect missing {name}"))? + needle.len();
        let rest = &tag[start..];
        let end = rest.find('"').ok_or(format!("unterminated rect {name}"))?;
        rest[..end].parse::<f64>().map_err(|_| format!("rect {name} is not numeric"))
    };
    for (i, chunk) in text.split("<rect ").skip(1).enumerate() {
        let tag = &chunk[..chunk.find("/>").ok_or(format!("rect {i}: unterminated"))?];
        let x = num_attr(tag, "x")?;
        let y = num_attr(tag, "y")?;
        let w = num_attr(tag, "width")?;
        let h = num_attr(tag, "height")?;
        if !(x.is_finite() && y.is_finite() && w.is_finite() && h.is_finite()) {
            return Err(format!("rect {i}: non-finite geometry"));
        }
        if x < -0.01 || y < -0.01 || w < 0.0 || h <= 0.0 {
            return Err(format!("rect {i}: negative geometry (x {x}, y {y}, w {w}, h {h})"));
        }
        if x + w > canvas_w + 0.5 || y + h > canvas_h + 0.5 {
            return Err(format!("rect {i}: escapes the canvas (x {x} + w {w}, y {y} + h {h})"));
        }
    }
    Ok(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded_fixture() -> BTreeMap<String, u64> {
        BTreeMap::from([
            ("eval.run_workload;index.score_top_k".to_string(), 60),
            ("eval.run_workload;analyze.query".to_string(), 25),
            ("eval.run_workload".to_string(), 10),
            ("corpus.build".to_string(), 5),
        ])
    }

    #[test]
    fn folded_output_round_trips_through_the_validator() {
        let report = ProfileReport {
            interval_ns: DEFAULT_INTERVAL_NS,
            ticks: 100,
            samples: 100,
            folded: folded_fixture(),
            query_samples: BTreeMap::from([(3, 40), (7, 20)]),
        };
        let text = report.to_folded();
        assert_eq!(validate_folded(&text), Ok(100));
        assert!(text.contains("eval.run_workload;index.score_top_k 60\n"));
        // CPU attribution: samples × interval, in µs.
        let cpu = report.query_cpu_us();
        assert_eq!(cpu[&3], 40 * DEFAULT_INTERVAL_NS / 1_000);
        assert_eq!(cpu[&7], 20 * DEFAULT_INTERVAL_NS / 1_000);
        // Self-time ranking: the leaf with the most samples wins.
        let top = report.top_self(2);
        assert_eq!(top[0].0, "index.score_top_k");
        assert!((top[0].1 - 0.6).abs() < 1e-12);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn folded_validator_rejects_malformed_lines() {
        assert!(validate_folded("no_count\n").is_err());
        assert!(validate_folded("a;b zero\n").is_err());
        assert!(validate_folded("a;b 0\n").is_err());
        assert!(validate_folded("a;;b 3\n").is_err());
        assert!(validate_folded("b 1\na 1\n").is_err(), "unsorted stacks rejected");
        assert!(validate_folded("a 1\na 2\n").is_err(), "duplicate stacks rejected");
        assert_eq!(validate_folded(""), Ok(0));
        assert_eq!(validate_folded("a 1\nb 2\n"), Ok(3));
    }

    #[test]
    fn flamegraph_svg_passes_its_own_validator() {
        let svg = flamegraph_svg(&folded_fixture());
        // all + corpus.build + eval.run_workload + 2 leaves = 5 frames.
        assert_eq!(validate_flamegraph_svg(&svg), Ok(5));
        assert!(svg.contains("rightcrowd flamegraph · 100 samples"));
        assert!(svg.contains("index.score_top_k"));
        // The empty profile still renders a valid single-frame graph.
        let empty = flamegraph_svg(&BTreeMap::new());
        assert_eq!(validate_flamegraph_svg(&empty), Ok(1));
    }

    #[test]
    fn svg_validator_rejects_structural_damage() {
        let svg = flamegraph_svg(&folded_fixture());
        assert!(validate_flamegraph_svg(&svg.replace("<?xml", "<!xml")).is_err());
        assert!(validate_flamegraph_svg(svg.trim_end_matches("</svg>\n")).is_err());
        assert!(validate_flamegraph_svg(&svg.replacen("<title>", "<title>x</title><title>", 1))
            .is_err());
        // Shrinking the canvas makes every frame rect escape it.
        let shrunk = svg.replacen("width=\"1200\"", "width=\"100\"", 1);
        assert_ne!(shrunk, svg, "canvas width attribute present");
        assert!(validate_flamegraph_svg(&shrunk).is_err(), "rect escaping canvas rejected");
    }

    #[test]
    fn threads_publish_stacks_the_sampler_can_fold() {
        let profiler = Profiler::start_interval(200_000);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let worker_stop = std::sync::Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            while !worker_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _outer = crate::span!("prof_test_outer");
                let _q = query_scope(41);
                let _inner = crate::span!("prof_test_inner");
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(60));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        worker.join().expect("worker");
        let report = profiler.stop();
        if !crate::PROBES_ENABLED {
            assert_eq!(report.samples, 0);
            return;
        }
        assert!(report.ticks > 0);
        assert!(report.samples > 0, "sampler saw the worker: {report:?}");
        assert!(
            report.folded.keys().any(|s| s.contains("prof_test_outer")),
            "folded stacks carry the live spans: {:?}",
            report.folded
        );
        assert!(
            report.folded.keys().any(|s| s == "prof_test_outer;prof_test_inner"),
            "nesting preserved root-first: {:?}",
            report.folded
        );
        assert!(report.query_samples.contains_key(&41), "query attribution: {report:?}");
        assert_eq!(validate_folded(&report.to_folded()), Ok(report.samples));
        let svg = flamegraph_svg(&report.folded);
        assert!(validate_flamegraph_svg(&svg).is_ok());
    }

    #[test]
    fn exited_threads_reclaim_their_registry_slot() {
        let profiler = Profiler::start_interval(150_000);
        #[cfg(not(feature = "obs-off"))]
        let slot = std::thread::spawn(|| {
            let _s = crate::span!("prof_test_transient");
            std::thread::sleep(std::time::Duration::from_millis(20));
            PUBLISHER.with(|p| Arc::clone(&p.borrow().slot))
        })
        .join()
        .expect("transient thread");
        #[cfg(feature = "obs-off")]
        std::thread::spawn(|| {
            let _s = crate::span!("prof_test_transient");
        })
        .join()
        .expect("transient thread");
        #[cfg(not(feature = "obs-off"))]
        {
            // The thread-local destructor unregistered the slot: the
            // registry no longer holds it (no future samples, slot
            // reclaimed) and our clone is the only Arc left (nothing for
            // the sampler to dangle on).
            let registry = registry().lock().unwrap_or_else(|e| e.into_inner());
            assert!(registry.iter().all(|s| !Arc::ptr_eq(s, &slot)), "slot still registered");
            drop(registry);
            // The sampler may still hold its per-tick clone for a few
            // microseconds — that clone (not a raw pointer) is exactly
            // what makes the mid-read exit safe. Wait it out.
            for _ in 0..200 {
                if Arc::strong_count(&slot) == 1 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(Arc::strong_count(&slot), 1, "registry released its reference");
        }
        // …and the sampler keeps running against the shrunk registry.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let report = profiler.stop();
        if crate::PROBES_ENABLED {
            assert!(report.ticks > 0, "sampler survived the unregister");
        } else {
            assert_eq!(registered_threads(), 0);
        }
    }

    #[test]
    fn deep_stacks_truncate_to_the_outermost_frames() {
        #[cfg(not(feature = "obs-off"))]
        {
            let mut publisher = Publisher::new();
            for _ in 0..MAX_DEPTH + 8 {
                publisher.push("prof_test_deep");
            }
            let (ids, _) = publisher.slot.read().expect("stable read");
            assert_eq!(ids.len(), MAX_DEPTH, "published depth capped");
            for _ in 0..9 {
                publisher.pop();
            }
            let (ids, _) = publisher.slot.read().expect("stable read");
            assert_eq!(ids.len(), MAX_DEPTH - 1, "depth recovers after pops");
            // Popping past empty is ignored, like the span collector.
            for _ in 0..MAX_DEPTH * 2 {
                publisher.pop();
            }
            let (ids, _) = publisher.slot.read().expect("stable read");
            assert!(ids.is_empty());
        }
    }
}
