//! The registry snapshot: freezes counters, histograms and spans into one
//! serialisable [`MetricsSnapshot`].
//!
//! The JSON writer is hand-rolled (objects, strings, integers and fixed
//! 3-decimal floats only) to keep the workspace free of serialisation
//! dependencies; `BENCH_<scale>.json` embeds the snapshot verbatim as its
//! `metrics` member.

use crate::counter::{self, CounterId};
use crate::hist::{self, HistId, HistogramSummary};
use crate::span::{self, SpanStat};

/// A frozen view of the whole metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, [`CounterId::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, summary)` for every histogram, [`HistId::ALL`] order.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
    /// `(path, stat)` for every recorded span, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
}

/// Freezes the registry. Flushes the calling thread's pending spans
/// first; spans still open on *other* live threads are not included until
/// those threads exit or flush.
pub fn snapshot() -> MetricsSnapshot {
    span::flush_thread();
    MetricsSnapshot {
        counters: CounterId::ALL.iter().map(|&c| (c.name(), counter::get(c))).collect(),
        histograms: HistId::ALL.iter().map(|&h| (h.name(), hist::summarize(h))).collect(),
        spans: span::spans_snapshot(),
    }
}

/// Clears every counter, histogram and span (e.g. between measurement
/// phases of a benchmark).
pub fn reset() {
    counter::reset_counters();
    hist::reset_hists();
    span::reset_spans();
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => " ".chars().collect(),
            c => vec![c],
        })
        .collect()
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

impl MetricsSnapshot {
    /// The value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .iter()
            .find(|(name, _)| *name == id.name())
            .map_or(0, |&(_, v)| v)
    }

    /// The stat recorded under a span path, if any.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }

    /// The snapshot as a pretty-printed JSON object, each line prefixed
    /// with `indent` spaces (the opening brace is not indented, so the
    /// result drops into a parent object after a key).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");

        out.push_str(&format!("{pad}  \"counters\": {{\n"));
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("{pad}    \"{name}\": {value}{comma}\n"));
        }
        out.push_str(&format!("{pad}  }},\n"));

        out.push_str(&format!("{pad}  \"histograms\": {{\n"));
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() { "," } else { "" };
            out.push_str(&format!(
                "{pad}    \"{name}\": {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{comma}\n",
                s.count,
                fmt_f64(s.mean_us),
                fmt_f64(s.p50_us),
                fmt_f64(s.p90_us),
                fmt_f64(s.p99_us),
                fmt_f64(s.max_us),
            ));
        }
        out.push_str(&format!("{pad}  }},\n"));

        out.push_str(&format!("{pad}  \"spans\": {{\n"));
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "{pad}    \"{}\": {{\"calls\": {}, \"total_ms\": {}, \"self_ms\": {}}}{comma}\n",
                json_escape(path),
                stat.calls,
                fmt_f64(stat.total_ns as f64 / 1e6),
                fmt_f64(stat.self_ns() as f64 / 1e6),
            ));
        }
        out.push_str(&format!("{pad}  }}\n"));

        out.push_str(&format!("{pad}}}"));
        out
    }

    /// Human-readable tables: counters (plus the process gauges),
    /// histograms, then the span tree — the body of `rc metrics`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<28} {value:>14}\n"));
        }
        // Process-level peak RSS (VmHWM): previously only in `rc expose`
        // and the bench JSON, surfaced here so `rc metrics` answers the
        // memory question too.
        if let Some(rss) = crate::export::rss_peak_bytes() {
            out.push_str(&format!("  {:<28} {rss:>14}\n", "rss_peak_bytes"));
        }
        out.push_str("\n== histograms (µs) ==\n");
        out.push_str(&format!(
            "  {:<28} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, s) in &self.histograms {
            out.push_str(&format!(
                "  {:<28} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                name, s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
            ));
        }
        out.push_str("\n== spans ==\n");
        out.push_str(&span::render_tree(&self.spans));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_full_taxonomy() {
        let snap = snapshot();
        assert_eq!(snap.counters.len(), CounterId::ALL.len());
        assert_eq!(snap.histograms.len(), HistId::ALL.len());
        assert_eq!(snap.counters[0].0, "postings_traversed");
    }

    #[test]
    fn json_is_nested_and_complete() {
        let snap = MetricsSnapshot {
            counters: vec![("postings_traversed", 42), ("maxscore_pruned", 7)],
            histograms: vec![(
                "query_latency",
                HistogramSummary {
                    count: 3,
                    mean_us: 1.5,
                    p50_us: 1.0,
                    p90_us: 2.0,
                    p99_us: 2.0,
                    max_us: 2.0,
                },
            )],
            spans: vec![(
                "a/b".to_string(),
                SpanStat { calls: 2, total_ns: 3_000_000, child_ns: 1_000_000 },
            )],
        };
        let json = snap.to_json(2);
        assert!(json.contains("\"postings_traversed\": 42"));
        assert!(json.contains("\"maxscore_pruned\": 7"));
        assert!(json.contains("\"query_latency\": {\"count\": 3"));
        assert!(json.contains("\"a/b\": {\"calls\": 2, \"total_ms\": 3.000, \"self_ms\": 2.000}"));
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("  }"));
        // No trailing commas before closing braces.
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = MetricsSnapshot {
            counters: vec![("postings_traversed", 9)],
            histograms: vec![],
            spans: vec![("x".to_string(), SpanStat { calls: 1, total_ns: 10, child_ns: 0 })],
        };
        assert_eq!(snap.counter(CounterId::PostingsTraversed), 9);
        assert_eq!(snap.counter(CounterId::MaxscorePruned), 0);
        assert_eq!(snap.span("x").unwrap().calls, 1);
        assert!(snap.span("y").is_none());
    }

    #[test]
    fn render_contains_all_sections() {
        let text = snapshot().render();
        assert!(text.contains("== counters =="));
        assert!(text.contains("== histograms"));
        assert!(text.contains("== spans =="));
        // The peak-RSS gauge rides the counters section wherever
        // /proc/self/status is readable (everywhere we run CI).
        if crate::export::rss_peak_bytes().is_some() {
            assert!(text.contains("rss_peak_bytes"));
        }
    }
}
