//! The fixed counter taxonomy: relaxed atomic event counters on a static
//! array, addressed by enum — no hashing, no locking, one `fetch_add` per
//! publish.
//!
//! Hot loops must not increment per element; they accumulate into a local
//! `u64` and [`add`] once per call (see `InvertedIndex::score_top_k` for
//! the pattern). With feature `obs-off` every operation is an empty
//! `#[inline]` function and reads return zero.

#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// One global event counter. Names are the JSON keys of the
/// `metrics.counters` section of `BENCH_<scale>.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Postings visited by any Eq. 1 scoring path (term + entity sides).
    PostingsTraversed,
    /// Documents admitted into the scoring accumulator by the MaxScore
    /// top-k path.
    MaxscoreAdmitted,
    /// First-appearance documents skipped by the MaxScore bound (their
    /// best achievable score could not reach the top k).
    MaxscorePruned,
    /// Compressed posting blocks owned by the lists the Block-Max top-k
    /// path walked (decoded + skipped for those lists sum to this).
    BlocksTotal,
    /// Compressed posting blocks actually decompressed by the Block-Max
    /// top-k path.
    BlocksDecoded,
    /// Compressed posting blocks skipped whole by their block-max upper
    /// bound, without decompression.
    BlocksSkipped,
    /// Compressed payload bytes decompressed by the Block-Max top-k path.
    PostingsBytesDecoded,
    /// Postings inside skipped blocks — never decoded, so never part of
    /// `postings_traversed` (they are counted under `maxscore_pruned`).
    PostingsSkipped,
    /// `AttributionCache` lookups served from the memoised table.
    AttributionCacheHits,
    /// `AttributionCache` lookups that computed a new evidence walk.
    AttributionCacheMisses,
    /// Expertise needs analysed into queries.
    QueriesAnalyzed,
    /// Documents pushed through the Fig. 4 analysis pipeline.
    DocsAnalyzed,
    /// Documents dropped by the language gate.
    DocsDroppedNonEnglish,
    /// Evidence documents attributed at distance 0 (own profiles).
    EvidenceDocsD0,
    /// Evidence documents attributed at distance 1 (direct resources).
    EvidenceDocsD1,
    /// Evidence documents attributed at distance 2 (container/friend
    /// resources).
    EvidenceDocsD2,
    /// Entity annotations produced by the TAGME-style annotator.
    EntitiesAnnotated,
    /// Normalised terms produced by the text processor.
    TermsProcessed,
    /// Gauge (written with [`set`]): traversal shapes currently resident
    /// in the `AttributionCache`.
    AttributionShapesResident,
    /// Bytes written by `store::save` (container header + sections).
    SnapshotBytesWritten,
    /// Bytes read and checksum-validated by `store::load` (whole
    /// container) and `store::load_sharded` (manifest only; shard files
    /// count under `ShardBytesRead`). Cumulative across *every* load in
    /// the process: a benchmark that loads the same snapshot `r` times
    /// reads `r ×` its size. Multi-phase measurements that want per-phase
    /// deltas instead of process totals snapshot and then call
    /// [`reset_counters`] between phases (as `rc bench` does between its
    /// store and query phases).
    SnapshotBytesRead,
    /// Shard files decoded + digest-verified by `store::load_sharded`.
    ShardsLoaded,
    /// Bytes read and digest-validated across all shard files by
    /// `store::load_sharded` (the manifest is counted under
    /// `SnapshotBytesRead`).
    ShardBytesRead,
    /// `mmap(2)` calls issued by the zero-copy snapshot opener (one per
    /// shard file mapped; re-opens of an already-resident file still
    /// count — the kernel shares the pages).
    MmapOpens,
    /// Shard/manifest opens whose validity sidecar matched (length,
    /// mtime and digest), skipping the streamed checksum pass.
    SidecarHits,
    /// Opens that had to fall back to the full streamed verification
    /// because the sidecar was absent, stale, or malformed.
    SidecarMisses,
    /// Bytes of shard payload placed behind live memory mappings (file
    /// sizes at `mmap` time; cumulative like the byte counters above).
    MappedBytes,
}

impl CounterId {
    /// Every counter, in rendering order.
    pub const ALL: [CounterId; 27] = [
        CounterId::PostingsTraversed,
        CounterId::MaxscoreAdmitted,
        CounterId::MaxscorePruned,
        CounterId::BlocksTotal,
        CounterId::BlocksDecoded,
        CounterId::BlocksSkipped,
        CounterId::PostingsBytesDecoded,
        CounterId::PostingsSkipped,
        CounterId::AttributionCacheHits,
        CounterId::AttributionCacheMisses,
        CounterId::QueriesAnalyzed,
        CounterId::DocsAnalyzed,
        CounterId::DocsDroppedNonEnglish,
        CounterId::EvidenceDocsD0,
        CounterId::EvidenceDocsD1,
        CounterId::EvidenceDocsD2,
        CounterId::EntitiesAnnotated,
        CounterId::TermsProcessed,
        CounterId::AttributionShapesResident,
        CounterId::SnapshotBytesWritten,
        CounterId::SnapshotBytesRead,
        CounterId::ShardsLoaded,
        CounterId::ShardBytesRead,
        CounterId::MmapOpens,
        CounterId::SidecarHits,
        CounterId::SidecarMisses,
        CounterId::MappedBytes,
    ];

    /// `true` for level-style counters written with [`set`] (rendered as
    /// OpenMetrics gauges rather than `_total` counters, and excluded
    /// from per-interval delta semantics in `obs::timeseries`).
    pub const fn is_gauge(self) -> bool {
        matches!(self, CounterId::AttributionShapesResident)
    }

    /// The counter's snake_case name (JSON key and table label).
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::PostingsTraversed => "postings_traversed",
            CounterId::MaxscoreAdmitted => "maxscore_admitted",
            CounterId::MaxscorePruned => "maxscore_pruned",
            CounterId::BlocksTotal => "blocks_total",
            CounterId::BlocksDecoded => "blocks_decoded",
            CounterId::BlocksSkipped => "blocks_skipped",
            CounterId::PostingsBytesDecoded => "postings_bytes_decoded",
            CounterId::PostingsSkipped => "postings_skipped",
            CounterId::AttributionCacheHits => "attribution_cache_hits",
            CounterId::AttributionCacheMisses => "attribution_cache_misses",
            CounterId::QueriesAnalyzed => "queries_analyzed",
            CounterId::DocsAnalyzed => "docs_analyzed",
            CounterId::DocsDroppedNonEnglish => "docs_dropped_non_english",
            CounterId::EvidenceDocsD0 => "evidence_docs_d0",
            CounterId::EvidenceDocsD1 => "evidence_docs_d1",
            CounterId::EvidenceDocsD2 => "evidence_docs_d2",
            CounterId::EntitiesAnnotated => "entities_annotated",
            CounterId::TermsProcessed => "terms_processed",
            CounterId::AttributionShapesResident => "attribution_shapes_resident",
            CounterId::SnapshotBytesWritten => "snapshot_bytes_written",
            CounterId::SnapshotBytesRead => "snapshot_bytes_read",
            CounterId::ShardsLoaded => "shards_loaded",
            CounterId::ShardBytesRead => "shard_bytes_read",
            CounterId::MmapOpens => "mmap_opens",
            CounterId::SidecarHits => "sidecar_hits",
            CounterId::SidecarMisses => "sidecar_misses",
            CounterId::MappedBytes => "mapped_bytes",
        }
    }
}

// A const item is the MSRV-compatible way to repeat a non-Copy zero into
// a static array; each repetition is a fresh atomic, not a shared one.
#[cfg(not(feature = "obs-off"))]
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[cfg(not(feature = "obs-off"))]
static COUNTERS: [AtomicU64; CounterId::ALL.len()] = [ZERO; CounterId::ALL.len()];

/// Adds `n` to a counter (relaxed; a no-op under `obs-off`).
#[inline]
pub fn add(id: CounterId, n: u64) {
    #[cfg(not(feature = "obs-off"))]
    COUNTERS[id as usize].fetch_add(n, Relaxed);
    #[cfg(feature = "obs-off")]
    let _ = (id, n);
}

/// Stores an absolute value into a counter, turning it into a gauge
/// (relaxed; a no-op under `obs-off`). Used for resident-size metrics
/// where the latest level, not an event total, is the fact of interest.
#[inline]
pub fn set(id: CounterId, value: u64) {
    #[cfg(not(feature = "obs-off"))]
    COUNTERS[id as usize].store(value, Relaxed);
    #[cfg(feature = "obs-off")]
    let _ = (id, value);
}

/// The current value of a counter (zero under `obs-off`).
#[inline]
pub fn get(id: CounterId) -> u64 {
    #[cfg(not(feature = "obs-off"))]
    return COUNTERS[id as usize].load(Relaxed);
    #[cfg(feature = "obs-off")]
    {
        let _ = id;
        0
    }
}

/// Resets every counter to zero.
pub fn reset_counters() {
    #[cfg(not(feature = "obs-off"))]
    for c in &COUNTERS {
        c.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global, so tests only make monotonic
    // (delta-based) assertions that stay valid under parallel execution.
    #[test]
    fn add_accumulates_relaxed() {
        let before = get(CounterId::TermsProcessed);
        add(CounterId::TermsProcessed, 5);
        add(CounterId::TermsProcessed, 2);
        let after = get(CounterId::TermsProcessed);
        if cfg!(feature = "obs-off") {
            assert_eq!(after, 0);
        } else {
            assert!(after >= before + 7, "{before} -> {after}");
        }
    }

    #[test]
    fn names_are_snake_case_and_unique() {
        let names: Vec<_> = CounterId::ALL.iter().map(|c| c.name()).collect();
        for name in &names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
