//! Prometheus/OpenMetrics text exposition — hand-rolled and
//! dependency-free like the JSON in `snapshot.rs`.
//!
//! [`openmetrics`] renders a metric set (counters, gauges, histograms,
//! `build_info`) in the OpenMetrics text format: counters expose a
//! `_total` sample under a family declared without the suffix,
//! histograms expose cumulative `_bucket{le="…"}` samples in **seconds**
//! plus `_sum`/`_count`, and the exposition terminates with `# EOF`.
//! [`openmetrics_live`] renders the global registry;
//! [`openmetrics_from_windows`] renders a saved time-series by folding
//! window deltas back into totals. [`validate_openmetrics`] is the
//! round-trip parser CI uses to prove the output is well-formed.

use crate::counter::{self, CounterId};
use crate::hist::{self, bucket_upper_ns, HistId, PlainHistogram, BUCKETS};
use crate::timeseries::Window;

/// Metric-name prefix for every exposed family.
const PREFIX: &str = "rightcrowd_";

/// Identity of the running build, exposed as the classic `build_info`
/// gauge (value 1, identity in labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Git revision (short hash, possibly suffixed `-dirty`), or
    /// `"unknown"`.
    pub revision: String,
    /// Comma-separated active cargo features (e.g. `"obs-off"`), or
    /// `"default"`.
    pub features: String,
}

impl BuildInfo {
    /// A build-info record from explicit parts.
    pub fn new(revision: impl Into<String>, features: impl Into<String>) -> Self {
        let revision = revision.into();
        let features = features.into();
        BuildInfo {
            revision: if revision.is_empty() { "unknown".into() } else { revision },
            features: if features.is_empty() { "default".into() } else { features },
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when the file is absent.
pub fn rss_peak_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`); `None` off Linux or when the file is absent.
/// Unlike [`rss_peak_bytes`] this can go *down* — deltas across a
/// snapshot open show how much physical memory the open actually
/// touched (a mapped open faults pages in lazily, so its delta is
/// near zero until queries run).
pub fn rss_now_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

fn proc_status_bytes(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders an OpenMetrics exposition from explicit metric sets.
/// Counter and gauge names are bare (no prefix, no `_total`); histogram
/// values are nanosecond histograms exposed in seconds.
pub fn openmetrics(
    build: &BuildInfo,
    counters: &[(&str, u64)],
    gauges: &[(&str, u64)],
    hists: &[(&str, PlainHistogram)],
) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str(&format!("# TYPE {PREFIX}build_info gauge\n"));
    out.push_str(&format!(
        "# HELP {PREFIX}build_info Build identity of the exposing process.\n"
    ));
    out.push_str(&format!(
        "{PREFIX}build_info{{revision=\"{}\",features=\"{}\"}} 1\n",
        label_escape(&build.revision),
        label_escape(&build.features),
    ));

    for &(name, value) in counters {
        out.push_str(&format!("# TYPE {PREFIX}{name} counter\n"));
        out.push_str(&format!("{PREFIX}{name}_total {value}\n"));
    }

    for &(name, value) in gauges {
        out.push_str(&format!("# TYPE {PREFIX}{name} gauge\n"));
        out.push_str(&format!("{PREFIX}{name} {value}\n"));
    }

    for (name, h) in hists {
        out.push_str(&format!("# TYPE {PREFIX}{name}_seconds histogram\n"));
        let mut cumulative = 0u64;
        for (b, &n) in h.buckets.iter().enumerate() {
            cumulative += n;
            // Empty buckets are elided (the cumulative series stays
            // monotone); the last bucket's bound is the +Inf line below.
            if n == 0 || b >= BUCKETS - 1 {
                continue;
            }
            let le = bucket_upper_ns(b) as f64 / 1e9;
            out.push_str(&format!("{PREFIX}{name}_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{PREFIX}{name}_seconds_bucket{{le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!(
            "{PREFIX}{name}_seconds_sum {}\n",
            h.sum_ns as f64 / 1e9
        ));
        out.push_str(&format!("{PREFIX}{name}_seconds_count {}\n", h.count));
    }

    out.push_str("# EOF\n");
    out
}

/// Renders the **global registry** (every counter, gauge and histogram,
/// plus `rss_peak_bytes` when available) as an OpenMetrics exposition.
/// Under `obs-off` the families are present with zero values.
pub fn openmetrics_live(build: &BuildInfo) -> String {
    let mut counters: Vec<(&str, u64)> = Vec::new();
    let mut gauges: Vec<(&str, u64)> = Vec::new();
    for &id in &CounterId::ALL {
        let entry = (id.name(), counter::get(id));
        if id.is_gauge() {
            gauges.push(entry);
        } else {
            counters.push(entry);
        }
    }
    if let Some(rss) = rss_peak_bytes() {
        gauges.push(("rss_peak_bytes", rss));
    }
    let hists: Vec<(&str, PlainHistogram)> =
        HistId::ALL.iter().map(|&id| (id.name(), hist::freeze(id))).collect();
    openmetrics(build, &counters, &gauges, &hists)
}

/// Renders a saved time-series: folds every window's deltas back into
/// totals (gauges take the latest level) and exposes those.
pub fn openmetrics_from_windows(build: &BuildInfo, windows: &[Window]) -> String {
    let mut counters: Vec<(&str, u64)> = Vec::new();
    let mut gauges: Vec<(&str, u64)> = Vec::new();
    for &id in &CounterId::ALL {
        if id.is_gauge() {
            let level = windows.last().map(|w| w.counter(id)).unwrap_or(0);
            gauges.push((id.name(), level));
        } else {
            counters.push((id.name(), windows.iter().map(|w| w.counter(id)).sum()));
        }
    }
    if let Some(rss) = rss_peak_bytes() {
        gauges.push(("rss_peak_bytes", rss));
    }
    let hists: Vec<(&str, PlainHistogram)> = HistId::ALL
        .iter()
        .map(|&id| {
            let mut merged = PlainHistogram::new();
            for w in windows {
                merged.merge_from(w.hist(id));
            }
            (id.name(), merged)
        })
        .collect();
    openmetrics(build, &counters, &gauges, &hists)
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Round-trip validation of an OpenMetrics exposition: every sample
/// belongs to a declared family of the right type, histogram bucket
/// series are cumulative with ascending `le` bounds and a `+Inf` bucket
/// equal to `_count`, and the exposition terminates with `# EOF`.
/// Returns the number of sample lines on success.
pub fn validate_openmetrics(text: &str) -> Result<usize, String> {
    use std::collections::BTreeMap;

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut saw_eof = false;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                saw_eof = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (name, kind) = (parts.next(), parts.next());
                match (name, kind, parts.next()) {
                    (Some(name), Some(kind), None)
                        if matches!(kind, "counter" | "gauge" | "histogram") =>
                    {
                        if types.insert(name.to_string(), kind.to_string()).is_some() {
                            return Err(format!("line {n}: duplicate TYPE for {name}"));
                        }
                    }
                    _ => return Err(format!("line {n}: malformed TYPE line")),
                }
            } else if !rest.starts_with("HELP ") && !rest.starts_with("UNIT ") {
                return Err(format!("line {n}: unknown comment directive"));
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {n}: {e}"))?);
    }
    if !saw_eof {
        return Err("missing # EOF terminator".into());
    }

    // Every sample must belong to a declared family with matching suffix.
    for s in &samples {
        let family = family_of(&s.name, &types)
            .ok_or_else(|| format!("sample {} has no TYPE declaration", s.name))?;
        let kind = &types[&family];
        let suffix = &s.name[family.len()..];
        let ok = match kind.as_str() {
            "counter" => suffix == "_total",
            "gauge" => suffix.is_empty(),
            "histogram" => matches!(suffix, "_bucket" | "_sum" | "_count"),
            _ => false,
        };
        if !ok {
            return Err(format!("sample {} has suffix {suffix:?} invalid for {kind}", s.name));
        }
        if kind != "gauge" && suffix != "_sum" && s.value < 0.0 {
            return Err(format!("sample {} is negative", s.name));
        }
    }

    // Histogram series: ascending le, cumulative counts, +Inf == _count.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let mut buckets: Vec<(f64, f64)> = Vec::new(); // (le, cumulative)
        let mut inf: Option<f64> = None;
        let mut count: Option<f64> = None;
        let mut sum: Option<f64> = None;
        for s in samples.iter().filter(|s| s.name.starts_with(family.as_str())) {
            match &s.name[family.len()..] {
                "_bucket" => {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| format!("{family}_bucket without le label"))?;
                    if le == "+Inf" {
                        if inf.replace(s.value).is_some() {
                            return Err(format!("{family}: duplicate +Inf bucket"));
                        }
                    } else {
                        let bound: f64 = le
                            .parse()
                            .map_err(|_| format!("{family}: unparseable le {le:?}"))?;
                        buckets.push((bound, s.value));
                    }
                }
                "_count" => count = Some(s.value),
                "_sum" => sum = Some(s.value),
                _ => {}
            }
        }
        for pair in buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("{family}: le bounds not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("{family}: bucket counts not cumulative"));
            }
        }
        let inf = inf.ok_or_else(|| format!("{family}: missing +Inf bucket"))?;
        let count = count.ok_or_else(|| format!("{family}: missing _count"))?;
        if sum.is_none() {
            return Err(format!("{family}: missing _sum"));
        }
        if inf != count {
            return Err(format!("{family}: +Inf bucket {inf} != _count {count}"));
        }
        if let Some(&(_, last)) = buckets.last() {
            if last > inf {
                return Err(format!("{family}: finite bucket exceeds +Inf"));
            }
        }
    }

    Ok(samples.len())
}

/// The declared family a sample name belongs to: the longest declared
/// name that is a prefix of the sample name with a valid suffix.
fn family_of(
    sample: &str,
    types: &std::collections::BTreeMap<String, String>,
) -> Option<String> {
    for candidate in [
        sample,
        sample.strip_suffix("_total").unwrap_or(sample),
        sample.strip_suffix("_bucket").unwrap_or(sample),
        sample.strip_suffix("_sum").unwrap_or(sample),
        sample.strip_suffix("_count").unwrap_or(sample),
    ] {
        if types.contains_key(candidate) {
            return Some(candidate.to_string());
        }
    }
    None
}

/// Parses `name{label="value",…} number` (labels optional).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label set")?;
            (&line[..brace], (Some(&line[brace + 1..close]), &line[close + 1..]))
        }
        None => {
            let space = line.find(' ').ok_or("sample without value")?;
            (&line[..space], (None, &line[space..]))
        }
    };
    if name_part.is_empty()
        || !name_part
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name_part.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut labels = Vec::new();
    if let Some(body) = rest.0 {
        let mut cursor = body;
        while !cursor.is_empty() {
            let eq = cursor.find('=').ok_or("label without =")?;
            let key = cursor[..eq].trim().to_string();
            let after = &cursor[eq + 1..];
            if !after.starts_with('"') {
                return Err("unquoted label value".into());
            }
            // Find the closing quote, skipping escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in after[1..].char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i + 1);
                    break;
                }
            }
            let end = end.ok_or("unterminated label value")?;
            let raw = &after[1..end];
            let mut value = String::new();
            let mut esc = false;
            for c in raw.chars() {
                if esc {
                    value.push(match c {
                        'n' => '\n',
                        other => other,
                    });
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else {
                    value.push(c);
                }
            }
            labels.push((key, value));
            cursor = after[end + 1..].trim_start_matches(',');
        }
    }
    let value_str = rest.1.trim();
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("unparseable value {value_str:?}"))?;
    Ok(Sample { name: name_part.to_string(), labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_exposition() -> String {
        let mut h = PlainHistogram::new();
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record_ns(ns);
        }
        openmetrics(
            &BuildInfo::new("abc1234", "default"),
            &[("postings_traversed", 42), ("maxscore_pruned", 7)],
            &[("attribution_shapes_resident", 3), ("rss_peak_bytes", 1 << 20)],
            &[("query_latency", h)],
        )
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let text = sample_exposition();
        let n = validate_openmetrics(&text).expect("valid exposition");
        assert!(n >= 8, "{n} samples:\n{text}");
        assert!(text.contains("rightcrowd_postings_traversed_total 42\n"));
        assert!(text.contains("rightcrowd_rss_peak_bytes 1048576\n"));
        assert!(text.contains("le=\"+Inf\"} 4\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn live_registry_exposition_is_valid() {
        let text = openmetrics_live(&BuildInfo::new("", ""));
        validate_openmetrics(&text).expect("live exposition valid");
        assert!(text.contains("revision=\"unknown\""));
        assert!(text.contains("features=\"default\""));
        // Every counter family appears exactly once.
        for &id in &CounterId::ALL {
            assert!(text.contains(&format!("rightcrowd_{}", id.name())), "{}", id.name());
        }
    }

    #[test]
    fn window_series_exposition_is_valid_and_folds_deltas() {
        let mut w1 = Window::empty();
        w1.counters[0] = 10;
        w1.hists[0].record_ns(5_000);
        let mut w2 = Window::empty();
        w2.counters[0] = 32;
        w2.hists[0].record_ns(9_000);
        let text = openmetrics_from_windows(&BuildInfo::new("abc", "default"), &[w1, w2]);
        validate_openmetrics(&text).expect("series exposition valid");
        assert!(text.contains("rightcrowd_postings_traversed_total 42\n"), "{text}");
        assert!(text.contains("rightcrowd_query_latency_seconds_count 2\n"));
    }

    #[test]
    fn validator_rejects_tampering() {
        let good = sample_exposition();
        // Missing terminator.
        let truncated = good.replace("# EOF\n", "");
        assert!(validate_openmetrics(&truncated).is_err());
        // Undeclared family.
        let undeclared = good.replace("# EOF\n", "mystery_total 1\n# EOF\n");
        assert!(validate_openmetrics(&undeclared).is_err());
        // +Inf bucket disagreeing with _count.
        let broken = good.replace("le=\"+Inf\"} 4", "le=\"+Inf\"} 5");
        assert!(validate_openmetrics(&broken).is_err());
        // Non-cumulative bucket series.
        let text = "# TYPE rightcrowd_x_seconds histogram\n\
                    rightcrowd_x_seconds_bucket{le=\"0.1\"} 5\n\
                    rightcrowd_x_seconds_bucket{le=\"0.2\"} 3\n\
                    rightcrowd_x_seconds_bucket{le=\"+Inf\"} 5\n\
                    rightcrowd_x_seconds_sum 1\n\
                    rightcrowd_x_seconds_count 5\n# EOF\n";
        assert!(validate_openmetrics(text).is_err());
        // Counter sample without the _total suffix.
        let text = "# TYPE rightcrowd_y counter\nrightcrowd_y 5\n# EOF\n";
        assert!(validate_openmetrics(text).is_err());
        // Garbage value.
        let text = "# TYPE rightcrowd_z gauge\nrightcrowd_z banana\n# EOF\n";
        assert!(validate_openmetrics(text).is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        let text = openmetrics(
            &BuildInfo::new("a\"b\\c", "feat\nure"),
            &[],
            &[],
            &[],
        );
        validate_openmetrics(&text).expect("escaped labels stay valid");
        assert!(text.contains("revision=\"a\\\"b\\\\c\""));
    }

    #[test]
    fn rss_peak_is_available_on_linux() {
        let rss = rss_peak_bytes();
        if cfg!(target_os = "linux") {
            let bytes = rss.expect("VmHWM present on Linux");
            assert!(bytes > 1024 * 1024, "{bytes}");
        }
    }

    #[test]
    fn empty_histogram_still_exposes_a_valid_series() {
        let text = openmetrics(
            &BuildInfo::new("abc", "default"),
            &[],
            &[],
            &[("query_latency", PlainHistogram::new())],
        );
        validate_openmetrics(&text).expect("empty histogram valid");
        assert!(text.contains("le=\"+Inf\"} 0\n"));
    }
}
