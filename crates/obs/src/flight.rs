//! The query flight recorder: a bounded, non-blocking buffer of structured
//! per-query [`QueryRecord`]s for post-hoc debugging of individual
//! rankings ("what did that slow query do?").
//!
//! Retention policy: **always keep the slowest P% plus the last N** —
//! a ring of the most recent records (capacity [`RING_CAPACITY`] by
//! default, configurable via [`FlightRecorder::with_capacity`] or
//! [`set_flight_capacity`]), plus a separate bounded set of the slowest
//! records ([`SLOWEST_PERCENT`]% of the ring capacity) so a latency
//! outlier survives long after the ring has lapped it.
//!
//! The write path never blocks: the ring index is claimed with one
//! relaxed `fetch_add`, slot writes use `try_lock` (a contended slot
//! drops the record rather than waiting), and the slowest-set is guarded
//! by an atomic latency floor so the common case — a query faster than
//! the current slowest cohort — costs a single relaxed load. Recording is
//! off by default ([`set_flight_enabled`]); when disabled, or under
//! feature `obs-off`, every entry point is an empty inline function.

#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(not(feature = "obs-off"))]
use std::sync::Mutex;

/// Default number of most-recent records retained in the ring.
pub const RING_CAPACITY: usize = 256;

/// The slowest-cohort size, as a percentage of the ring capacity.
pub const SLOWEST_PERCENT: usize = 10;

/// One recorded query flight: identity, ranking configuration, latency,
/// traversal-counter deltas and the top of the ranking. Plain data only —
/// the obs crate stays dependency-free, so ids are raw integers and the
/// window is a pre-rendered label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryRecord {
    /// Caller-assigned query id (e.g. the `ExpertiseNeed` id).
    pub query_id: u64,
    /// Short human label (query text, possibly truncated).
    pub label: String,
    /// Domain label (`"Computer Engineering"`, …) or `""` when unknown.
    pub domain: String,
    /// Eq. 1 term/entity mix in effect.
    pub alpha: f64,
    /// Maximum evidence distance level (0, 1 or 2).
    pub max_distance: u8,
    /// Rendered Eq. 3 window config (`"top-100"`, `"frac-0.30"`, `"all"`).
    pub window: String,
    /// End-to-end query latency, nanoseconds.
    pub latency_ns: u64,
    /// Postings visited by this query's scoring traversals.
    pub postings_traversed: u64,
    /// Documents admitted by the MaxScore top-k path.
    pub maxscore_admitted: u64,
    /// Documents pruned by the MaxScore bound.
    pub maxscore_pruned: u64,
    /// `(person id, score)` head of the ranking, best first.
    pub top_candidates: Vec<(u32, f64)>,
    /// Estimated CPU microseconds the sampling profiler attributed to
    /// this query id (0 when no profiler ran). Folded in *after* the
    /// run by [`attribute_cpu`] — attribution covers every execution of
    /// the id within the profiled window, so repeated queries carry
    /// their aggregate cost.
    pub cpu_est_us: u64,
}

impl QueryRecord {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ns as f64 / 1e6
    }

    /// Estimated CPU in milliseconds (0 when no profiler ran).
    pub fn cpu_est_ms(&self) -> f64 {
        self.cpu_est_us as f64 / 1e3
    }
}

/// Aggregate view of the recorder, for `BENCH_<scale>.json` and
/// `rc flight` headers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightSummary {
    /// Records ever offered to the recorder since the last reset.
    pub recorded: u64,
    /// Records currently resident (ring plus slowest-only survivors).
    pub retained: usize,
    /// Mean latency over the resident ring, milliseconds.
    pub mean_ms: f64,
    /// Slowest latency ever retained, milliseconds.
    pub slowest_ms: f64,
    /// Label of the slowest retained query (`""` when empty).
    pub slowest_label: String,
}

/// An owned flight recorder instance. The process-global recorder used
/// by [`record`]/[`recent`]/… is one of these behind an `Arc`; harnesses
/// that want isolated retention (or a different ring size) construct
/// their own with [`FlightRecorder::with_capacity`]. Under `obs-off`
/// only the capacity bookkeeping remains; every operation is a no-op.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slowest_capacity: usize,
    /// Ring slots; index claimed lock-free, slot body `try_lock`ed.
    #[cfg(not(feature = "obs-off"))]
    slots: Vec<Mutex<Option<QueryRecord>>>,
    /// Total records ever offered; `cursor % capacity` is the next slot.
    #[cfg(not(feature = "obs-off"))]
    cursor: AtomicU64,
    /// Slowest cohort, unordered, at most `slowest_capacity` entries.
    #[cfg(not(feature = "obs-off"))]
    slowest: Mutex<Vec<QueryRecord>>,
    /// Latency of the fastest member of a *full* slowest cohort;
    /// records at or below it skip the lock entirely.
    #[cfg(not(feature = "obs-off"))]
    slowest_floor_ns: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default ring capacity ([`RING_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(RING_CAPACITY)
    }

    /// A recorder retaining the most recent `capacity` records (min 1)
    /// plus a slowest cohort of [`SLOWEST_PERCENT`]% of that (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            slowest_capacity: (capacity * SLOWEST_PERCENT / 100).max(1),
            #[cfg(not(feature = "obs-off"))]
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            #[cfg(not(feature = "obs-off"))]
            cursor: AtomicU64::new(0),
            #[cfg(not(feature = "obs-off"))]
            slowest: Mutex::new(Vec::new()),
            #[cfg(not(feature = "obs-off"))]
            slowest_floor_ns: AtomicU64::new(0),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slowest-cohort capacity in records.
    pub fn slowest_capacity(&self) -> usize {
        self.slowest_capacity
    }

    /// Offers a record (unconditionally — the global enable flag gates
    /// the free functions, not owned instances).
    pub fn record(&self, record: QueryRecord) {
        #[cfg(feature = "obs-off")]
        let _ = record;
        #[cfg(not(feature = "obs-off"))]
        {
            // Slowest cohort first (the ring write consumes the record).
            // One relaxed load filters out the common fast-query case.
            if record.latency_ns > self.slowest_floor_ns.load(Relaxed) {
                if let Ok(mut slowest) = self.slowest.try_lock() {
                    slowest.push(record.clone());
                    if slowest.len() > self.slowest_capacity {
                        let (min_idx, _) = slowest
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, r)| r.latency_ns)
                            .expect("non-empty");
                        slowest.swap_remove(min_idx);
                        let floor =
                            slowest.iter().map(|r| r.latency_ns).min().unwrap_or(0);
                        self.slowest_floor_ns.store(floor, Relaxed);
                    }
                }
            }
            let seq = self.cursor.fetch_add(1, Relaxed);
            let slot = &self.slots[(seq % self.capacity as u64) as usize];
            // A contended slot means another writer lapped the ring onto
            // the same index; dropping one record beats blocking.
            if let Ok(mut guard) = slot.try_lock() {
                *guard = Some(record);
            }
        }
    }

    /// The resident ring, oldest first (empty under `obs-off`).
    pub fn recent(&self) -> Vec<QueryRecord> {
        #[cfg(feature = "obs-off")]
        return Vec::new();
        #[cfg(not(feature = "obs-off"))]
        {
            let total = self.cursor.load(Relaxed);
            let len = (total as usize).min(self.capacity);
            let start = total.saturating_sub(len as u64);
            // Oldest → newest: walk the ring from the oldest live slot.
            (0..len as u64)
                .filter_map(|i| {
                    let idx = ((start + i) % self.capacity as u64) as usize;
                    self.slots[idx].lock().ok().and_then(|g| g.clone())
                })
                .collect()
        }
    }

    /// The `k` slowest retained records, slowest first — drawn from the
    /// slowest cohort plus whatever the ring still holds.
    pub fn slowest(&self, k: usize) -> Vec<QueryRecord> {
        #[cfg(feature = "obs-off")]
        {
            let _ = k;
            Vec::new()
        }
        #[cfg(not(feature = "obs-off"))]
        {
            let mut pool = self.slowest.lock().map_or_else(|_| Vec::new(), |g| g.clone());
            // Fold in the ring: early in a run the cohort may not yet
            // have caught records the ring still holds.
            for r in self.recent() {
                if !pool.iter().any(|p| {
                    p.query_id == r.query_id
                        && p.latency_ns == r.latency_ns
                        && p.label == r.label
                }) {
                    pool.push(r);
                }
            }
            pool.sort_by_key(|r| std::cmp::Reverse(r.latency_ns));
            pool.truncate(k);
            pool
        }
    }

    /// Folds profiler CPU attribution into every retained record: a
    /// record whose `query_id` appears in `cpu_us` gets its
    /// [`QueryRecord::cpu_est_us`] set. A no-op under `obs-off`.
    pub fn attribute_cpu(&self, cpu_us: &std::collections::BTreeMap<u64, u64>) {
        #[cfg(feature = "obs-off")]
        let _ = cpu_us;
        #[cfg(not(feature = "obs-off"))]
        {
            for slot in &self.slots {
                if let Ok(mut guard) = slot.lock() {
                    if let Some(record) = guard.as_mut() {
                        if let Some(&us) = cpu_us.get(&record.query_id) {
                            record.cpu_est_us = us;
                        }
                    }
                }
            }
            if let Ok(mut slowest) = self.slowest.lock() {
                for record in slowest.iter_mut() {
                    if let Some(&us) = cpu_us.get(&record.query_id) {
                        record.cpu_est_us = us;
                    }
                }
            }
        }
    }

    /// Drops every retained record and zeroes the sequence counter.
    pub fn reset(&self) {
        #[cfg(not(feature = "obs-off"))]
        {
            for slot in &self.slots {
                if let Ok(mut guard) = slot.lock() {
                    *guard = None;
                }
            }
            if let Ok(mut slowest) = self.slowest.lock() {
                slowest.clear();
            }
            self.slowest_floor_ns.store(0, Relaxed);
            self.cursor.store(0, Relaxed);
        }
    }

    /// Aggregate view of the recorder (all-zero under `obs-off`).
    pub fn summary(&self) -> FlightSummary {
        #[cfg(feature = "obs-off")]
        return FlightSummary::default();
        #[cfg(not(feature = "obs-off"))]
        {
            let ring = self.recent();
            let slowest = self.slowest(1);
            let mean_ms = if ring.is_empty() {
                0.0
            } else {
                ring.iter().map(QueryRecord::latency_ms).sum::<f64>() / ring.len() as f64
            };
            let resident_extra = self
                .slowest
                .lock()
                .map_or(0, |g| g.iter().filter(|r| !ring.contains(r)).count());
            FlightSummary {
                recorded: self.cursor.load(Relaxed),
                retained: ring.len() + resident_extra,
                mean_ms,
                slowest_ms: slowest.first().map_or(0.0, QueryRecord::latency_ms),
                slowest_label: slowest.first().map_or(String::new(), |r| r.label.clone()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The process-global recorder (compiled out under obs-off)

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::FlightRecorder;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, RwLock};

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);

    /// The global recorder, swappable so `rc flight --capacity N` can
    /// resize the ring. Readers take a brief read-lock and clone the
    /// `Arc`; recording is off by default so the query path normally
    /// never gets here.
    static GLOBAL: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);

    pub(super) fn recorder() -> Arc<FlightRecorder> {
        if let Some(r) = GLOBAL.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return Arc::clone(r);
        }
        let mut guard = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(guard.get_or_insert_with(|| Arc::new(FlightRecorder::new())))
    }

    pub(super) fn replace(recorder: FlightRecorder) {
        *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(recorder));
    }
}

/// Turns flight recording on or off (default off; independent of the
/// span flag so benches can trace without paying per-query clones).
#[inline]
pub fn set_flight_enabled(enabled: bool) {
    #[cfg(not(feature = "obs-off"))]
    imp::ENABLED.store(enabled, std::sync::atomic::Ordering::Relaxed);
    #[cfg(feature = "obs-off")]
    let _ = enabled;
}

/// Whether [`record`] currently retains anything. Callers use this to
/// skip building a [`QueryRecord`] (and reading the clock) entirely;
/// under `obs-off` it is `false` at compile time, so guarded recording
/// code is dead-code-eliminated.
#[inline]
pub fn flight_enabled() -> bool {
    #[cfg(not(feature = "obs-off"))]
    return imp::ENABLED.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(feature = "obs-off")]
    false
}

/// Replaces the global recorder with a fresh one of ring capacity `n`
/// (min 1). **Drops every currently retained record.** A no-op under
/// `obs-off`.
pub fn set_flight_capacity(n: usize) {
    #[cfg(not(feature = "obs-off"))]
    imp::replace(FlightRecorder::with_capacity(n));
    #[cfg(feature = "obs-off")]
    let _ = n;
}

/// The global recorder's ring capacity ([`RING_CAPACITY`] under
/// `obs-off`, where no recorder exists).
pub fn flight_capacity() -> usize {
    #[cfg(not(feature = "obs-off"))]
    return imp::recorder().capacity();
    #[cfg(feature = "obs-off")]
    RING_CAPACITY
}

/// Offers a record to the global recorder. A no-op when disabled.
#[inline]
pub fn record(record: QueryRecord) {
    #[cfg(not(feature = "obs-off"))]
    if flight_enabled() {
        imp::recorder().record(record);
    }
    #[cfg(feature = "obs-off")]
    let _ = record;
}

/// The resident ring, oldest first (empty under `obs-off`).
pub fn recent() -> Vec<QueryRecord> {
    #[cfg(not(feature = "obs-off"))]
    return imp::recorder().recent();
    #[cfg(feature = "obs-off")]
    Vec::new()
}

/// The `k` slowest retained records, slowest first — drawn from the
/// slowest cohort plus whatever the ring still holds.
pub fn slowest(k: usize) -> Vec<QueryRecord> {
    #[cfg(not(feature = "obs-off"))]
    return imp::recorder().slowest(k);
    #[cfg(feature = "obs-off")]
    {
        let _ = k;
        Vec::new()
    }
}

/// Drops every retained record and zeroes the sequence counter.
pub fn reset_flight() {
    #[cfg(not(feature = "obs-off"))]
    imp::recorder().reset();
}

/// Folds profiler CPU attribution (query id → estimated µs, as from
/// `prof::ProfileReport::query_cpu_us`) into the global recorder's
/// retained records. A no-op under `obs-off`.
pub fn attribute_cpu(cpu_us: &std::collections::BTreeMap<u64, u64>) {
    #[cfg(not(feature = "obs-off"))]
    imp::recorder().attribute_cpu(cpu_us);
    #[cfg(feature = "obs-off")]
    let _ = cpu_us;
}

/// Aggregate view of the global recorder (all-zero under `obs-off`).
pub fn flight_summary() -> FlightSummary {
    #[cfg(not(feature = "obs-off"))]
    return imp::recorder().summary();
    #[cfg(feature = "obs-off")]
    FlightSummary::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests serialise on a lock and
    // reset it, using unique labels to stay debuggable.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn rec(id: u64, latency_ns: u64) -> QueryRecord {
        QueryRecord {
            query_id: id,
            label: format!("q{id}"),
            latency_ns,
            ..QueryRecord::default()
        }
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let _guard = lock();
        reset_flight();
        set_flight_enabled(false);
        record(rec(1, 100));
        assert!(recent().is_empty());
        assert_eq!(flight_summary().recorded, 0);
    }

    #[test]
    fn ring_keeps_last_n_and_slowest_survive_lapping() {
        let _guard = lock();
        reset_flight();
        set_flight_enabled(true);
        // One huge outlier early, then enough records to lap the ring.
        record(rec(0, 1_000_000_000));
        for i in 1..=(RING_CAPACITY as u64 * 2) {
            record(rec(i, i));
        }
        set_flight_enabled(false);
        let ring = recent();
        if cfg!(feature = "obs-off") {
            assert!(ring.is_empty());
            return;
        }
        assert_eq!(ring.len(), RING_CAPACITY);
        // Ring is chronological and holds only the most recent window.
        assert!(ring.windows(2).all(|w| w[0].query_id < w[1].query_id));
        assert!(ring[0].query_id > 0, "outlier lapped out of the ring");
        // …but the slowest cohort still has it.
        let slowest = slowest(3);
        assert_eq!(slowest[0].query_id, 0);
        assert_eq!(slowest[0].latency_ns, 1_000_000_000);
        let summary = flight_summary();
        assert_eq!(summary.recorded, RING_CAPACITY as u64 * 2 + 1);
        assert!(summary.retained >= RING_CAPACITY);
        assert_eq!(summary.slowest_label, "q0");
        reset_flight();
        assert!(recent().is_empty());
    }

    #[test]
    fn slowest_cohort_is_bounded() {
        let _guard = lock();
        reset_flight();
        set_flight_enabled(true);
        let n = RING_CAPACITY as u64 * 3;
        for i in 0..n {
            // Strictly increasing latency: every record beats the floor.
            record(rec(i, (i + 1) * 1_000));
        }
        set_flight_enabled(false);
        if cfg!(feature = "obs-off") {
            return;
        }
        // slowest(huge k) is bounded by cohort + ring, and its head is
        // the true global maximum.
        let all = slowest(usize::MAX);
        assert!(all.len() <= RING_CAPACITY + RING_CAPACITY * SLOWEST_PERCENT / 100);
        assert_eq!(all[0].latency_ns, n * 1_000);
        reset_flight();
    }

    #[test]
    fn owned_recorder_wraps_around_at_custom_capacity() {
        // No global state: an owned 8-slot recorder, lapped 3×.
        let rec8 = FlightRecorder::with_capacity(8);
        assert_eq!(rec8.capacity(), 8);
        assert_eq!(rec8.slowest_capacity(), 1);
        // A slow outlier first, then 24 fast records to lap the ring.
        rec8.record(rec(0, 9_000_000));
        for i in 1..=24u64 {
            rec8.record(rec(i, i));
        }
        if cfg!(feature = "obs-off") {
            assert!(rec8.recent().is_empty());
            return;
        }
        let ring = rec8.recent();
        assert_eq!(ring.len(), 8, "ring bounded at the custom capacity");
        let ids: Vec<u64> = ring.iter().map(|r| r.query_id).collect();
        assert_eq!(ids, (17..=24).collect::<Vec<u64>>(), "last 8 in order");
        // The outlier survived the wraparound via the slowest cohort.
        let slowest = rec8.slowest(1);
        assert_eq!(slowest[0].query_id, 0);
        let summary = rec8.summary();
        assert_eq!(summary.recorded, 25);
        assert_eq!(summary.slowest_label, "q0");
        rec8.reset();
        assert!(rec8.recent().is_empty());
        assert_eq!(rec8.summary().recorded, 0);
    }

    #[test]
    fn cpu_attribution_folds_into_retained_records() {
        let r = FlightRecorder::with_capacity(4);
        // One slow outlier (query 9) that the slowest cohort keeps after
        // the ring laps it, plus enough records to lap.
        r.record(rec(9, 50_000_000));
        for i in 0..6u64 {
            r.record(rec(i, 1_000 + i));
        }
        let cpu = std::collections::BTreeMap::from([(9u64, 4_200u64), (3, 77)]);
        r.attribute_cpu(&cpu);
        if cfg!(feature = "obs-off") {
            return;
        }
        let slowest = r.slowest(1);
        assert_eq!(slowest[0].query_id, 9);
        assert_eq!(slowest[0].cpu_est_us, 4_200, "slowest-cohort record attributed");
        assert!((slowest[0].cpu_est_ms() - 4.2).abs() < 1e-12);
        let ring = r.recent();
        let q3 = ring.iter().find(|r| r.query_id == 3).expect("in ring");
        assert_eq!(q3.cpu_est_us, 77, "ring record attributed");
        assert!(
            ring.iter().filter(|r| r.query_id != 3).all(|r| r.cpu_est_us == 0),
            "unattributed ids stay at zero"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = FlightRecorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.slowest_capacity(), 1);
        r.record(rec(1, 10));
        r.record(rec(2, 20));
        if cfg!(feature = "obs-off") {
            return;
        }
        assert_eq!(r.recent().len(), 1);
    }

    #[test]
    fn global_capacity_is_configurable() {
        let _guard = lock();
        reset_flight();
        set_flight_capacity(4);
        if cfg!(not(feature = "obs-off")) {
            assert_eq!(flight_capacity(), 4);
        }
        set_flight_enabled(true);
        for i in 0..10u64 {
            record(rec(i, 100 + i));
        }
        set_flight_enabled(false);
        if cfg!(not(feature = "obs-off")) {
            assert_eq!(recent().len(), 4);
        }
        // Restore the default so other (serialised) tests see a fresh
        // recorder of the standard size.
        set_flight_capacity(RING_CAPACITY);
        assert_eq!(flight_capacity(), RING_CAPACITY);
    }
}
