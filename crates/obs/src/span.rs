//! Scoped tracing spans with thread-local nesting.
//!
//! `span!("corpus.build")` returns a guard; while it lives, nested spans
//! record under the path `corpus.build/<child>/…`. Each thread keeps its
//! own collector — a slot table keyed by `(parent slot, name)`, so a span
//! enter/exit is two `Instant::now()` calls plus one small-map lookup,
//! with **no** allocation and **no** global lock. Slot statistics are
//! flushed into the global span table when the thread exits (scoped
//! `par_map` workers flush automatically via the thread-local destructor)
//! or when [`flush_thread`] / [`crate::snapshot()`] runs on the owning
//! thread.
//!
//! Spans honour a global enable flag ([`set_spans_enabled`], default on)
//! checked with one relaxed load before any clock is touched, and compile
//! out entirely under feature `obs-off`.

#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total wall time, nanoseconds (includes child spans).
    pub total_ns: u64,
    /// Wall time spent in *recorded* child spans, nanoseconds
    /// (`total_ns - child_ns` is the span's self time).
    pub child_ns: u64,
}

impl SpanStat {
    /// Wall time not attributed to any recorded child span.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    #[cfg(not(feature = "obs-off"))]
    fn merge(&mut self, other: &SpanStat) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
    }
}

/// Opens a scoped span named by a `&'static str`; the returned
/// [`SpanGuard`] records wall time and call count under the current
/// thread's span path when dropped.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

// ---------------------------------------------------------------------------
// Enabled flag

#[cfg(not(feature = "obs-off"))]
static SPANS_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Globally enables or disables span recording (cheap runtime switch; the
/// `obs-off` feature is the compile-time equivalent).
pub fn set_spans_enabled(enabled: bool) {
    #[cfg(not(feature = "obs-off"))]
    SPANS_ENABLED.store(enabled, std::sync::atomic::Ordering::Relaxed);
    #[cfg(feature = "obs-off")]
    let _ = enabled;
}

fn spans_enabled() -> bool {
    #[cfg(not(feature = "obs-off"))]
    return SPANS_ENABLED.load(std::sync::atomic::Ordering::Relaxed);
    #[cfg(feature = "obs-off")]
    false
}

// ---------------------------------------------------------------------------
// Thread-local collector

#[cfg(not(feature = "obs-off"))]
const NO_PARENT: u32 = u32::MAX;

#[cfg(not(feature = "obs-off"))]
struct Frame {
    slot: u32,
    start: Instant,
    child_ns: u64,
}

#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct Slot {
    parent: u32,
    name: &'static str,
    stat: SpanStat,
}

#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct Collector {
    stack: Vec<Frame>,
    slots: Vec<Slot>,
    index: std::collections::HashMap<(u32, &'static str), u32>,
}

#[cfg(not(feature = "obs-off"))]
impl Collector {
    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().map_or(NO_PARENT, |f| f.slot);
        let slot = *self.index.entry((parent, name)).or_insert_with(|| {
            self.slots.push(Slot { parent, name, stat: SpanStat::default() });
            (self.slots.len() - 1) as u32
        });
        self.stack.push(Frame { slot, start: Instant::now(), child_ns: 0 });
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return; // unbalanced guard after a mid-span reset; ignore
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        let stat = &mut self.slots[frame.slot as usize].stat;
        stat.calls += 1;
        stat.total_ns += elapsed;
        stat.child_ns += frame.child_ns;
    }

    /// Full `a/b/c` path of a slot via its parent chain.
    fn path(&self, mut slot: u32) -> String {
        let mut parts = Vec::new();
        while slot != NO_PARENT {
            let s = &self.slots[slot as usize];
            parts.push(s.name);
            slot = s.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    fn flush(&mut self) {
        let recorded: Vec<(String, SpanStat)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stat.calls > 0)
            .map(|(i, s)| (self.path(i as u32), s.stat))
            .collect();
        if recorded.is_empty() {
            return;
        }
        let mut global = global_spans().lock().expect("span table poisoned");
        for (path, stat) in recorded {
            global.entry(path).or_default().merge(&stat);
        }
        for slot in &mut self.slots {
            slot.stat = SpanStat::default();
        }
    }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for Collector {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static COLLECTOR: std::cell::RefCell<Collector> = std::cell::RefCell::new(Collector::default());
}

// ---------------------------------------------------------------------------
// Global span table

type SpanTable = std::sync::Mutex<std::collections::HashMap<String, SpanStat>>;

fn global_spans() -> &'static SpanTable {
    static TABLE: std::sync::OnceLock<SpanTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// An open span scope; records into the thread's collector on drop.
#[derive(Debug)]
#[must_use = "a span records when its guard drops"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span (prefer the [`span!`] macro). Returns an inert guard when
/// spans are disabled.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { active: false };
    }
    #[cfg(not(feature = "obs-off"))]
    {
        COLLECTOR.with(|c| c.borrow_mut().enter(name));
        // Mirror the push into the profiler's per-thread seqlock slot so
        // a sampler can snapshot the live stack lock-free.
        crate::prof::on_span_enter(name);
    }
    #[cfg(feature = "obs-off")]
    let _ = name;
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        if self.active {
            COLLECTOR.with(|c| c.borrow_mut().exit());
            crate::prof::on_span_exit();
        }
        #[cfg(feature = "obs-off")]
        let _ = self.active;
    }
}

/// Flushes the calling thread's span statistics into the global table.
/// Worker threads flush automatically on exit; the snapshotting thread
/// calls this (via [`crate::snapshot()`]) to publish its own spans.
pub fn flush_thread() {
    #[cfg(not(feature = "obs-off"))]
    COLLECTOR.with(|c| c.borrow_mut().flush());
}

/// The flushed span table as `(path, stat)` rows sorted by path, so
/// children immediately follow their parents.
pub fn spans_snapshot() -> Vec<(String, SpanStat)> {
    let mut rows: Vec<(String, SpanStat)> = global_spans()
        .lock()
        .expect("span table poisoned")
        .iter()
        .map(|(path, stat)| (path.clone(), *stat))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Clears the global span table and the calling thread's pending spans.
pub fn reset_spans() {
    #[cfg(not(feature = "obs-off"))]
    COLLECTOR.with(|c| {
        let collector = &mut *c.borrow_mut();
        for slot in &mut collector.slots {
            slot.stat = SpanStat::default();
        }
    });
    global_spans().lock().expect("span table poisoned").clear();
}

/// Renders `(path, stat)` rows (as from [`spans_snapshot`]) as an
/// indented tree with calls, total/self wall time and per-call mean.
pub fn render_tree(rows: &[(String, SpanStat)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>9} {:>11} {:>11} {:>10}\n",
        "span", "calls", "total ms", "self ms", "mean µs"
    ));
    for (path, stat) in rows {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        out.push_str(&format!(
            "{:<44} {:>9} {:>11.2} {:>11.2} {:>10.1}\n",
            label,
            stat.calls,
            stat.total_ns as f64 / 1e6,
            stat.self_ns() as f64 / 1e6,
            stat.total_ns as f64 / stat.calls.max(1) as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span table is process-global; tests assert on their own unique
    // span names so parallel execution cannot interfere, and tests that
    // toggle or depend on the global enable flag serialise on a lock.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn nested_spans_record_paths_and_self_time() {
        let _guard = flag_lock();
        {
            let _outer = crate::span!("test_outer_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("test_inner_a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        flush_thread();
        let rows = spans_snapshot();
        if cfg!(feature = "obs-off") {
            assert!(rows.iter().all(|(p, _)| !p.contains("test_outer_a")));
            return;
        }
        let outer = rows.iter().find(|(p, _)| p == "test_outer_a").expect("outer recorded");
        let inner = rows
            .iter()
            .find(|(p, _)| p == "test_outer_a/test_inner_a")
            .expect("inner nests under outer");
        assert!(outer.1.calls >= 1);
        assert!(inner.1.calls >= 1);
        assert!(outer.1.total_ns >= inner.1.total_ns);
        assert!(outer.1.child_ns >= inner.1.total_ns);
        assert!(outer.1.self_ns() <= outer.1.total_ns);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = flag_lock();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = crate::span!("test_worker_span");
            });
        });
        let rows = spans_snapshot();
        if cfg!(feature = "obs-off") {
            assert!(rows.iter().all(|(p, _)| p != "test_worker_span"));
        } else {
            assert!(rows.iter().any(|(p, _)| p == "test_worker_span"));
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = flag_lock();
        set_spans_enabled(false);
        {
            let _s = crate::span!("test_disabled_span");
        }
        set_spans_enabled(true);
        flush_thread();
        let rows = spans_snapshot();
        assert!(rows.iter().all(|(p, _)| !p.contains("test_disabled_span")));
    }

    #[test]
    fn sibling_spans_share_a_slot() {
        let _guard = flag_lock();
        for _ in 0..3 {
            let _s = crate::span!("test_repeat_span");
        }
        flush_thread();
        let rows = spans_snapshot();
        if !cfg!(feature = "obs-off") {
            let row = rows.iter().find(|(p, _)| p == "test_repeat_span").unwrap();
            assert!(row.1.calls >= 3);
        }
    }

    #[test]
    fn render_tree_indents_children() {
        let rows = vec![
            ("a".to_string(), SpanStat { calls: 1, total_ns: 2_000_000, child_ns: 500_000 }),
            ("a/b".to_string(), SpanStat { calls: 4, total_ns: 500_000, child_ns: 0 }),
        ];
        let tree = render_tree(&rows);
        assert!(tree.contains("\na "));
        assert!(tree.contains("\n  b "));
        assert!(tree.contains("calls"));
    }
}
