//! Log-bucketed latency histograms.
//!
//! Each histogram is a fixed array of 64 power-of-two nanosecond buckets
//! (`bucket b` covers `[2^(b-1), 2^b)` ns) plus exact count/sum, all
//! relaxed atomics — recording from `par_map` workers needs no
//! coordination, and two histograms merge bucket-wise. Percentiles are
//! resolved to the upper bound of the covering bucket, i.e. within 2× of
//! the true order statistic, which is plenty for regression tracking.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Number of power-of-two buckets in every histogram.
pub const BUCKETS: usize = 64;

/// One global latency histogram. Names are the JSON keys of the
/// `metrics.histograms` section of `BENCH_<scale>.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Full single-query serving latency (analyse + retrieve + rank).
    QueryLatency,
    /// Per-document Fig. 4 pipeline latency during corpus analysis.
    AnalyzeDocLatency,
    /// Full evidence-walk latency of one `Attribution::compute`.
    AttributionComputeLatency,
    /// Full `store::load` latency: read + checksum + reconstruction.
    SnapshotLoadLatency,
    /// Per-shard decode + digest-verify latency inside
    /// `store::load_sharded` (recorded from `par_map` workers).
    ShardLoadLatency,
}

impl HistId {
    /// Every histogram, in rendering order.
    pub const ALL: [HistId; 5] = [
        HistId::QueryLatency,
        HistId::AnalyzeDocLatency,
        HistId::AttributionComputeLatency,
        HistId::SnapshotLoadLatency,
        HistId::ShardLoadLatency,
    ];

    /// The histogram's snake_case name (JSON key and table label).
    pub const fn name(self) -> &'static str {
        match self {
            HistId::QueryLatency => "query_latency",
            HistId::AnalyzeDocLatency => "analyze_doc_latency",
            HistId::AttributionComputeLatency => "attribution_compute_latency",
            HistId::SnapshotLoadLatency => "snapshot_load_latency",
            HistId::ShardLoadLatency => "shard_load_latency",
        }
    }
}

/// A mergeable, thread-safe log-bucketed histogram of nanosecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

// See counter.rs: const-item repetition creates independent atomics.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { buckets: [ZERO; BUCKETS], count: AtomicU64::new(0), sum_ns: AtomicU64::new(0) }
    }

    /// Records one nanosecond observation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let b = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Relaxed)
    }

    /// Adds every observation of `other` into `self` (bucket-wise; used to
    /// fold worker-local histograms into a global one).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum_ns.fetch_add(other.sum_ns.load(Relaxed), Relaxed);
    }

    /// The `p`-th percentile (`0.0..=1.0`) in nanoseconds, resolved to the
    /// upper bound of the covering bucket; 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.freeze().percentile_ns(p)
    }

    /// Freezes the atomic histogram into a [`PlainHistogram`] value (one
    /// relaxed load per bucket; no coordination with writers, so a freeze
    /// taken mid-record may be off by in-flight observations).
    pub fn freeze(&self) -> PlainHistogram {
        let mut out = PlainHistogram::new();
        for (b, bucket) in self.buckets.iter().enumerate() {
            out.buckets[b] = bucket.load(Relaxed);
        }
        out.count = self.count.load(Relaxed);
        out.sum_ns = self.sum_ns.load(Relaxed);
        out
    }

    /// Freezes the histogram into a plain summary.
    pub fn summarize(&self) -> HistogramSummary {
        self.freeze().summarize()
    }

    /// Clears every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_ns.store(0, Relaxed);
    }
}

/// Upper bound of bucket `b` in nanoseconds.
pub fn bucket_upper_ns(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        1u64 << b
    }
}

/// A frozen (non-atomic) histogram value: the same 64 power-of-two
/// nanosecond buckets as [`Histogram`], but plain `u64`s, so it can be
/// copied into time-series windows, diffed, merged and serialised without
/// touching the atomic registry. `Histogram::freeze` produces one;
/// [`PlainHistogram::merge_from`] folds windows back together bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainHistogram {
    /// Per-bucket observation counts (`bucket b` covers `[2^(b-1), 2^b)` ns).
    pub buckets: [u64; BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of observed nanoseconds.
    pub sum_ns: u64,
}

impl Default for PlainHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PlainHistogram {
    /// An empty frozen histogram.
    pub const fn new() -> Self {
        PlainHistogram { buckets: [0; BUCKETS], count: 0, sum_ns: 0 }
    }

    /// Records one nanosecond observation (same bucketing as
    /// [`Histogram::record_ns`]).
    pub fn record_ns(&mut self, ns: u64) {
        let b = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        // The atomic histogram's fetch_add wraps on overflow; match it.
        self.sum_ns = self.sum_ns.wrapping_add(ns);
    }

    /// Adds every observation of `other` into `self`, bucket-wise.
    pub fn merge_from(&mut self, other: &PlainHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.wrapping_add(other.sum_ns);
    }

    /// The per-interval delta `self − prev`. A registry reset between
    /// freezes (visible as a shrinking count) yields an empty window
    /// instead of garbage; otherwise buckets and count subtract exactly
    /// and the sum subtracts modulo 2⁶⁴, matching the wrapping adds of
    /// the recorders, so merging deltas stays bit-exact even across a
    /// sum overflow.
    pub fn saturating_delta(&self, prev: &PlainHistogram) -> PlainHistogram {
        if self.count < prev.count {
            return PlainHistogram::new();
        }
        let mut out = PlainHistogram::new();
        for (b, (cur, old)) in self.buckets.iter().zip(&prev.buckets).enumerate() {
            out.buckets[b] = cur.saturating_sub(*old);
        }
        out.count = self.count - prev.count;
        out.sum_ns = self.sum_ns.wrapping_sub(prev.sum_ns);
        out
    }

    /// The `p`-th percentile (`0.0..=1.0`) in nanoseconds, resolved to the
    /// upper bound of the covering bucket; 0 when empty. Identical
    /// nearest-rank semantics to [`Histogram::percentile_ns`].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank over buckets: the smallest bucket whose cumulative
        // count reaches ceil(p · count).
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return bucket_upper_ns(b);
            }
        }
        bucket_upper_ns(BUCKETS - 1)
    }

    /// Summarises the frozen histogram.
    pub fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_us: if self.count == 0 {
                0.0
            } else {
                self.sum_ns as f64 / self.count as f64 / 1e3
            },
            p50_us: self.percentile_ns(0.50) as f64 / 1e3,
            p90_us: self.percentile_ns(0.90) as f64 / 1e3,
            p99_us: self.percentile_ns(0.99) as f64 / 1e3,
            max_us: self.percentile_ns(1.0) as f64 / 1e3,
        }
    }
}

/// A frozen histogram: exact count and mean, bucket-resolved percentiles
/// in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact mean (from the atomic sum), microseconds.
    pub mean_us: f64,
    /// Median, resolved to the covering power-of-two bucket, microseconds.
    pub p50_us: f64,
    /// 90th percentile, bucket-resolved, microseconds.
    pub p90_us: f64,
    /// 99th percentile, bucket-resolved, microseconds.
    pub p99_us: f64,
    /// Largest observation's bucket bound, microseconds.
    pub max_us: f64,
}

#[cfg(not(feature = "obs-off"))]
static HISTS: [Histogram; HistId::ALL.len()] =
    [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()];

/// Records `ns` into a global histogram (a no-op under `obs-off`).
#[inline]
pub fn record_ns(id: HistId, ns: u64) {
    #[cfg(not(feature = "obs-off"))]
    HISTS[id as usize].record_ns(ns);
    #[cfg(feature = "obs-off")]
    let _ = (id, ns);
}

/// Summarises a global histogram (empty under `obs-off`).
pub fn summarize(id: HistId) -> HistogramSummary {
    #[cfg(not(feature = "obs-off"))]
    return HISTS[id as usize].summarize();
    #[cfg(feature = "obs-off")]
    {
        let _ = id;
        HistogramSummary::default()
    }
}

/// Freezes a global histogram into a plain value (empty under `obs-off`).
pub fn freeze(id: HistId) -> PlainHistogram {
    #[cfg(not(feature = "obs-off"))]
    return HISTS[id as usize].freeze();
    #[cfg(feature = "obs-off")]
    {
        let _ = id;
        PlainHistogram::new()
    }
}

/// Resets every global histogram.
pub fn reset_hists() {
    #[cfg(not(feature = "obs-off"))]
    for h in &HISTS {
        h.reset();
    }
}

/// Records the wall time of a scope into a global histogram on drop.
#[derive(Debug)]
pub struct TimerGuard {
    #[cfg(not(feature = "obs-off"))]
    id: HistId,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl TimerGuard {
    /// Starts timing for `id`.
    #[inline]
    pub fn start(id: HistId) -> Self {
        #[cfg(not(feature = "obs-off"))]
        return TimerGuard { id, start: Instant::now() };
        #[cfg(feature = "obs-off")]
        {
            let _ = id;
            TimerGuard {}
        }
    }
}

impl Drop for TimerGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        record_ns(self.id, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.summarize(), HistogramSummary::default());
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        // 100 lands in (64, 128]; p25 → 128.
        assert_eq!(h.percentile_ns(0.25), 128);
        // The outlier dominates the tail.
        assert_eq!(h.percentile_ns(1.0), 131_072);
        let s = h.summarize();
        assert!((s.mean_us - 25.175).abs() < 1e-9, "{}", s.mean_us);
    }

    #[test]
    fn merge_folds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(1_000);
        b.record_ns(2_000);
        b.record_ns(3_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ns(), 6_000);
    }

    #[test]
    fn zero_and_huge_values_stay_in_range() {
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(1.0) > 0);
    }

    #[test]
    fn global_roundtrip() {
        record_ns(HistId::AttributionComputeLatency, 5_000);
        let s = summarize(HistId::AttributionComputeLatency);
        if cfg!(feature = "obs-off") {
            assert_eq!(s.count, 0);
        } else {
            assert!(s.count >= 1);
        }
    }

    #[test]
    fn freeze_matches_atomic_state() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 100_000] {
            h.record_ns(ns);
        }
        let f = h.freeze();
        assert_eq!(f.count, 4);
        assert_eq!(f.sum_ns, 100_700);
        assert_eq!(f.percentile_ns(0.25), h.percentile_ns(0.25));
        assert_eq!(f.summarize(), h.summarize());
    }

    #[test]
    fn plain_record_matches_atomic_bucketing() {
        let atomic = Histogram::new();
        let mut plain = PlainHistogram::new();
        for ns in [0u64, 1, 2, 3, 1_000, 1 << 40, u64::MAX] {
            atomic.record_ns(ns);
            plain.record_ns(ns);
        }
        assert_eq!(atomic.freeze(), plain);
    }

    #[test]
    fn saturating_delta_recovers_the_interval() {
        let h = Histogram::new();
        h.record_ns(1_000);
        let before = h.freeze();
        h.record_ns(2_000);
        h.record_ns(4_000);
        let delta = h.freeze().saturating_delta(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_ns, 6_000);
        // A reset between freezes saturates to zero instead of wrapping.
        h.reset();
        let after_reset = h.freeze().saturating_delta(&before);
        assert_eq!(after_reset.count, 0);
        assert_eq!(after_reset.sum_ns, 0);
    }

    #[test]
    fn merging_window_deltas_rebuilds_the_total() {
        // Freeze after every record (one window per observation), merge the
        // per-window deltas, and recover the global histogram bit-exactly.
        let h = Histogram::new();
        let mut merged = PlainHistogram::new();
        let mut prev = PlainHistogram::new();
        for ns in [300u64, 900, 5_000, 70, 123_456] {
            h.record_ns(ns);
            let cur = h.freeze();
            merged.merge_from(&cur.saturating_delta(&prev));
            prev = cur;
        }
        assert_eq!(merged, h.freeze());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = HistId::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HistId::ALL.len());
    }
}
