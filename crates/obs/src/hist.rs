//! Log-bucketed latency histograms.
//!
//! Each histogram is a fixed array of 64 power-of-two nanosecond buckets
//! (`bucket b` covers `[2^(b-1), 2^b)` ns) plus exact count/sum, all
//! relaxed atomics — recording from `par_map` workers needs no
//! coordination, and two histograms merge bucket-wise. Percentiles are
//! resolved to the upper bound of the covering bucket, i.e. within 2× of
//! the true order statistic, which is plenty for regression tracking.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

const BUCKETS: usize = 64;

/// One global latency histogram. Names are the JSON keys of the
/// `metrics.histograms` section of `BENCH_<scale>.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Full single-query serving latency (analyse + retrieve + rank).
    QueryLatency,
    /// Per-document Fig. 4 pipeline latency during corpus analysis.
    AnalyzeDocLatency,
    /// Full evidence-walk latency of one `Attribution::compute`.
    AttributionComputeLatency,
    /// Full `store::load` latency: read + checksum + reconstruction.
    SnapshotLoadLatency,
    /// Per-shard decode + digest-verify latency inside
    /// `store::load_sharded` (recorded from `par_map` workers).
    ShardLoadLatency,
}

impl HistId {
    /// Every histogram, in rendering order.
    pub const ALL: [HistId; 5] = [
        HistId::QueryLatency,
        HistId::AnalyzeDocLatency,
        HistId::AttributionComputeLatency,
        HistId::SnapshotLoadLatency,
        HistId::ShardLoadLatency,
    ];

    /// The histogram's snake_case name (JSON key and table label).
    pub const fn name(self) -> &'static str {
        match self {
            HistId::QueryLatency => "query_latency",
            HistId::AnalyzeDocLatency => "analyze_doc_latency",
            HistId::AttributionComputeLatency => "attribution_compute_latency",
            HistId::SnapshotLoadLatency => "snapshot_load_latency",
            HistId::ShardLoadLatency => "shard_load_latency",
        }
    }
}

/// A mergeable, thread-safe log-bucketed histogram of nanosecond values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

// See counter.rs: const-item repetition creates independent atomics.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { buckets: [ZERO; BUCKETS], count: AtomicU64::new(0), sum_ns: AtomicU64::new(0) }
    }

    /// Records one nanosecond observation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let b = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Relaxed)
    }

    /// Adds every observation of `other` into `self` (bucket-wise; used to
    /// fold worker-local histograms into a global one).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum_ns.fetch_add(other.sum_ns.load(Relaxed), Relaxed);
    }

    /// The `p`-th percentile (`0.0..=1.0`) in nanoseconds, resolved to the
    /// upper bound of the covering bucket; 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Nearest-rank over buckets: the smallest bucket whose cumulative
        // count reaches ceil(p · count).
        let target = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Relaxed);
            if seen >= target {
                return bucket_upper_ns(b);
            }
        }
        bucket_upper_ns(BUCKETS - 1)
    }

    /// Freezes the histogram into a plain summary.
    pub fn summarize(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            mean_us: if count == 0 { 0.0 } else { self.sum_ns() as f64 / count as f64 / 1e3 },
            p50_us: self.percentile_ns(0.50) as f64 / 1e3,
            p90_us: self.percentile_ns(0.90) as f64 / 1e3,
            p99_us: self.percentile_ns(0.99) as f64 / 1e3,
            max_us: self.percentile_ns(1.0) as f64 / 1e3,
        }
    }

    /// Clears every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_ns.store(0, Relaxed);
    }
}

/// Upper bound of bucket `b` in nanoseconds.
fn bucket_upper_ns(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        1u64 << b
    }
}

/// A frozen histogram: exact count and mean, bucket-resolved percentiles
/// in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact mean (from the atomic sum), microseconds.
    pub mean_us: f64,
    /// Median, resolved to the covering power-of-two bucket, microseconds.
    pub p50_us: f64,
    /// 90th percentile, bucket-resolved, microseconds.
    pub p90_us: f64,
    /// 99th percentile, bucket-resolved, microseconds.
    pub p99_us: f64,
    /// Largest observation's bucket bound, microseconds.
    pub max_us: f64,
}

#[cfg(not(feature = "obs-off"))]
static HISTS: [Histogram; HistId::ALL.len()] =
    [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()];

/// Records `ns` into a global histogram (a no-op under `obs-off`).
#[inline]
pub fn record_ns(id: HistId, ns: u64) {
    #[cfg(not(feature = "obs-off"))]
    HISTS[id as usize].record_ns(ns);
    #[cfg(feature = "obs-off")]
    let _ = (id, ns);
}

/// Summarises a global histogram (empty under `obs-off`).
pub fn summarize(id: HistId) -> HistogramSummary {
    #[cfg(not(feature = "obs-off"))]
    return HISTS[id as usize].summarize();
    #[cfg(feature = "obs-off")]
    {
        let _ = id;
        HistogramSummary::default()
    }
}

/// Resets every global histogram.
pub fn reset_hists() {
    #[cfg(not(feature = "obs-off"))]
    for h in &HISTS {
        h.reset();
    }
}

/// Records the wall time of a scope into a global histogram on drop.
#[derive(Debug)]
pub struct TimerGuard {
    #[cfg(not(feature = "obs-off"))]
    id: HistId,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl TimerGuard {
    /// Starts timing for `id`.
    #[inline]
    pub fn start(id: HistId) -> Self {
        #[cfg(not(feature = "obs-off"))]
        return TimerGuard { id, start: Instant::now() };
        #[cfg(feature = "obs-off")]
        {
            let _ = id;
            TimerGuard {}
        }
    }
}

impl Drop for TimerGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        record_ns(self.id, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.summarize(), HistogramSummary::default());
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        // 100 lands in (64, 128]; p25 → 128.
        assert_eq!(h.percentile_ns(0.25), 128);
        // The outlier dominates the tail.
        assert_eq!(h.percentile_ns(1.0), 131_072);
        let s = h.summarize();
        assert!((s.mean_us - 25.175).abs() < 1e-9, "{}", s.mean_us);
    }

    #[test]
    fn merge_folds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(1_000);
        b.record_ns(2_000);
        b.record_ns(3_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ns(), 6_000);
    }

    #[test]
    fn zero_and_huge_values_stay_in_range() {
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(1.0) > 0);
    }

    #[test]
    fn global_roundtrip() {
        record_ns(HistId::AttributionComputeLatency, 5_000);
        let s = summarize(HistId::AttributionComputeLatency);
        if cfg!(feature = "obs-off") {
            assert_eq!(s.count, 0);
        } else {
            assert!(s.count >= 1);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = HistId::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HistId::ALL.len());
    }
}
