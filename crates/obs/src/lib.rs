//! # rightcrowd-obs
//!
//! Zero-external-dependency observability for the expert-finding pipeline:
//! the measurement substrate behind `rc bench`, `rc metrics` and the
//! perf-regression harness.
//!
//! Three probe families, one global registry:
//!
//! - **Spans** ([`span!`]) — lightweight scoped timers with thread-local
//!   nesting. Each scope records wall time and call count under its full
//!   path (`corpus.build/analyze.doc/langid.classify`); the aggregate
//!   table is rendered as a tree by `rc --trace` and serialised into
//!   `BENCH_<scale>.json`.
//! - **Counters** ([`counter::CounterId`]) — a fixed taxonomy of relaxed
//!   atomic event counters for the hot query path: postings traversed,
//!   documents admitted/pruned by the MaxScore top-k, attribution-cache
//!   hits/misses, per-distance evidence volumes. Hot loops accumulate
//!   locally and publish once per call, so the per-posting cost is zero.
//! - **Histograms** ([`hist::HistId`]) — log-bucketed (power-of-two)
//!   latency histograms with atomic buckets, safely shared across
//!   `par_map` workers and mergeable.
//!
//! - **Flight recorder** ([`flight`]) — a bounded non-blocking buffer of
//!   structured per-query [`QueryRecord`]s (config, latency, counter
//!   deltas, top candidates) retaining the slowest P% plus the last N,
//!   behind `rc flight` and the `flight` block of `BENCH_<scale>.json`.
//! - **Time series** ([`timeseries`]) — a [`Sampler`] that freezes the
//!   registry on a fixed tick and publishes per-interval deltas (every
//!   counter, every histogram) into a seqlock ring of [`Window`]s with
//!   derived rates (qps, postings/s, block-skip fraction) and windowed
//!   percentiles; the substrate of `rc soak`.
//! - **Exposition** ([`export`]) — hand-rolled Prometheus/OpenMetrics
//!   text rendering of the live registry or a saved window series
//!   (counters as `_total`, histograms as cumulative `_bucket` in
//!   seconds, `build_info`), plus the round-trip validator CI runs.
//! - **Wide events** ([`wide`]) — a tail-sampled JSONL query log that
//!   always keeps errors and the slowest tail and reservoir-samples the
//!   rest, one self-contained line per interesting query.
//! - **Sampling profiler** ([`prof`]) — every instrumented thread
//!   publishes its live span stack (plus the active query id) into a
//!   per-thread seqlock slot; a [`Profiler`] thread snapshots the
//!   registry on a prime ~997 µs interval and folds the samples into
//!   collapsed stacks, a hand-rolled flamegraph SVG, and per-query
//!   estimated CPU (`cpu_est_us`) — the substrate of `rc profile`.
//!
//! [`snapshot()`] freezes counters, histograms and spans into a
//! [`MetricsSnapshot`] that serialises to JSON (hand-rolled,
//! dependency-free) or renders as human tables. [`reset()`] clears the
//! registry between measurement phases. [`chrome_trace_json`] exports
//! spans and flight records as Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto (`rc trace --chrome`).
//!
//! ## Cost model
//!
//! Probes are always-cheap-when-disabled: counters are single relaxed
//! `fetch_add`s on a static array (no hashing), spans check an atomic
//! enable flag before touching the clock, and the `obs-off` cargo feature
//! compiles every probe into an empty inline function so the instrumented
//! binary is bit-for-bit as fast as an uninstrumented one.

pub mod counter;
pub mod export;
pub mod flight;
pub mod hist;
pub mod prof;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace_export;
pub mod wide;

pub use counter::{reset_counters, CounterId};
pub use export::{openmetrics_live, rss_now_bytes, rss_peak_bytes, validate_openmetrics, BuildInfo};
pub use flight::{set_flight_capacity, FlightRecorder, FlightSummary, QueryRecord};
pub use hist::{HistId, PlainHistogram};
pub use prof::{
    flamegraph_svg, validate_flamegraph_svg, validate_folded, ProfileReport, Profiler,
};
pub use snapshot::{reset, snapshot, MetricsSnapshot};
pub use span::{set_spans_enabled, SpanGuard, SpanStat};
pub use timeseries::{Sampler, Window};
pub use trace_export::chrome_trace_json;
pub use wide::{WideEvent, WideEventLog};

/// `false` when the `obs-off` feature compiled the probes out. Lets
/// dependent crates (which have no feature of their own) guard probe-side
/// bookkeeping with an `if` the optimiser deletes.
pub const PROBES_ENABLED: bool = cfg!(not(feature = "obs-off"));

/// Convenience re-export: add `n` to a global counter.
#[inline]
pub fn add(id: CounterId, n: u64) {
    counter::add(id, n);
}

/// Convenience re-export: increment a global counter by one.
#[inline]
pub fn incr(id: CounterId) {
    counter::add(id, 1);
}

/// Convenience re-export: record a duration into a global histogram.
#[inline]
pub fn record(id: HistId, elapsed: std::time::Duration) {
    hist::record_ns(id, elapsed.as_nanos() as u64);
}

/// Times the enclosed scope into a global histogram: returns a guard that
/// records the elapsed wall time on drop.
#[inline]
#[must_use = "the timer records when the guard drops"]
pub fn time(id: HistId) -> hist::TimerGuard {
    hist::TimerGuard::start(id)
}
