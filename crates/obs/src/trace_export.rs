//! Chrome trace-event export: serialises a [`MetricsSnapshot`]'s span
//! aggregates and the flight recorder's [`QueryRecord`]s as a JSON
//! document loadable by `chrome://tracing` and Perfetto
//! (<https://ui.perfetto.dev>).
//!
//! Span statistics are *aggregates* (per-path totals), not raw event
//! streams, so the exporter synthesises a deterministic timeline: rows
//! arrive sorted by path (parents before children), each span becomes one
//! complete (`"ph":"X"`) event whose duration is its total wall time, and
//! children are packed left-to-right inside their parent's extent
//! (clamped when parallel workers make child totals exceed the parent's
//! wall clock — the true totals are preserved in `args`). Flight records
//! render on a second track as consecutive slices, one per query, with
//! the ranking configuration and counter deltas in `args`.

use crate::flight::QueryRecord;
use crate::snapshot::{fmt_f64, json_escape, MetricsSnapshot};
use std::collections::HashMap;

/// `pid` used for every synthesised event.
const PID: u32 = 1;
/// `tid` of the aggregate span timeline.
const TID_SPANS: u32 = 1;
/// `tid` of the per-query flight timeline.
const TID_FLIGHT: u32 = 2;

fn event(name: &str, ts_us: f64, dur_us: f64, tid: u32, cat: &str, args: &str) -> String {
    format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
         \"pid\": {PID}, \"tid\": {tid}, \"args\": {{{args}}}}}",
        json_escape(name),
        cat,
        fmt_f64(ts_us),
        fmt_f64(dur_us),
    )
}

fn metadata(name: &str, tid: u32, value: &str) -> String {
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        json_escape(value)
    )
}

/// Renders the snapshot's spans plus the given flight records as a Chrome
/// trace-event JSON object (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(snapshot: &MetricsSnapshot, flights: &[QueryRecord]) -> String {
    let mut events = vec![
        metadata("process_name", TID_SPANS, "rightcrowd"),
        metadata("thread_name", TID_SPANS, "spans (aggregate layout)"),
        metadata("thread_name", TID_FLIGHT, "query flights"),
    ];

    // Synthesised span timeline: `cursors` maps a span path to the next
    // free timestamp inside it, `ends` to the end of its extent so
    // children can be clamped. `""` is the virtual root.
    let mut cursors: HashMap<&str, f64> = HashMap::new();
    let mut ends: HashMap<&str, f64> = HashMap::new();
    cursors.insert("", 0.0);
    ends.insert("", f64::INFINITY);
    for (path, stat) in &snapshot.spans {
        let parent = path.rfind('/').map_or("", |i| &path[..i]);
        let start = cursors.get(parent).copied().unwrap_or(0.0);
        let parent_end = ends.get(parent).copied().unwrap_or(f64::INFINITY);
        let true_dur = stat.total_ns as f64 / 1e3;
        let dur = true_dur.min((parent_end - start).max(0.0));
        let name = path.rsplit('/').next().unwrap_or(path);
        let args = format!(
            "\"path\": \"{}\", \"calls\": {}, \"total_ms\": {}, \"self_ms\": {}",
            json_escape(path),
            stat.calls,
            fmt_f64(stat.total_ns as f64 / 1e6),
            fmt_f64(stat.self_ns() as f64 / 1e6),
        );
        events.push(event(name, start, dur, TID_SPANS, "span", &args));
        cursors.insert(path.as_str(), start);
        ends.insert(path.as_str(), start + dur);
        *cursors.entry(parent).or_insert(start) = start + dur;
    }

    // Flight timeline: consecutive slices, one per retained query.
    let mut ts = 0.0;
    for record in flights {
        let dur = record.latency_ns as f64 / 1e3;
        let top = record
            .top_candidates
            .first()
            .map_or(String::new(), |&(person, score)| {
                format!(", \"top_person\": {person}, \"top_score\": {}", fmt_f64(score))
            });
        let args = format!(
            "\"query_id\": {}, \"domain\": \"{}\", \"alpha\": {}, \"max_distance\": {}, \
             \"window\": \"{}\", \"latency_ms\": {}, \"postings_traversed\": {}, \
             \"maxscore_admitted\": {}, \"maxscore_pruned\": {}{top}",
            record.query_id,
            json_escape(&record.domain),
            fmt_f64(record.alpha),
            record.max_distance,
            json_escape(&record.window),
            fmt_f64(record.latency_ms()),
            record.postings_traversed,
            record.maxscore_admitted,
            record.maxscore_pruned,
        );
        let label = if record.label.is_empty() { "query" } else { &record.label };
        events.push(event(label, ts, dur, TID_FLIGHT, "flight", &args));
        ts += dur;
    }

    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        out.push_str(&format!("    {e}{comma}\n"));
    }
    out.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStat;

    fn snap(spans: Vec<(String, SpanStat)>) -> MetricsSnapshot {
        MetricsSnapshot { counters: vec![], histograms: vec![], spans }
    }

    #[test]
    fn children_pack_inside_parent_extent() {
        let spans = vec![
            ("build".to_string(), SpanStat { calls: 1, total_ns: 10_000, child_ns: 7_000 }),
            ("build/a".to_string(), SpanStat { calls: 2, total_ns: 4_000, child_ns: 0 }),
            ("build/b".to_string(), SpanStat { calls: 1, total_ns: 3_000, child_ns: 0 }),
        ];
        let json = chrome_trace_json(&snap(spans), &[]);
        // Parent at ts 0 for 10µs; children at 0 and 4µs.
        assert!(json.contains("\"name\": \"build\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 10.000"));
        assert!(json.contains("\"name\": \"a\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 4.000"));
        assert!(json.contains("\"name\": \"b\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": 4.000, \"dur\": 3.000"));
        assert!(json.contains("\"path\": \"build/b\""));
    }

    #[test]
    fn oversized_children_are_clamped_not_dropped() {
        // Parallel workers: child totals exceed the parent's wall clock.
        let spans = vec![
            ("par".to_string(), SpanStat { calls: 1, total_ns: 1_000, child_ns: 900 }),
            ("par/worker".to_string(), SpanStat { calls: 8, total_ns: 7_000, child_ns: 0 }),
        ];
        let json = chrome_trace_json(&snap(spans), &[]);
        // Clamped to the parent's 1µs extent; true total kept in args.
        assert!(json.contains("\"name\": \"worker\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 1.000"));
        assert!(json.contains("\"total_ms\": 0.007"));
    }

    #[test]
    fn flight_records_render_as_consecutive_slices() {
        let flights = vec![
            QueryRecord {
                query_id: 7,
                label: "ios app".to_string(),
                domain: "Technology".to_string(),
                alpha: 0.6,
                max_distance: 2,
                window: "top-100".to_string(),
                latency_ns: 2_000_000,
                postings_traversed: 50,
                maxscore_admitted: 10,
                maxscore_pruned: 5,
                top_candidates: vec![(3, 1.25)],
                cpu_est_us: 0,
            },
            QueryRecord { query_id: 8, latency_ns: 1_000_000, ..QueryRecord::default() },
        ];
        let json = chrome_trace_json(&snap(vec![]), &flights);
        assert!(json.contains("\"name\": \"ios app\", \"cat\": \"flight\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 2000.000"));
        assert!(json.contains("\"ts\": 2000.000, \"dur\": 1000.000"));
        assert!(json.contains("\"alpha\": 0.600"));
        assert!(json.contains("\"top_person\": 3"));
        assert!(json.contains("\"maxscore_pruned\": 5"));
        // Both tracks are named.
        assert!(json.contains("query flights"));
        assert!(json.contains("spans (aggregate layout)"));
    }

    #[test]
    fn output_has_no_trailing_commas_and_balanced_brackets() {
        let json = chrome_trace_json(&snap(vec![]), &[]);
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(!json.contains(",\n  ]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"traceEvents\""));
    }
}
